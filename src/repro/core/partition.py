"""SRAM/DRAM and on/off-chip memory partitioning.

Paper Section 3: "Since edram allows to integrate SRAMs and DRAMs,
decisions on the on/off-chip DRAM- and SRAM/DRAM-partitioning have to be
made."

The partitioner assigns each application memory block to one of three
implementation technologies — on-chip SRAM (fast, hungry for area),
on-chip eDRAM (dense, medium latency), off-chip commodity DRAM (no die
area, slow, pin- and power-expensive) — minimizing a composite cost
under a die-area budget and per-block latency/bandwidth constraints.

With the handful of blocks real systems partition (an MPEG2 decoder has
three or four), exhaustive enumeration of the 3^n assignments is exact
and instant; a greedy fallback covers larger inputs.
"""

from __future__ import annotations

import enum
import itertools
from dataclasses import dataclass, field

from repro.errors import ConfigurationError, InfeasibleError
from repro.units import MBIT


class MemoryTech(enum.Enum):
    """Implementation technology for one memory block."""

    ON_CHIP_SRAM = "sram"
    ON_CHIP_EDRAM = "edram"
    OFF_CHIP_DRAM = "off-chip"


@dataclass(frozen=True)
class TechProfile:
    """Per-technology implementation characteristics.

    Attributes:
        tech: Technology tag.
        area_mm2_per_mbit: Die area per Mbit (0 for off-chip).
        latency_ns: Typical random-access latency.
        max_bandwidth_bits_per_s: Sustainable bandwidth per block placed
            in this technology (off-chip is interface-limited).
        energy_pj_per_bit: Access energy per bit.
        cost_per_mbit: Incremental unit cost per Mbit (silicon or
            commodity price).
    """

    tech: MemoryTech
    area_mm2_per_mbit: float
    latency_ns: float
    max_bandwidth_bits_per_s: float
    energy_pj_per_bit: float
    cost_per_mbit: float

    def __post_init__(self) -> None:
        if self.area_mm2_per_mbit < 0:
            raise ConfigurationError("area per Mbit must be >= 0")
        if self.latency_ns <= 0:
            raise ConfigurationError("latency must be positive")
        if self.max_bandwidth_bits_per_s <= 0:
            raise ConfigurationError("bandwidth must be positive")
        if self.energy_pj_per_bit < 0 or self.cost_per_mbit < 0:
            raise ConfigurationError("energy/cost must be >= 0")


#: Quarter-micron-era profiles, consistent with the rest of the library:
#: SRAM ~15x the area of eDRAM (cell ratio), off-chip pays the Section 1
#: interface-energy premium and the PC100 interface bandwidth ceiling.
SRAM_PROFILE = TechProfile(
    tech=MemoryTech.ON_CHIP_SRAM,
    area_mm2_per_mbit=15.0,
    latency_ns=6.0,
    max_bandwidth_bits_per_s=40e9,
    energy_pj_per_bit=2.0,
    cost_per_mbit=8.0,
)
EDRAM_PROFILE = TechProfile(
    tech=MemoryTech.ON_CHIP_EDRAM,
    area_mm2_per_mbit=1.07,
    latency_ns=35.0,
    max_bandwidth_bits_per_s=9.15e9,
    energy_pj_per_bit=6.0,
    cost_per_mbit=0.6,
)
OFF_CHIP_PROFILE = TechProfile(
    tech=MemoryTech.OFF_CHIP_DRAM,
    area_mm2_per_mbit=0.0,
    latency_ns=90.0,
    max_bandwidth_bits_per_s=1.0e9,
    energy_pj_per_bit=130.0,
    cost_per_mbit=0.25,
)

DEFAULT_PROFILES: dict = {
    profile.tech: profile
    for profile in (SRAM_PROFILE, EDRAM_PROFILE, OFF_CHIP_PROFILE)
}


@dataclass(frozen=True)
class MemoryBlock:
    """One application memory block to place.

    Attributes:
        name: Block name ("frame store", "line buffer", ...).
        size_bits: Capacity required.
        bandwidth_bits_per_s: Sustained traffic the block carries.
        max_latency_ns: Worst acceptable access latency, or None.
    """

    name: str
    size_bits: int
    bandwidth_bits_per_s: float
    max_latency_ns: float | None = None

    def __post_init__(self) -> None:
        if self.size_bits <= 0:
            raise ConfigurationError(f"{self.name}: size must be positive")
        if self.bandwidth_bits_per_s < 0:
            raise ConfigurationError(
                f"{self.name}: bandwidth must be >= 0"
            )
        if self.max_latency_ns is not None and self.max_latency_ns <= 0:
            raise ConfigurationError(
                f"{self.name}: latency bound must be positive"
            )

    @property
    def size_mbit(self) -> float:
        return self.size_bits / MBIT


@dataclass(frozen=True)
class PartitionPlan:
    """A complete assignment of blocks to technologies.

    Attributes:
        assignment: Block name -> technology.
        area_mm2: On-chip area consumed.
        power_w: Access power over all blocks.
        unit_cost: Memory unit cost.
        blocks: The partitioned blocks (for reporting).
    """

    assignment: dict
    area_mm2: float
    power_w: float
    unit_cost: float
    blocks: tuple

    def tech_of(self, block_name: str) -> MemoryTech:
        if block_name not in self.assignment:
            raise ConfigurationError(f"unknown block {block_name!r}")
        return self.assignment[block_name]

    def on_chip_fraction(self) -> float:
        """Share of total bits placed on-chip."""
        total = sum(block.size_bits for block in self.blocks)
        on_chip = sum(
            block.size_bits
            for block in self.blocks
            if self.assignment[block.name] is not MemoryTech.OFF_CHIP_DRAM
        )
        return on_chip / total if total else 0.0


@dataclass(frozen=True)
class Partitioner:
    """Assigns memory blocks to technologies at minimum weighted cost.

    Attributes:
        profiles: Technology profiles to choose among.
        area_budget_mm2: On-chip area available for memories.
        power_weight: Composite-objective weight on watts (cost units
            per watt — e.g. what a watt costs in battery/cooling terms).
        exhaustive_limit: Maximum block count for exact enumeration.
    """

    profiles: dict = field(
        default_factory=lambda: dict(DEFAULT_PROFILES)
    )
    area_budget_mm2: float = 60.0
    power_weight: float = 5.0
    exhaustive_limit: int = 10

    def __post_init__(self) -> None:
        if self.area_budget_mm2 < 0:
            raise ConfigurationError("area budget must be >= 0")
        if self.power_weight < 0:
            raise ConfigurationError("power weight must be >= 0")

    # -- per-block figures -------------------------------------------------

    def _feasible(self, block: MemoryBlock, profile: TechProfile) -> bool:
        if (
            block.max_latency_ns is not None
            and profile.latency_ns > block.max_latency_ns
        ):
            return False
        if block.bandwidth_bits_per_s > profile.max_bandwidth_bits_per_s:
            return False
        return True

    def _block_area(self, block: MemoryBlock, profile: TechProfile) -> float:
        return block.size_mbit * profile.area_mm2_per_mbit

    def _block_power(self, block: MemoryBlock, profile: TechProfile) -> float:
        return (
            block.bandwidth_bits_per_s * profile.energy_pj_per_bit * 1e-12
        )

    def _block_cost(self, block: MemoryBlock, profile: TechProfile) -> float:
        return block.size_mbit * profile.cost_per_mbit

    def _objective(self, blocks, assignment) -> float:
        cost = sum(
            self._block_cost(block, self.profiles[tech])
            for block, tech in zip(blocks, assignment)
        )
        power = sum(
            self._block_power(block, self.profiles[tech])
            for block, tech in zip(blocks, assignment)
        )
        return cost + self.power_weight * power

    # -- solving ------------------------------------------------------------

    def partition(self, blocks) -> PartitionPlan:
        """Find the minimum-objective feasible assignment.

        Raises:
            InfeasibleError: If no assignment satisfies every block's
                constraints within the area budget.
        """
        blocks = tuple(blocks)
        if not blocks:
            raise ConfigurationError("nothing to partition")
        names = [block.name for block in blocks]
        if len(set(names)) != len(names):
            raise ConfigurationError(f"duplicate block names: {names}")
        options: list = []
        for block in blocks:
            feasible = [
                tech
                for tech, profile in self.profiles.items()
                if self._feasible(block, profile)
            ]
            if not feasible:
                raise InfeasibleError(
                    f"block {block.name!r} fits no technology "
                    f"(bandwidth {block.bandwidth_bits_per_s / 1e9:.1f} "
                    f"Gbit/s, latency bound {block.max_latency_ns})"
                )
            options.append(feasible)
        if len(blocks) <= self.exhaustive_limit:
            best = self._solve_exhaustive(blocks, options)
        else:
            best = self._solve_greedy(blocks, options)
        if best is None:
            raise InfeasibleError(
                f"no assignment fits the {self.area_budget_mm2:.0f} mm^2 "
                f"on-chip budget"
            )
        assignment = dict(zip(names, best))
        return PartitionPlan(
            assignment=assignment,
            area_mm2=sum(
                self._block_area(block, self.profiles[tech])
                for block, tech in zip(blocks, best)
            ),
            power_w=sum(
                self._block_power(block, self.profiles[tech])
                for block, tech in zip(blocks, best)
            ),
            unit_cost=sum(
                self._block_cost(block, self.profiles[tech])
                for block, tech in zip(blocks, best)
            ),
            blocks=blocks,
        )

    def _solve_exhaustive(self, blocks, options):
        best = None
        best_objective = float("inf")
        for assignment in itertools.product(*options):
            area = sum(
                self._block_area(block, self.profiles[tech])
                for block, tech in zip(blocks, assignment)
            )
            if area > self.area_budget_mm2:
                continue
            objective = self._objective(blocks, assignment)
            if objective < best_objective:
                best, best_objective = assignment, objective
        return best

    def _solve_greedy(self, blocks, options):
        """Greedy: cheapest feasible tech per block, then fix the area
        budget by pushing the least-bandwidth blocks off-chip."""
        assignment = []
        for block, feasible in zip(blocks, options):
            assignment.append(
                min(
                    feasible,
                    key=lambda tech: self._block_cost(
                        block, self.profiles[tech]
                    )
                    + self.power_weight
                    * self._block_power(block, self.profiles[tech]),
                )
            )

        def total_area():
            return sum(
                self._block_area(block, self.profiles[tech])
                for block, tech in zip(blocks, assignment)
            )

        spill_order = sorted(
            range(len(blocks)),
            key=lambda i: blocks[i].bandwidth_bits_per_s,
        )
        for index in spill_order:
            if total_area() <= self.area_budget_mm2:
                break
            if MemoryTech.OFF_CHIP_DRAM in options[index]:
                assignment[index] = MemoryTech.OFF_CHIP_DRAM
        if total_area() > self.area_budget_mm2:
            return None
        return tuple(assignment)
