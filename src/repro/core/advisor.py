"""Project advisability: the Section 2 rules of thumb as a service.

Wraps :func:`repro.apps.markets.advisability_score` around
:class:`~repro.core.requirements.ApplicationRequirements` and attaches
human-readable reasons, mirroring how the paper argues each market
segment rather than just scoring it.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import ConfigurationError
from repro.apps.markets import advisability_score
from repro.core.requirements import ApplicationRequirements


@dataclass(frozen=True)
class Advice:
    """Advisability verdict for one project.

    Attributes:
        score: Advisability in [0, 1].
        recommended: Convenience threshold at 0.5.
        reasons: Rule-by-rule explanations that fired.
    """

    score: float
    reasons: tuple

    def __post_init__(self) -> None:
        if not 0 <= self.score <= 1:
            raise ConfigurationError("score must be in [0, 1]")

    @property
    def recommended(self) -> bool:
        return self.score >= 0.5


@dataclass(frozen=True)
class Advisor:
    """Applies the Section 2 rules of thumb to a project.

    Attributes:
        product_lifetime_years: Expected market lifetime.
        needs_upgrade_path: Field memory expansion required (vetoes).
        memory_known_at_design_time: Exact requirement known (a veto when
            False: "the system designer must know the exact memory
            requirement at the time of design").
    """

    product_lifetime_years: float = 2.0
    needs_upgrade_path: bool = False
    memory_known_at_design_time: bool = True

    def advise(self, requirements: ApplicationRequirements) -> Advice:
        """Score a project and explain the verdict."""
        score = advisability_score(
            volume_per_year=requirements.volume_per_year,
            product_lifetime_years=self.product_lifetime_years,
            memory_mbit=requirements.capacity_mbit,
            required_bandwidth_gbyte_per_s=requirements.bandwidth_gbyte_per_s,
            portable=requirements.portable,
            needs_upgrade_path=self.needs_upgrade_path,
            memory_known_at_design_time=self.memory_known_at_design_time,
        )
        reasons = []
        if self.needs_upgrade_path:
            reasons.append(
                "veto: an upgrade path is required and eDRAM has no "
                "external memory interface"
            )
        if not self.memory_known_at_design_time:
            reasons.append(
                "veto: the exact memory requirement must be known at "
                "design time"
            )
        if requirements.volume_per_year >= 10_000_000:
            reasons.append("high product volume amortizes NRE")
        if requirements.capacity_mbit >= 16:
            reasons.append(
                "memory content high enough to justify DRAM process costs"
            )
        if requirements.bandwidth_gbyte_per_s >= 1.0:
            reasons.append("bandwidth requires a wide on-chip interface")
        if requirements.portable:
            reasons.append(
                "portable application: power savings weigh heaviest"
            )
        if self.product_lifetime_years >= 3:
            reasons.append("long product lifetime reduces requalification risk")
        return Advice(score=score, reasons=tuple(reasons))
