"""Buffer-to-bank memory allocation.

Paper Section 3: "Especially the following problems have to be solved at
the system level: Optimizing the memory allocation.  Optimizing the
mapping of the data into memory such that the sustainable memory
bandwidth approaches the peak bandwidth."

Two clients whose buffers share a bank evict each other's open rows;
clients in private banks keep their pages open.  The allocator places
application buffers into the banks of a macro (under the region-private
``BANK_ROW_COL`` mapping, where the bank is selected by high address
bits) so that the highest-traffic buffers get the most isolation, and
estimates the resulting pairwise interference so the choice is
auditable.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.errors import ConfigurationError, InfeasibleError
from repro.units import MBIT, ceil_div
from repro.dram.edram import EDRAMMacro
from repro.dram.organizations import AddressMapping, MappingScheme


@dataclass(frozen=True)
class BufferSpec:
    """One application buffer to place.

    Attributes:
        name: Buffer name.
        size_bits: Capacity.
        traffic_bits_per_s: Sustained traffic the buffer carries.
    """

    name: str
    size_bits: int
    traffic_bits_per_s: float

    def __post_init__(self) -> None:
        if self.size_bits <= 0:
            raise ConfigurationError(f"{self.name}: size must be positive")
        if self.traffic_bits_per_s < 0:
            raise ConfigurationError(
                f"{self.name}: traffic must be >= 0"
            )


@dataclass(frozen=True)
class Placement:
    """Where one buffer landed.

    Attributes:
        buffer: The placed buffer.
        banks: Bank indices the buffer occupies (contiguous rows).
        base_word: Word address of the buffer's start.
    """

    buffer: BufferSpec
    banks: tuple
    base_word: int


@dataclass(frozen=True)
class AllocationPlan:
    """A complete allocation.

    Attributes:
        macro: The target macro.
        placements: One per buffer.
    """

    macro: EDRAMMacro
    placements: tuple

    def placement_of(self, name: str) -> Placement:
        for placement in self.placements:
            if placement.buffer.name == name:
                return placement
        raise ConfigurationError(f"unknown buffer {name!r}")

    def banks_shared(self, a: str, b: str) -> int:
        """Banks where both buffers live."""
        return len(
            set(self.placement_of(a).banks)
            & set(self.placement_of(b).banks)
        )

    def interference_estimate(self) -> float:
        """Traffic-weighted bank-sharing score (lower is better).

        For each pair of buffers sharing at least one bank, add the
        geometric mean of their traffics weighted by the shared-bank
        fraction — a proxy for the row-thrashing they will inflict on
        each other under an open-page policy.
        """
        total = 0.0
        placements = self.placements
        for i in range(len(placements)):
            for j in range(i + 1, len(placements)):
                a, b = placements[i], placements[j]
                shared = set(a.banks) & set(b.banks)
                if not shared:
                    continue
                overlap = len(shared) / min(len(a.banks), len(b.banks))
                pressure = (
                    a.buffer.traffic_bits_per_s
                    * b.buffer.traffic_bits_per_s
                ) ** 0.5
                total += overlap * pressure
        return total

    def address_mapping(self) -> AddressMapping:
        """The region-private mapping the plan assumes."""
        return AddressMapping(
            self.macro.organization, MappingScheme.BANK_ROW_COL
        )


@dataclass(frozen=True)
class BankAllocator:
    """Places buffers into a macro's banks, high-traffic first.

    Strategy: sort buffers by traffic (descending); give each buffer the
    least-loaded contiguous run of banks that fits it.  Greedy, but with
    traffic-descending order it matches the optimum on the small buffer
    counts real systems have — and the interference estimate makes any
    residual sharing visible.
    """

    macro: EDRAMMacro

    def _bank_bits(self) -> int:
        org = self.macro.organization
        return org.n_rows * org.page_bits

    def allocate(self, buffers) -> AllocationPlan:
        """Place all buffers.

        Raises:
            InfeasibleError: If total capacity exceeds the macro.
        """
        buffers = tuple(buffers)
        if not buffers:
            raise ConfigurationError("nothing to allocate")
        names = [buffer.name for buffer in buffers]
        if len(set(names)) != len(names):
            raise ConfigurationError(f"duplicate buffer names: {names}")
        total = sum(buffer.size_bits for buffer in buffers)
        if total > self.macro.size_bits:
            raise InfeasibleError(
                f"buffers need {total / MBIT:.2f} Mbit, macro has "
                f"{self.macro.size_bits / MBIT:.2f} Mbit"
            )
        org = self.macro.organization
        bank_bits = self._bank_bits()
        # Load per bank, in bits, plus traffic per bank for tie-breaking.
        fill = [0] * org.n_banks
        load = [0.0] * org.n_banks
        placements = []
        ordered = sorted(
            buffers, key=lambda b: b.traffic_bits_per_s, reverse=True
        )
        for buffer in ordered:
            minimum = min(
                org.n_banks, max(1, ceil_div(buffer.size_bits, bank_bits))
            )
            # Prefer the tightest span (most isolation); widen it when
            # fragmentation leaves no run with enough per-bank room.
            start = None
            n_banks = minimum
            for span in range(minimum, org.n_banks + 1):
                start = self._best_run(fill, load, span, buffer.size_bits)
                if start is not None:
                    n_banks = span
                    break
            if start is None:
                raise InfeasibleError(
                    f"buffer {buffer.name!r} "
                    f"({buffer.size_bits / MBIT:.2f} Mbit) does not fit "
                    f"the remaining bank space"
                )
            banks = tuple(range(start, start + n_banks))
            per_bank = ceil_div(buffer.size_bits, n_banks)
            base_word = self._base_word(start, fill[start])
            for bank in banks:
                fill[bank] += per_bank
                load[bank] += buffer.traffic_bits_per_s / n_banks
            placements.append(
                Placement(buffer=buffer, banks=banks, base_word=base_word)
            )
        return AllocationPlan(macro=self.macro, placements=tuple(placements))

    def _best_run(self, fill, load, n_banks, size_bits):
        """Least-loaded contiguous bank run with room for the buffer."""
        org = self.macro.organization
        bank_bits = self._bank_bits()
        per_bank = ceil_div(size_bits, n_banks)
        best_start = None
        best_load = float("inf")
        for start in range(0, org.n_banks - n_banks + 1):
            run = range(start, start + n_banks)
            if any(fill[bank] + per_bank > bank_bits for bank in run):
                continue
            run_load = sum(load[bank] for bank in run)
            if run_load < best_load:
                best_start, best_load = start, run_load
        return best_start

    def _base_word(self, bank: int, offset_bits: int) -> int:
        """Word address of (bank, offset) under BANK_ROW_COL."""
        org = self.macro.organization
        words_per_bank = (org.n_rows * org.page_bits) // org.word_bits
        return bank * words_per_bank + offset_bits // org.word_bits
