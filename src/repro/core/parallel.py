"""Process-parallel evaluation of independent design points.

Design-space sweeps are embarrassingly parallel: every point is a pure
function of its parameters.  :func:`parallel_map` runs such workloads
across a process pool with

* **deterministic chunking** — points are split into contiguous chunks
  in input order, so the work distribution does not depend on worker
  scheduling;
* **ordered merge** — results come back in input order regardless of
  which worker finished first, so parallel runs are indistinguishable
  from serial ones;
* **graceful fallback** — if the platform cannot spawn workers (single
  CPU, sandboxed environment, non-picklable callables) the map silently
  degrades to the serial path, which is always correct.

Per-point errors of declared types are captured as
:class:`PointOutcome` failures instead of poisoning the whole pool, so
a sweep over a partially-infeasible grid behaves like its serial
``skip_errors`` counterpart.
"""

from __future__ import annotations

import os
import pickle
from concurrent.futures import ProcessPoolExecutor
from dataclasses import dataclass

from repro.errors import ConfigurationError


@dataclass(frozen=True)
class ParallelConfig:
    """How to distribute a sweep across processes.

    Attributes:
        workers: Worker processes (None = ``os.cpu_count()``).  A value
            of 0 or 1 — or a single-CPU machine — selects the in-process
            serial path.
        chunk_size: Points per task sent to a worker (None = one
            contiguous chunk per worker).  Chunks are always contiguous
            slices of the input, so chunking never reorders evaluation
            within a chunk.
    """

    workers: int | None = None
    chunk_size: int | None = None

    def __post_init__(self) -> None:
        if self.workers is not None and self.workers < 0:
            raise ConfigurationError("workers must be >= 0")
        if self.chunk_size is not None and self.chunk_size < 1:
            raise ConfigurationError("chunk_size must be >= 1")

    def resolved_workers(self, n_items: int) -> int:
        workers = self.workers
        if workers is None:
            workers = os.cpu_count() or 1
        return max(1, min(workers, n_items))


@dataclass(frozen=True)
class PointOutcome:
    """Result of one evaluated point.

    Attributes:
        ok: Whether the evaluation returned normally.
        value: The return value (None on failure).
        error: ``repr`` of the captured exception (None on success).
    """

    ok: bool
    value: object = None
    error: str | None = None


def _run_chunk(fn, chunk, catch):
    """Worker entry point: evaluate one contiguous chunk of items.

    Top-level so it pickles under the spawn start method.  ``catch`` is
    a tuple of exception types converted to failed outcomes; anything
    else propagates and fails the whole map (which then falls back to
    the serial path in the parent, re-raising deterministically).
    """
    outcomes = []
    for item in chunk:
        try:
            outcomes.append(PointOutcome(ok=True, value=fn(item)))
        except catch as error:
            outcomes.append(PointOutcome(ok=False, error=repr(error)))
    return outcomes


def _chunks(items: list, chunk_size: int) -> list:
    return [
        items[start : start + chunk_size]
        for start in range(0, len(items), chunk_size)
    ]


def _picklable(*objects) -> bool:
    try:
        for obj in objects:
            pickle.dumps(obj)
    except Exception:
        return False
    return True


def _serial_map(fn, items, catch) -> list:
    return _run_chunk(fn, items, catch)


def parallel_map(
    fn,
    items,
    config: ParallelConfig | None = None,
    catch: tuple = (),
) -> list:
    """Evaluate ``fn`` over ``items``, optionally across processes.

    Args:
        fn: Single-argument callable; must be picklable (a module-level
            function or a dataclass instance) to actually run in
            parallel — otherwise the serial path is used.
        items: Finite iterable of inputs (materialized up front).
        config: Distribution settings; None means serial.
        catch: Exception types captured per point as failed
            :class:`PointOutcome` entries instead of raised.

    Returns:
        One :class:`PointOutcome` per item, in input order.
    """
    items = list(items)
    catch = tuple(catch) or (_NeverRaised,)
    if not items:
        return []
    if config is None:
        return _serial_map(fn, items, catch)
    workers = config.resolved_workers(len(items))
    if workers <= 1:
        return _serial_map(fn, items, catch)
    if not _picklable(fn, items[0]):
        return _serial_map(fn, items, catch)
    chunk_size = config.chunk_size
    if chunk_size is None:
        from repro.units import ceil_div

        chunk_size = ceil_div(len(items), workers)
    chunks = _chunks(items, chunk_size)
    try:
        with ProcessPoolExecutor(max_workers=workers) as pool:
            futures = [
                pool.submit(_run_chunk, fn, chunk, catch)
                for chunk in chunks
            ]
            merged: list = []
            for future in futures:  # submission order == input order
                merged.extend(future.result())
            return merged
    except Exception:
        # Broken pool, spawn failure, or a worker-side crash outside
        # `catch`: redo serially so the error (if any) surfaces with a
        # clean traceback and the caller never sees partial results.
        return _serial_map(fn, items, catch)


class _NeverRaised(Exception):
    """Placeholder exception type: an empty ``catch`` catches nothing."""
