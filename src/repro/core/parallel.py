"""Process-parallel evaluation of independent design points.

Design-space sweeps are embarrassingly parallel: every point is a pure
function of its parameters.  :func:`parallel_map` runs such workloads
across a process pool with

* **deterministic chunking** — points are split into contiguous chunks
  in input order, so the work distribution does not depend on worker
  scheduling;
* **ordered merge** — results come back in input order regardless of
  which worker finished first, so parallel runs are indistinguishable
  from serial ones;
* **graceful fallback** — if the platform cannot spawn workers (single
  CPU, sandboxed environment, non-picklable callables) the map degrades
  to the serial path, which is always correct.  A pool that fails *after*
  starting is re-run serially too, but loudly: the root cause is surfaced
  as a :class:`ParallelFallbackWarning` and counted in the global metrics
  registry (``parallel_map.fallbacks``), because side-effectful ``fn``s
  may have executed twice on the items the pool already finished;
* **bounded retry** — *transient* pool failures (spawn/resource errors,
  broken executors; :data:`TRANSIENT_POOL_ERRORS`) are retried with
  exponential backoff (``ParallelConfig.max_retries`` /
  ``backoff_s``, counted as ``parallel_map.retries``) before the serial
  fallback; workload exceptions are deterministic and never retried;
* **per-chunk timeouts** — with ``ParallelConfig.timeout_s`` set, a
  chunk that misses its result deadline is quarantined as failed
  :class:`PointOutcome` entries (counted as ``parallel_map.timeouts``)
  and the pool is abandoned without waiting, so a hung point cannot
  hang the sweep.

Sweep worker telemetry (chunk wall times, pool runs, serial-path
reasons) is recorded into :data:`repro.obs.metrics.GLOBAL_METRICS` when
that registry is enabled; with it disabled (the default) the record
calls hit no-op null metrics.  With telemetry on, the pool and serial
paths emit the *same* canonical counter set (``parallel_map.runs`` /
``.points`` counters, ``.workers`` / ``.chunks`` gauges, the
``.chunk_us`` histogram) so dashboards don't go dark when a sweep
degrades to the serial path; and worker processes snapshot their own
``GLOBAL_METRICS`` per chunk, returning it alongside the chunk's
outcomes, so ``parallel_map`` folds worker-side telemetry into the
parent registry (:func:`repro.obs.aggregate.fold_snapshot`) instead of
letting it die with the pool.

``ledger=`` streams chunk timings, retries, timeouts and fallbacks to
a :class:`repro.obs.ledger.RunLedger`; ``progress=`` feeds a
:class:`repro.obs.progress.ProgressReporter` per merged chunk.  Both
default to None and cost nothing when off.

Per-point errors of declared types are captured as
:class:`PointOutcome` failures instead of poisoning the whole pool, so
a sweep over a partially-infeasible grid behaves like its serial
``skip_errors`` counterpart.
"""

from __future__ import annotations

import os
import pickle
import time
import warnings
from concurrent.futures import BrokenExecutor, ProcessPoolExecutor
from concurrent.futures import TimeoutError as FuturesTimeout
from dataclasses import dataclass

from repro.errors import CancelledError, ConfigurationError
from repro.obs.aggregate import fold_snapshot
from repro.obs.metrics import GLOBAL_METRICS

#: Pool failures worth retrying: executor infrastructure breakage
#: (broken pool, killed worker) and OS-level spawn/resource errors.
#: Anything else that escapes a worker is the workload's own exception
#: and is deterministic — retrying would just re-raise it.
TRANSIENT_POOL_ERRORS = (OSError, BrokenExecutor)


def check_cancelled(cancel) -> None:
    """Raise :class:`~repro.errors.CancelledError` if ``cancel`` fired.

    ``cancel`` is duck-typed — any object with a boolean ``cancelled``
    attribute (and optionally a ``reason``), typically a
    :class:`~repro.serve.resilience.CancelToken`.  Core never imports
    the serve layer; this helper is the one cancellation check shared
    by the sweep/parallel/executor chunk boundaries.
    """
    if cancel is None:
        return
    if cancel.cancelled:
        reason = getattr(cancel, "reason", None) or "cancelled"
        raise CancelledError(f"cancelled ({reason})")


class ParallelFallbackWarning(UserWarning):
    """The process pool failed and the workload was re-run serially.

    The message carries the root cause (broken pool, spawn failure, or
    a worker crash outside ``catch``) — previously discarded — and
    flags that side-effectful evaluation functions may have executed
    twice for items the pool already processed.
    """


@dataclass(frozen=True)
class ParallelConfig:
    """How to distribute a sweep across processes.

    Attributes:
        workers: Worker processes (None = ``os.cpu_count()``).  A value
            of 0 or 1 — or a single-CPU machine — selects the in-process
            serial path.
        chunk_size: Points per task sent to a worker (None = one
            contiguous chunk per worker).  Chunks are always contiguous
            slices of the input, so chunking never reorders evaluation
            within a chunk.
        timeout_s: Per-chunk result deadline.  A chunk that has not
            produced its result by the time the ordered merge reaches it
            is *quarantined*: every point in it becomes a failed
            :class:`PointOutcome` (``error`` carries the timeout) and
            the pool is abandoned without waiting for the hung worker.
            None (default) waits forever.
        max_retries: Pool construction/run attempts (beyond the first)
            for *transient* failures (:data:`TRANSIENT_POOL_ERRORS`)
            before the loud serial fallback.
        backoff_s: Initial retry backoff; doubles per retry.
    """

    workers: int | None = None
    chunk_size: int | None = None
    timeout_s: float | None = None
    max_retries: int = 2
    backoff_s: float = 0.05

    def __post_init__(self) -> None:
        if self.workers is not None and self.workers < 0:
            raise ConfigurationError("workers must be >= 0")
        if self.chunk_size is not None and self.chunk_size < 1:
            raise ConfigurationError("chunk_size must be >= 1")
        if self.timeout_s is not None and self.timeout_s <= 0:
            raise ConfigurationError("timeout_s must be positive")
        if self.max_retries < 0:
            raise ConfigurationError("max_retries must be >= 0")
        if self.backoff_s < 0:
            raise ConfigurationError("backoff_s must be >= 0")

    def resolved_workers(self, n_items: int) -> int:
        workers = self.workers
        if workers is None:
            workers = os.cpu_count() or 1
        return max(1, min(workers, n_items))


@dataclass(frozen=True)
class PointOutcome:
    """Result of one evaluated point.

    Attributes:
        ok: Whether the evaluation returned normally.
        value: The return value (None on failure).
        error: ``repr`` of the captured exception (None on success).
    """

    ok: bool
    value: object = None
    error: str | None = None


def _run_chunk(fn, chunk, catch):
    """Worker entry point: evaluate one contiguous chunk of items.

    Top-level so it pickles under the spawn start method.  ``catch`` is
    a tuple of exception types converted to failed outcomes; anything
    else propagates and fails the whole map (which then falls back to
    the serial path in the parent, re-raising deterministically).
    """
    outcomes = []
    for item in chunk:
        try:
            outcomes.append(PointOutcome(ok=True, value=fn(item)))
        except catch as error:
            outcomes.append(PointOutcome(ok=False, error=repr(error)))
    return outcomes


def _instrumented_run_chunk(fn, chunk, catch):
    """Telemetry variant: wall time + the worker's metrics snapshot.

    Runs in the worker process with its ``GLOBAL_METRICS`` force-enabled
    and reset around the chunk, so whatever the workload records there
    (``inject.*`` counters, workload histograms) is captured per chunk
    and shipped back for the parent to fold — instead of dying with the
    pool.  The registry is reset first because fork-start workers
    inherit the parent's counts, which the parent already has.
    """
    GLOBAL_METRICS.enabled = True
    GLOBAL_METRICS.reset()
    start = time.perf_counter()
    outcomes = _run_chunk(fn, chunk, catch)
    elapsed = time.perf_counter() - start
    snapshot = GLOBAL_METRICS.snapshot()
    GLOBAL_METRICS.reset()
    GLOBAL_METRICS.enabled = False
    return elapsed, snapshot, outcomes


def _chunks(items: list, chunk_size: int) -> list:
    return [
        items[start : start + chunk_size]
        for start in range(0, len(items), chunk_size)
    ]


def _picklable(*objects) -> bool:
    try:
        for obj in objects:
            pickle.dumps(obj)
    except Exception:
        return False
    return True


def _serial_map(fn, items, catch) -> list:
    return _run_chunk(fn, items, catch)


def parallel_map(
    fn,
    items,
    config: ParallelConfig | None = None,
    catch: tuple = (),
    ledger=None,
    progress=None,
    cancel=None,
) -> list:
    """Evaluate ``fn`` over ``items``, optionally across processes.

    Args:
        fn: Single-argument callable; must be picklable (a module-level
            function or a dataclass instance) to actually run in
            parallel — otherwise the serial path is used.
        items: Finite iterable of inputs (materialized up front).
        config: Distribution settings; None means serial.
        catch: Exception types captured per point as failed
            :class:`PointOutcome` entries instead of raised.
        ledger: Optional :class:`~repro.obs.ledger.RunLedger` receiving
            ``chunk``/``retry``/``timeout``/``fallback`` events.
        progress: Optional
            :class:`~repro.obs.progress.ProgressReporter` advanced per
            merged chunk.
        cancel: Cooperative cancellation token (boolean ``cancelled``
            attribute).  Checked at chunk boundaries; a fired token
            raises :class:`~repro.errors.CancelledError` — never
            retried, never degraded to the serial fallback.

    Returns:
        One :class:`PointOutcome` per item, in input order.
    """
    items = list(items)
    catch = tuple(catch) or (_NeverRaised,)
    if not items:
        return []
    if config is None:
        if cancel is None:
            return _serial_map(fn, items, catch)
        merged: list = []
        for item in items:
            check_cancelled(cancel)
            merged.extend(_run_chunk(fn, [item], catch))
        return merged
    telemetry = GLOBAL_METRICS.enabled
    workers = config.resolved_workers(len(items))
    chunk_size = config.chunk_size
    if chunk_size is None:
        from repro.units import ceil_div

        chunk_size = ceil_div(len(items), workers)
    chunks = _chunks(items, chunk_size)
    serial_reason = None
    if workers <= 1:
        serial_reason = "single_worker"
    elif not _picklable(fn, items[0]):
        serial_reason = "non_picklable"
    if telemetry:
        # The canonical counter set: identical names on the pool path
        # and every serial path, so telemetry never silently thins out
        # when a sweep degrades to serial execution.
        GLOBAL_METRICS.counter("parallel_map.runs").inc()
        GLOBAL_METRICS.counter("parallel_map.points").inc(len(items))
        GLOBAL_METRICS.gauge("parallel_map.workers").set(
            1 if serial_reason else workers
        )
        GLOBAL_METRICS.gauge("parallel_map.chunks").set(len(chunks))
    if serial_reason is not None:
        GLOBAL_METRICS.counter(
            f"parallel_map.serial.{serial_reason}"
        ).inc()
        return _serial_chunked(
            fn, chunks, catch, telemetry, ledger, progress, cancel=cancel
        )
    if telemetry:
        GLOBAL_METRICS.counter("parallel_map.pool_runs").inc()
    worker_fn = _instrumented_run_chunk if telemetry else _run_chunk
    attempt = 0
    # One accounting notebook for the whole map call: a retried pool
    # attempt (or the serial fallback) re-processes chunks the failed
    # attempt already reported, and without this dedup the ledger,
    # progress line and quarantine counters double-count them — the
    # pool and serial-fallback paths then disagree on
    # `parallel_map.timeouts` for a chunk that timed out before a
    # transient retry.
    noted: set = set()
    while True:
        try:
            return _pool_map(
                worker_fn,
                fn,
                chunks,
                catch,
                workers,
                config.timeout_s,
                telemetry,
                ledger,
                progress,
                noted,
                cancel=cancel,
            )
        except CancelledError:
            # Cancellation is a request to stop, not a pool failure:
            # it must reach the caller before the transient-retry and
            # serial-fallback handlers get a chance to re-run the
            # remaining chunks.
            raise
        except TRANSIENT_POOL_ERRORS as error:
            # Spawn/resource exhaustion and broken pools are often
            # transient (fork storms, momentary fd pressure): back off
            # and retry a bounded number of times before giving up.
            if attempt < config.max_retries:
                attempt += 1
                GLOBAL_METRICS.counter("parallel_map.retries").inc()
                if ledger is not None:
                    ledger.event(
                        "retry", attempt=attempt, error=repr(error)
                    )
                time.sleep(config.backoff_s * (2 ** (attempt - 1)))
                continue
            return _fallback_serial(
                fn, chunks, catch, error, telemetry, ledger, progress,
                noted, cancel=cancel,
            )
        except Exception as error:
            # A worker-side crash outside `catch` is the workload's own
            # deterministic exception: no retry, redo serially so it
            # surfaces with a clean traceback.
            return _fallback_serial(
                fn, chunks, catch, error, telemetry, ledger, progress,
                noted, cancel=cancel,
            )


def _note_chunk(
    index,
    chunk,
    outcomes,
    elapsed,
    ledger,
    progress,
    noted=None,
    status="ok",
    timeout_s=None,
):
    """Report one merged chunk to telemetry — exactly once per map call.

    All chunk-level accounting funnels through here: the regular
    ``chunk`` event/progress note *and* the quarantine path
    (``status="timeout"``: the ``parallel_map.timeouts`` counter, the
    ``timeout``/``span_end`` ledger events, the failed-progress note).
    ``noted`` is the map-level set of already-reported chunk indices;
    a chunk re-processed by a retry attempt or the serial fallback is
    merged again but never reported twice.
    """
    if noted is not None:
        if index in noted:
            return
        noted.add(index)
    if status == "timeout":
        GLOBAL_METRICS.counter("parallel_map.timeouts").inc()
        if ledger is not None:
            ledger.event("timeout", index=index, size=len(chunk))
            # A completed chunk's duration reaches the report via its
            # `chunk` event; a quarantined chunk would otherwise vanish
            # from the span waterfall.  No span_start exists — the
            # report anchors the bar at run start, which is when the
            # pool submitted it — and the duration is the full
            # deadline, the only lower bound we have for a worker that
            # never answered.
            ledger.event(
                "span_end",
                name=f"chunk {index} (timeout)",
                status="timeout",
                s=round(timeout_s, 6),
            )
        if progress is not None:
            progress.update(failed=len(chunk))
        return
    if ledger is None and progress is None:
        return
    failed = sum(1 for outcome in outcomes if not outcome.ok)
    if ledger is not None:
        ledger.event(
            "chunk",
            index=index,
            size=len(chunk),
            s=round(elapsed, 6),
            failed=failed,
        )
    if progress is not None:
        progress.update(done=len(outcomes) - failed, failed=failed)


def _serial_chunked(
    fn, chunks, catch, telemetry, ledger, progress, noted=None, cancel=None
) -> list:
    """Serial evaluation with the same per-chunk telemetry as the pool."""
    merged: list = []
    for index, chunk in enumerate(chunks):
        check_cancelled(cancel)
        start = time.perf_counter()
        outcomes = _run_chunk(fn, chunk, catch)
        elapsed = time.perf_counter() - start
        if telemetry and (noted is None or index not in noted):
            # Mirror _note_chunk's dedup: a serial fallback re-runs
            # chunks a failed pool attempt already recorded, and
            # re-recording them would skew the chunk_us histogram.
            GLOBAL_METRICS.histogram("parallel_map.chunk_us").record(
                elapsed * 1e6
            )
        _note_chunk(
            index, chunk, outcomes, elapsed, ledger, progress, noted
        )
        merged.extend(outcomes)
    return merged


def _pool_map(
    worker_fn,
    fn,
    chunks,
    catch,
    workers,
    timeout_s,
    telemetry,
    ledger,
    progress,
    noted=None,
    cancel=None,
) -> list:
    """One process-pool attempt; raises on pool/workload failures.

    Timed-out chunks do *not* raise: every point of an overdue chunk is
    quarantined as a failed :class:`PointOutcome` and the pool is
    abandoned without waiting (``wait=False``), so one hung worker can
    never hang the parent or poison the other chunks' results.
    """
    pool = ProcessPoolExecutor(max_workers=workers)
    abandoned = False
    try:
        futures = [
            pool.submit(worker_fn, fn, chunk, catch) for chunk in chunks
        ]
        merged: list = []
        for index, (chunk, future) in enumerate(zip(chunks, futures)):
            # submission order == input order
            if cancel is not None and cancel.cancelled:
                # Abandon the pool exactly like a timed-out chunk: no
                # waiting on stragglers, pending futures cancelled.
                abandoned = True
                check_cancelled(cancel)
            try:
                payload = future.result(timeout=timeout_s)
            except FuturesTimeout:
                abandoned = True
                message = (
                    f"TimeoutError: chunk of {len(chunk)} item(s) "
                    f"exceeded the {timeout_s}s deadline"
                )
                _note_chunk(
                    index,
                    chunk,
                    None,
                    0.0,
                    ledger,
                    progress,
                    noted,
                    status="timeout",
                    timeout_s=timeout_s,
                )
                merged.extend(
                    PointOutcome(ok=False, error=message) for _ in chunk
                )
                continue
            if telemetry:
                elapsed, snapshot, outcomes = payload
                if noted is None or index not in noted:
                    # A retried pool attempt re-delivers chunks the
                    # failed attempt already reported; folding their
                    # snapshots (or re-recording chunk_us) again would
                    # double-count worker-side counters.
                    GLOBAL_METRICS.histogram(
                        "parallel_map.chunk_us"
                    ).record(elapsed * 1e6)
                    # Fold the worker's own metrics into this process's
                    # registry — the whole point of shipping the
                    # snapshot.
                    fold_snapshot(GLOBAL_METRICS, snapshot)
            else:
                elapsed = 0.0
                outcomes = payload
            _note_chunk(
                index, chunk, outcomes, elapsed, ledger, progress, noted
            )
            merged.extend(outcomes)
        return merged
    finally:
        shutdown = getattr(pool, "shutdown", None)
        if shutdown is not None:  # stand-in executors may lack it
            shutdown(wait=not abandoned, cancel_futures=abandoned)


def _fallback_serial(
    fn, chunks, catch, error, telemetry, ledger, progress, noted=None,
    cancel=None,
) -> list:
    """Loud serial re-run after the pool (and its retries) failed."""
    GLOBAL_METRICS.counter("parallel_map.fallbacks").inc()
    n_items = sum(len(chunk) for chunk in chunks)
    if ledger is not None:
        ledger.event("fallback", error=repr(error), items=n_items)
    warnings.warn(
        f"process pool failed ({error!r}); re-running all "
        f"{n_items} items serially — side-effectful functions "
        "may execute twice",
        ParallelFallbackWarning,
        stacklevel=3,
    )
    return _serial_chunked(
        fn, chunks, catch, telemetry, ledger, progress, noted,
        cancel=cancel,
    )


class _NeverRaised(Exception):
    """Placeholder exception type: an empty ``catch`` catches nothing."""
