"""Process-parallel evaluation of independent design points.

Design-space sweeps are embarrassingly parallel: every point is a pure
function of its parameters.  :func:`parallel_map` runs such workloads
across a process pool with

* **deterministic chunking** — points are split into contiguous chunks
  in input order, so the work distribution does not depend on worker
  scheduling;
* **ordered merge** — results come back in input order regardless of
  which worker finished first, so parallel runs are indistinguishable
  from serial ones;
* **graceful fallback** — if the platform cannot spawn workers (single
  CPU, sandboxed environment, non-picklable callables) the map degrades
  to the serial path, which is always correct.  A pool that fails *after*
  starting is re-run serially too, but loudly: the root cause is surfaced
  as a :class:`ParallelFallbackWarning` and counted in the global metrics
  registry (``parallel_map.fallbacks``), because side-effectful ``fn``s
  may have executed twice on the items the pool already finished.

Sweep worker telemetry (chunk wall times, pool runs, serial-path
reasons) is recorded into :data:`repro.obs.metrics.GLOBAL_METRICS` when
that registry is enabled; with it disabled (the default) the record
calls hit no-op null metrics.

Per-point errors of declared types are captured as
:class:`PointOutcome` failures instead of poisoning the whole pool, so
a sweep over a partially-infeasible grid behaves like its serial
``skip_errors`` counterpart.
"""

from __future__ import annotations

import os
import pickle
import time
import warnings
from concurrent.futures import ProcessPoolExecutor
from dataclasses import dataclass

from repro.errors import ConfigurationError
from repro.obs.metrics import GLOBAL_METRICS


class ParallelFallbackWarning(UserWarning):
    """The process pool failed and the workload was re-run serially.

    The message carries the root cause (broken pool, spawn failure, or
    a worker crash outside ``catch``) — previously discarded — and
    flags that side-effectful evaluation functions may have executed
    twice for items the pool already processed.
    """


@dataclass(frozen=True)
class ParallelConfig:
    """How to distribute a sweep across processes.

    Attributes:
        workers: Worker processes (None = ``os.cpu_count()``).  A value
            of 0 or 1 — or a single-CPU machine — selects the in-process
            serial path.
        chunk_size: Points per task sent to a worker (None = one
            contiguous chunk per worker).  Chunks are always contiguous
            slices of the input, so chunking never reorders evaluation
            within a chunk.
    """

    workers: int | None = None
    chunk_size: int | None = None

    def __post_init__(self) -> None:
        if self.workers is not None and self.workers < 0:
            raise ConfigurationError("workers must be >= 0")
        if self.chunk_size is not None and self.chunk_size < 1:
            raise ConfigurationError("chunk_size must be >= 1")

    def resolved_workers(self, n_items: int) -> int:
        workers = self.workers
        if workers is None:
            workers = os.cpu_count() or 1
        return max(1, min(workers, n_items))


@dataclass(frozen=True)
class PointOutcome:
    """Result of one evaluated point.

    Attributes:
        ok: Whether the evaluation returned normally.
        value: The return value (None on failure).
        error: ``repr`` of the captured exception (None on success).
    """

    ok: bool
    value: object = None
    error: str | None = None


def _run_chunk(fn, chunk, catch):
    """Worker entry point: evaluate one contiguous chunk of items.

    Top-level so it pickles under the spawn start method.  ``catch`` is
    a tuple of exception types converted to failed outcomes; anything
    else propagates and fails the whole map (which then falls back to
    the serial path in the parent, re-raising deterministically).
    """
    outcomes = []
    for item in chunk:
        try:
            outcomes.append(PointOutcome(ok=True, value=fn(item)))
        except catch as error:
            outcomes.append(PointOutcome(ok=False, error=repr(error)))
    return outcomes


def _timed_run_chunk(fn, chunk, catch):
    """Telemetry variant: also reports worker-side wall time."""
    start = time.perf_counter()
    outcomes = _run_chunk(fn, chunk, catch)
    return time.perf_counter() - start, outcomes


def _chunks(items: list, chunk_size: int) -> list:
    return [
        items[start : start + chunk_size]
        for start in range(0, len(items), chunk_size)
    ]


def _picklable(*objects) -> bool:
    try:
        for obj in objects:
            pickle.dumps(obj)
    except Exception:
        return False
    return True


def _serial_map(fn, items, catch) -> list:
    return _run_chunk(fn, items, catch)


def parallel_map(
    fn,
    items,
    config: ParallelConfig | None = None,
    catch: tuple = (),
) -> list:
    """Evaluate ``fn`` over ``items``, optionally across processes.

    Args:
        fn: Single-argument callable; must be picklable (a module-level
            function or a dataclass instance) to actually run in
            parallel — otherwise the serial path is used.
        items: Finite iterable of inputs (materialized up front).
        config: Distribution settings; None means serial.
        catch: Exception types captured per point as failed
            :class:`PointOutcome` entries instead of raised.

    Returns:
        One :class:`PointOutcome` per item, in input order.
    """
    items = list(items)
    catch = tuple(catch) or (_NeverRaised,)
    if not items:
        return []
    if config is None:
        return _serial_map(fn, items, catch)
    workers = config.resolved_workers(len(items))
    if workers <= 1:
        GLOBAL_METRICS.counter("parallel_map.serial.single_worker").inc()
        return _serial_map(fn, items, catch)
    if not _picklable(fn, items[0]):
        GLOBAL_METRICS.counter("parallel_map.serial.non_picklable").inc()
        return _serial_map(fn, items, catch)
    chunk_size = config.chunk_size
    if chunk_size is None:
        from repro.units import ceil_div

        chunk_size = ceil_div(len(items), workers)
    chunks = _chunks(items, chunk_size)
    telemetry = GLOBAL_METRICS.enabled
    worker_fn = _timed_run_chunk if telemetry else _run_chunk
    if telemetry:
        GLOBAL_METRICS.counter("parallel_map.pool_runs").inc()
        GLOBAL_METRICS.counter("parallel_map.points").inc(len(items))
        GLOBAL_METRICS.gauge("parallel_map.workers").set(workers)
        GLOBAL_METRICS.gauge("parallel_map.chunks").set(len(chunks))
    try:
        with ProcessPoolExecutor(max_workers=workers) as pool:
            futures = [
                pool.submit(worker_fn, fn, chunk, catch)
                for chunk in chunks
            ]
            merged: list = []
            for future in futures:  # submission order == input order
                if telemetry:
                    elapsed, outcomes = future.result()
                    GLOBAL_METRICS.histogram(
                        "parallel_map.chunk_us"
                    ).record(elapsed * 1e6)
                else:
                    outcomes = future.result()
                merged.extend(outcomes)
            return merged
    except Exception as error:
        # Broken pool, spawn failure, or a worker-side crash outside
        # `catch`: redo serially so the error (if any) surfaces with a
        # clean traceback and the caller never sees partial results.
        # Surface the root cause instead of discarding it — callers
        # with side-effectful `fn`s need to know items may run twice.
        GLOBAL_METRICS.counter("parallel_map.fallbacks").inc()
        warnings.warn(
            f"process pool failed ({error!r}); re-running all "
            f"{len(items)} items serially — side-effectful functions "
            "may execute twice",
            ParallelFallbackWarning,
            stacklevel=2,
        )
        return _serial_map(fn, items, catch)


class _NeverRaised(Exception):
    """Placeholder exception type: an empty ``catch`` catches nothing."""
