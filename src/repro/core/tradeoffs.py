"""Logic <-> memory die-area trading.

"Furthermore the designer can trade logic area for memory area in a way
heretofore impossible." (Section 3.)  And Section 1's concrete instance:
in quarter-micron, 128 Mbit + 500 kgates or 64 Mbit + 1 Mgates fit the
same die.

:class:`LogicMemoryTrade` sweeps the frontier for a fixed die budget and
process, and answers point queries ("how many gates do I give up for 16
more Mbit?").
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.errors import ConfigurationError, InfeasibleError
from repro.units import MBIT
from repro.area.die import DieAreaModel
from repro.area.process import BaseProcess, DRAM_BASED_025

#: Die budget at which the paper's two quarter-micron feasibility points
#: (128 Mbit + 500 kgates; 64 Mbit + 1 Mgates) both just fit, under the
#: calibrated DRAM-based process and macro model.
QUARTER_MICRON_DIE_BUDGET_MM2 = 203.7


@dataclass(frozen=True)
class TradePoint:
    """One point on the logic/memory frontier.

    Attributes:
        logic_gates: Logic budget.
        memory_bits: Maximum memory fitting beside it.
    """

    logic_gates: float
    memory_bits: int

    @property
    def memory_mbit(self) -> float:
        return self.memory_bits / MBIT


@dataclass(frozen=True)
class LogicMemoryTrade:
    """Frontier of feasible (logic, memory) pairs on one die.

    Attributes:
        die_budget_mm2: Total die area available for memory + logic.
        process: Base process.
        interface_width: Memory interface width assumed for macro area.
    """

    die_budget_mm2: float
    process: BaseProcess = DRAM_BASED_025
    interface_width: int = 64

    def __post_init__(self) -> None:
        if self.die_budget_mm2 <= 0:
            raise ConfigurationError("die budget must be positive")
        if self.interface_width <= 0:
            raise ConfigurationError("interface width must be positive")

    def _model(self) -> DieAreaModel:
        return DieAreaModel(process=self.process)

    def max_memory_for_logic(self, logic_gates: float) -> int:
        """Largest memory fitting beside a logic budget."""
        return self._model().max_memory_bits(
            self.die_budget_mm2, logic_gates, self.interface_width
        )

    def max_logic_for_memory(self, memory_bits: int) -> float:
        """Largest logic budget fitting beside a memory size."""
        from repro.area.macro import MacroAreaModel
        from repro.area.logic import LogicAreaModel

        macro = MacroAreaModel(process=self.process)
        memory = (
            macro.total_area_mm2(memory_bits, self.interface_width)
            if memory_bits > 0
            else 0.0
        )
        remaining = self.die_budget_mm2 - memory
        if remaining <= 0:
            raise InfeasibleError(
                f"{memory_bits / MBIT:.1f} Mbit alone exceeds the die budget"
            )
        return LogicAreaModel(process=self.process).gates_fitting(remaining)

    def frontier(self, gate_counts) -> list:
        """Sweep the frontier over a list of gate budgets."""
        points = []
        for gates in gate_counts:
            try:
                bits = self.max_memory_for_logic(gates)
            except InfeasibleError:
                bits = 0
            points.append(TradePoint(logic_gates=gates, memory_bits=bits))
        return points

    def exchange_rate_gates_per_mbit(self) -> float:
        """Marginal trade: logic gates given up per additional Mbit.

        With linear area models this is density_logic / density_memory —
        about 7800 gates per Mbit on the calibrated DRAM-based process.
        """
        gates_per_mm2 = self.process.logic_density_kgates_per_mm2 * 1e3
        mm2_per_mbit = 1.0 / self.process.memory_density_mbit_per_mm2
        return gates_per_mm2 * mm2_per_mbit
