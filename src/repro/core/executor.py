"""Sweep executors: one interface, local pool to multi-node work queue.

ROADMAP item 3: ``core/parallel.py`` stops at one machine's process
pool.  This module generalizes sweep execution behind a single
interface so :meth:`Sweep.run <repro.core.sweep.Sweep.run>` and
:meth:`DesignSpaceExplorer.explore
<repro.core.explorer.DesignSpaceExplorer.explore>` do not care where
points evaluate:

* :class:`SerialExecutor` — the in-process reference path;
* :class:`LocalPoolExecutor` — the existing
  :func:`~repro.core.parallel.parallel_map` process pool behind the
  interface (deterministic chunking, ordered merge, retries, timeouts);
* :class:`WorkQueueExecutor` — multiple worker *processes* (spawnable
  on other machines) coordinated through a shared work-queue
  directory.  See docs/DISTRIBUTED.md for the protocol walkthrough.

Work-queue protocol (all filesystem, no sockets, NFS-friendly)::

    queue/
      manifest.json         run id, chunk count, lease timeout
      task.pkl              pickled (fn, catch) every worker loads
      pending/chunk-00007.json   unclaimed chunks
      leases/chunk-00007.json    claimed chunks (claim = atomic rename)
      results/chunk-00007.json   completed chunks (atomic tmp+replace)
      store/segment-<worker>.jsonl  per-worker durable result segments
      workers/<worker>.json      heartbeats
      done.json                  coordinator's shutdown sentinel

* **Claim-by-rename** — a worker claims a chunk by ``os.rename``-ing it
  from ``pending/`` into ``leases/``; rename is atomic, so exactly one
  claimant wins and the losers see ``FileNotFoundError`` and move on.
* **Lease expiry** — a worker renews its lease's mtime after every
  evaluated point; a lease whose mtime is older than the manifest's
  ``lease_timeout_s`` belongs to a dead worker.
* **Work stealing** — both the coordinator and idle workers requeue
  expired leases (again by rename, so exactly one stealer wins), so a
  ``SIGKILL``-ed worker's chunks are reassigned instead of lost.
* **Durable results** — workers append every *fresh* evaluation to
  their own fsync'd :class:`~repro.core.store.ResultStore` segment
  before the chunk completes; a stolen chunk consults all segments
  first, so points a dead worker already finished are served from the
  store, never evaluated twice.  The coordinator merges segments into
  the caller's shared store (``store=``) with ``store_merge``
  provenance events on the run ledger.

Every executor returns one :class:`~repro.core.parallel.PointOutcome`
per item, in input order — bit-identical to the serial reference path
(pinned by ``tests/test_core_executor.py``).
"""

from __future__ import annotations

import base64
import json
import os
import pickle
import signal
import subprocess
import sys
import time
import uuid
from dataclasses import dataclass, field as dataclass_field
from pathlib import Path

from repro.errors import ConfigurationError, SimulationError
from repro.core.parallel import (
    ParallelConfig,
    _NeverRaised,
    check_cancelled,
    parallel_map,
)
from repro.core.store import decode_outcome, encode_outcome
from repro.obs.metrics import GLOBAL_METRICS

#: Subdirectories of a work-queue directory.
PENDING, LEASES, RESULTS, SEGMENTS, WORKERS = (
    "pending",
    "leases",
    "results",
    "store",
    "workers",
)
MANIFEST, TASK_FILE, DONE_FILE = "manifest.json", "task.pkl", "done.json"


class ExecutorError(SimulationError):
    """Distributed execution failed (lost workers, deadline, bad queue)."""


class Executor:
    """Interface every sweep executor implements.

    ``map`` evaluates ``fn`` over ``items`` and returns one
    :class:`PointOutcome` per item in input order.  ``keys`` is an
    optional parallel list of content fingerprints (one per item) that
    store-backed executors use for durable de-duplication; executors
    without a store ignore it.  ``cancel`` is an optional cooperative
    cancellation token (boolean ``cancelled`` attribute) checked at
    chunk boundaries; a fired token raises
    :class:`~repro.errors.CancelledError`.
    """

    name = "executor"

    def map(
        self, fn, items, *, catch=(), keys=None, ledger=None,
        progress=None, cancel=None,
    ) -> list:
        raise NotImplementedError

    def describe(self) -> dict:
        """JSON-able self-description for ``run_start`` ledger events."""
        return {"executor": self.name}

    def close(self) -> None:
        """Release any resources (spawned workers, open stores)."""


@dataclass
class SerialExecutor(Executor):
    """The in-process reference path behind the executor interface."""

    name = "serial"

    def map(
        self, fn, items, *, catch=(), keys=None, ledger=None,
        progress=None, cancel=None,
    ) -> list:
        # workers=0 selects parallel_map's serial path, which still
        # emits the canonical telemetry counter set and notes progress
        # per chunk — executor parity with the pool paths.
        return parallel_map(
            fn,
            items,
            config=ParallelConfig(workers=0),
            catch=catch,
            ledger=ledger,
            progress=progress,
            cancel=cancel,
        )


@dataclass
class LocalPoolExecutor(Executor):
    """One machine's process pool (:func:`parallel_map`) as an executor."""

    config: ParallelConfig = dataclass_field(default_factory=ParallelConfig)

    name = "local_pool"

    def map(
        self, fn, items, *, catch=(), keys=None, ledger=None,
        progress=None, cancel=None,
    ) -> list:
        return parallel_map(
            fn,
            items,
            config=self.config,
            catch=catch,
            ledger=ledger,
            progress=progress,
            cancel=cancel,
        )

    def describe(self) -> dict:
        return {
            "executor": self.name,
            "workers": self.config.workers,
            "chunk_size": self.config.chunk_size,
            "timeout_s": self.config.timeout_s,
        }


def coerce_executor(executor, parallel=None) -> Executor | None:
    """Normalize ``Sweep.run``'s execution arguments to one executor.

    ``parallel=ParallelConfig(...)`` (the pre-PR-8 spelling) becomes a
    :class:`LocalPoolExecutor`; passing both is rejected; None/None
    means the caller's own serial path.
    """
    if executor is not None and parallel is not None:
        raise ConfigurationError(
            "pass either executor= or parallel=, not both"
        )
    if executor is not None:
        if not callable(getattr(executor, "map", None)):
            raise ConfigurationError(
                f"executor must provide .map(), got "
                f"{type(executor).__name__}"
            )
        return executor
    if parallel is not None:
        return LocalPoolExecutor(config=parallel)
    return None


# -- work-queue plumbing -----------------------------------------------------


def atomic_write_json(path: Path, document: dict) -> None:
    """Write a JSON file so readers never see a partial document."""
    tmp_path = path.with_name(path.name + f".tmp-{uuid.uuid4().hex[:8]}")
    with open(tmp_path, "w", encoding="utf-8") as handle:
        json.dump(document, handle)
        handle.flush()
        os.fsync(handle.fileno())
    os.replace(tmp_path, path)


def read_json(path: Path):
    """A JSON document, or None if missing/torn (concurrent writer)."""
    try:
        with open(path, "r", encoding="utf-8") as handle:
            return json.load(handle)
    except (OSError, json.JSONDecodeError):
        return None


def chunk_file_name(index: int) -> str:
    return f"chunk-{index:05d}.json"


class WorkQueue:
    """The shared work-queue directory: layout, claims, leases, results.

    Used from both sides — the coordinator
    (:class:`WorkQueueExecutor`) publishes chunks and collects results;
    workers (:mod:`repro.core.worker`) claim, evaluate and publish.
    """

    def __init__(self, root) -> None:
        self.root = Path(root)
        # Lease-aging observations: name -> (mtime, baseline_age,
        # monotonic anchor).  See expired_leases.
        self._lease_seen: dict = {}

    # -- layout --------------------------------------------------------------

    def directory(self, name: str) -> Path:
        return self.root / name

    def create_layout(self) -> None:
        for name in (PENDING, LEASES, RESULTS, SEGMENTS, WORKERS):
            self.directory(name).mkdir(parents=True, exist_ok=True)

    def reset(self) -> None:
        """Clear any previous run's state (a queue runs one map at a time)."""
        import shutil

        if self.root.exists():
            shutil.rmtree(self.root)
        self.root.mkdir(parents=True, exist_ok=True)
        self.create_layout()

    def manifest(self) -> dict | None:
        return read_json(self.root / MANIFEST)

    def done(self) -> bool:
        return (self.root / DONE_FILE).exists()

    def mark_done(self, queue_id: str) -> None:
        atomic_write_json(self.root / DONE_FILE, {"queue": queue_id})

    # -- task ----------------------------------------------------------------

    def write_task(self, fn, catch: tuple) -> None:
        payload = pickle.dumps({"fn": fn, "catch": tuple(catch)})
        tmp = self.root / (TASK_FILE + ".tmp")
        with open(tmp, "wb") as handle:
            handle.write(payload)
            handle.flush()
            os.fsync(handle.fileno())
        os.replace(tmp, self.root / TASK_FILE)

    def load_task(self) -> tuple:
        with open(self.root / TASK_FILE, "rb") as handle:
            payload = pickle.load(handle)
        return payload["fn"], tuple(payload["catch"])

    # -- chunks --------------------------------------------------------------

    def publish_chunk(
        self,
        index: int,
        indices: list,
        items: list,
        keys: list | None,
        trace: dict | None = None,
    ) -> None:
        document = {
            "chunk": index,
            "indices": list(indices),
            "items": base64.b64encode(pickle.dumps(list(items))).decode(
                "ascii"
            ),
            "keys": list(keys) if keys is not None else None,
        }
        if trace is not None:
            # The chunk's own trace context: the worker binds it
            # verbatim, so its ledger spans parent into the
            # coordinator's trace across the process boundary.
            document["trace"] = dict(trace)
        atomic_write_json(
            self.directory(PENDING) / chunk_file_name(index), document
        )

    def claim_chunk(self, name: str, worker_id: str) -> dict | None:
        """Atomically move one pending chunk into ``leases/``.

        Returns the chunk document, or None if another worker won the
        rename race (or the file vanished).
        """
        source = self.directory(PENDING) / name
        target = self.directory(LEASES) / name
        try:
            os.rename(source, target)
        except OSError:
            return None
        try:
            # Start the lease clock at *claim* time: the rename keeps
            # the chunk file's publish-time mtime, which for a chunk
            # claimed late in a long run would look expired at once.
            os.utime(target)
        except OSError:
            pass  # already stolen; its renewals restart the clock
        document = read_json(target)
        if document is None:
            return None
        document["_lease_path"] = str(target)
        return document

    def claim_next(self, worker_id: str, lease_timeout_s: float):
        """Claim the lowest pending chunk, stealing expired leases.

        Pending chunks first (lowest index, so input order is roughly
        preserved); with none pending, expired leases are requeued and
        the claim retried once — the work-stealing path.
        """
        for name in sorted(os.listdir(self.directory(PENDING))):
            document = self.claim_chunk(name, worker_id)
            if document is not None:
                return document
        if self.requeue_expired(lease_timeout_s):
            for name in sorted(os.listdir(self.directory(PENDING))):
                document = self.claim_chunk(name, worker_id)
                if document is not None:
                    return document
        return None

    def renew_lease(self, lease_path: str) -> None:
        try:
            os.utime(lease_path)
        except OSError:
            pass  # stolen from under us; the result write still lands

    def expired_leases(self, lease_timeout_s: float) -> list:
        """Lease file names whose worker has stopped renewing.

        Lease mtimes are written by *other* nodes whose wall clocks may
        be skewed against ours (NFS queues), so ``now - mtime`` alone
        misjudges liveness in both directions: a renewing worker on a
        slow clock looks expired, and a dead worker's future-dated
        mtime from a fast clock never expires.  Ages are therefore
        anchored to this observer's monotonic clock: the first sighting
        of a lease takes its wall-clock age — clamped to >= 0 — as the
        baseline, an mtime *change* re-anchors the baseline at zero
        (the renewal itself proves the worker alive, whatever the
        clocks say), and between renewals the age grows by monotonic
        time since the sighting.
        """
        mono_now = time.monotonic()
        now = time.time()
        expired = []
        leases = self.directory(LEASES)
        names = set(os.listdir(leases))
        for name in sorted(names):
            try:
                mtime = (leases / name).stat().st_mtime
            except OSError:
                self._lease_seen.pop(name, None)
                continue  # completed or stolen mid-scan
            seen = self._lease_seen.get(name)
            if seen is None:
                age = max(0.0, now - mtime)
                self._lease_seen[name] = (mtime, age, mono_now)
            elif seen[0] != mtime:
                age = 0.0
                self._lease_seen[name] = (mtime, age, mono_now)
            else:
                _, baseline, anchor = seen
                age = baseline + (mono_now - anchor)
            if age > lease_timeout_s:
                expired.append(name)
        for name in list(self._lease_seen):
            if name not in names:
                del self._lease_seen[name]
        return expired

    def requeue_expired(self, lease_timeout_s: float) -> int:
        """Move expired leases back to ``pending/``; returns how many."""
        requeued = 0
        for name in self.expired_leases(lease_timeout_s):
            # A chunk whose result already landed is finished even if
            # its lease lingers (worker died between publish and
            # release): drop the lease instead of re-running it.
            if (self.directory(RESULTS) / name).exists():
                try:
                    os.unlink(self.directory(LEASES) / name)
                except OSError:
                    pass
                continue
            try:
                os.rename(
                    self.directory(LEASES) / name,
                    self.directory(PENDING) / name,
                )
            except OSError:
                continue  # another stealer won
            requeued += 1
        return requeued

    def release_lease(self, lease_path: str) -> None:
        try:
            os.unlink(lease_path)
        except OSError:
            pass  # already stolen/requeued; harmless

    # -- results -------------------------------------------------------------

    def publish_result(
        self,
        chunk: dict,
        worker_id: str,
        outcomes: list,
        sources: list,
        elapsed: float,
    ) -> None:
        document = {
            "chunk": chunk["chunk"],
            "indices": chunk["indices"],
            "worker": worker_id,
            "outcomes": [encode_outcome(outcome) for outcome in outcomes],
            "sources": sources,
            "elapsed": round(elapsed, 6),
        }
        atomic_write_json(
            self.directory(RESULTS) / chunk_file_name(chunk["chunk"]),
            document,
        )

    def read_result(self, index: int) -> dict | None:
        return read_json(self.directory(RESULTS) / chunk_file_name(index))

    # -- segments ------------------------------------------------------------

    def segment_path(self, worker_id: str) -> Path:
        return self.directory(SEGMENTS) / f"segment-{worker_id}.jsonl"

    def segment_paths(self) -> list:
        segments = self.directory(SEGMENTS)
        if not segments.exists():
            return []
        return sorted(segments.glob("segment-*.jsonl"))

    def load_segment_snapshot(self) -> dict:
        """fingerprint -> encoded outcome across all worker segments."""
        snapshot: dict = {}
        for path in self.segment_paths():
            try:
                with open(path, "r", encoding="utf-8") as handle:
                    for line in handle:
                        if not line.strip():
                            continue
                        try:
                            record = json.loads(line)
                        except json.JSONDecodeError:
                            continue  # torn tail of a killed worker
                        fingerprint = record.get("fingerprint")
                        result = record.get("result")
                        if isinstance(fingerprint, str) and isinstance(
                            result, str
                        ):
                            snapshot[fingerprint] = result
            except OSError:
                continue
        return snapshot

    # -- workers -------------------------------------------------------------

    def heartbeat(self, worker_id: str, chunks_done: int) -> None:
        atomic_write_json(
            self.directory(WORKERS) / f"{worker_id}.json",
            {
                "worker": worker_id,
                "pid": os.getpid(),
                "t": round(time.time(), 3),
                "chunks_done": chunks_done,
            },
        )

    def worker_records(self) -> list:
        workers = self.directory(WORKERS)
        if not workers.exists():
            return []
        records = []
        for path in sorted(workers.glob("*.json")):
            record = read_json(path)
            if record is not None:
                records.append(record)
        return records

    # -- status --------------------------------------------------------------

    def status(self, lease_timeout_s: float | None = None) -> dict:
        """JSON-able queue snapshot for ``repro workers status``."""
        manifest = self.manifest() or {}
        if lease_timeout_s is None:
            lease_timeout_s = manifest.get("lease_timeout_s", 30.0)
        now = time.time()
        lease_ages = {}
        if self.directory(LEASES).exists():
            for name in sorted(os.listdir(self.directory(LEASES))):
                try:
                    mtime = (self.directory(LEASES) / name).stat().st_mtime
                except OSError:
                    continue
                lease_ages[name] = round(max(0.0, now - mtime), 3)
        pending = (
            sorted(os.listdir(self.directory(PENDING)))
            if self.directory(PENDING).exists()
            else []
        )
        leases = (
            sorted(os.listdir(self.directory(LEASES)))
            if self.directory(LEASES).exists()
            else []
        )
        results = (
            sorted(os.listdir(self.directory(RESULTS)))
            if self.directory(RESULTS).exists()
            else []
        )
        segment_records = sum(
            1
            for path in self.segment_paths()
            for line in open(path, "r", encoding="utf-8")
            if line.strip()
        )
        return {
            "queue": manifest.get("queue"),
            "n_chunks": manifest.get("n_chunks"),
            "n_items": manifest.get("n_items"),
            "pending": len(pending),
            "leased": len(leases),
            "expired": len(self.expired_leases(lease_timeout_s))
            if leases
            else 0,
            "completed": len(results),
            "done": self.done(),
            "segment_records": segment_records,
            "lease_ages": lease_ages,
            "workers": self.worker_records(),
        }


class WorkQueueExecutor(Executor):
    """Multi-process (and multi-node) execution over a shared directory.

    The coordinator publishes deterministic contiguous chunks into the
    queue, optionally spawns ``workers`` local worker processes
    (``python -m repro.core.worker``), and collects results as they
    land — requeueing expired leases so dead workers' chunks are
    reassigned.  Additional workers on other machines join the same
    queue with ``repro workers start --queue DIR``.

    With ``store=`` (path or open
    :class:`~repro.core.store.ResultStore`), items whose ``keys`` are
    already stored are served without enqueueing, and every fresh
    worker-side evaluation is folded back in at the end — across runs
    and nodes, no fingerprint is evaluated twice.
    """

    name = "work_queue"

    def __init__(
        self,
        queue_dir,
        workers: int = 2,
        chunk_size: int | None = None,
        lease_timeout_s: float = 10.0,
        poll_s: float = 0.05,
        timeout_s: float | None = None,
        store=None,
        spawn_workers: bool = True,
        max_respawns: int = 2,
    ) -> None:
        if workers < 0:
            raise ConfigurationError("workers must be >= 0")
        if workers == 0 and spawn_workers:
            raise ConfigurationError(
                "workers=0 requires spawn_workers=False "
                "(external workers drive the queue)"
            )
        if chunk_size is not None and chunk_size < 1:
            raise ConfigurationError("chunk_size must be >= 1")
        if lease_timeout_s <= 0:
            raise ConfigurationError("lease_timeout_s must be positive")
        if timeout_s is not None and timeout_s <= 0:
            raise ConfigurationError("timeout_s must be positive")
        self.queue = WorkQueue(queue_dir)
        self.workers = workers
        self.chunk_size = chunk_size
        self.lease_timeout_s = lease_timeout_s
        self.poll_s = poll_s
        self.timeout_s = timeout_s
        self.spawn_workers = spawn_workers
        self.max_respawns = max_respawns
        from repro.core.store import coerce_store

        self.store, self._owns_store = coerce_store(store)
        self._procs: list = []
        self._respawns = 0
        self.stats = {
            "chunks": 0,
            "store_hits": 0,
            "fresh": 0,
            "requeued": 0,
            "respawns": 0,
            "merged_records": 0,
        }

    def describe(self) -> dict:
        return {
            "executor": self.name,
            "queue": str(self.queue.root),
            "workers": self.workers,
            "lease_timeout_s": self.lease_timeout_s,
            "store": self.store is not None,
        }

    # -- worker process management ------------------------------------------

    def spawn_worker(self) -> subprocess.Popen:
        """One local worker process attached to this queue."""
        env = dict(os.environ)
        src_root = str(Path(__file__).resolve().parents[2])
        existing = env.get("PYTHONPATH")
        env["PYTHONPATH"] = (
            src_root if not existing else src_root + os.pathsep + existing
        )
        workers_dir = self.queue.directory(WORKERS)
        workers_dir.mkdir(parents=True, exist_ok=True)
        log_path = workers_dir / f"spawn-{len(self._procs)}.log"
        log_handle = open(log_path, "a")
        proc = subprocess.Popen(
            [
                sys.executable,
                "-m",
                "repro.core.worker",
                "--queue",
                str(self.queue.root),
                "--max-idle-s",
                str(max(self.lease_timeout_s * 4, 10.0)),
                "--poll-s",
                str(self.poll_s),
            ],
            env=env,
            stdout=log_handle,
            stderr=subprocess.STDOUT,
        )
        log_handle.close()  # the child holds its own descriptor
        self._procs.append(proc)
        return proc

    def _alive_workers(self) -> int:
        return sum(1 for proc in self._procs if proc.poll() is None)

    def close(self) -> None:
        for proc in self._procs:
            if proc.poll() is None:
                try:
                    proc.send_signal(signal.SIGTERM)
                except OSError:
                    pass
        for proc in self._procs:
            try:
                proc.wait(timeout=5)
            except Exception:
                proc.kill()
        self._procs = []
        if self._owns_store and self.store is not None:
            self.store.close()

    # -- the map -------------------------------------------------------------

    def map(
        self, fn, items, *, catch=(), keys=None, ledger=None,
        progress=None, cancel=None,
    ) -> list:
        items = list(items)
        catch = tuple(catch) or (_NeverRaised,)
        if keys is not None and len(keys) != len(items):
            raise ConfigurationError(
                "keys must match items one-to-one when provided"
            )
        if not items:
            return []
        outcomes: dict = {}
        remaining = list(range(len(items)))
        # Store pre-filter: fingerprints already evaluated (this run,
        # a previous run, or another node) never reach the queue.
        if self.store is not None and keys is not None:
            still = []
            for index in remaining:
                text = self.store.get(keys[index])
                outcome = decode_outcome(text) if text is not None else None
                if outcome is not None:
                    outcomes[index] = outcome
                    self.stats["store_hits"] += 1
                else:
                    still.append(index)
            remaining = still
            if progress is not None and outcomes:
                failed = sum(
                    1 for o in outcomes.values() if not o.ok
                )
                progress.prefill(
                    done=len(outcomes) - failed, failed=failed
                )
        if not remaining:
            return [outcomes[index] for index in range(len(items))]
        # With a trace context bound on the ledger, the whole queue
        # round runs under a "queue map" span and every chunk gets its
        # own child context shipped inside its chunk file — the worker
        # binds it verbatim, which is what parents worker-side spans
        # into this coordinator's trace (docs/OBSERVABILITY.md).
        map_span = None
        map_trace = None
        if (
            ledger is not None
            and getattr(ledger, "trace_context", None) is not None
        ):
            map_span = ledger.span("queue map", n_items=len(remaining))
            map_span.__enter__()
            map_trace = ledger.trace_context
        try:
            return self._run_queue(
                fn, items, catch, keys, remaining, outcomes,
                ledger, progress, cancel, map_trace,
            )
        finally:
            if map_span is not None:
                map_span.__exit__(None, None, None)

    def _run_queue(
        self, fn, items, catch, keys, remaining, outcomes,
        ledger, progress, cancel, map_trace,
    ) -> list:
        queue_id = uuid.uuid4().hex[:12]
        chunk_size = self.chunk_size
        if chunk_size is None:
            from repro.units import ceil_div

            fanout = max(self.workers, 1)
            chunk_size = max(1, ceil_div(len(remaining), fanout * 4))
        chunks = [
            remaining[start : start + chunk_size]
            for start in range(0, len(remaining), chunk_size)
        ]
        self.queue.reset()
        self.queue.write_task(fn, catch)
        for chunk_index, indices in enumerate(chunks):
            self.queue.publish_chunk(
                chunk_index,
                indices,
                [items[index] for index in indices],
                [keys[index] for index in indices]
                if keys is not None
                else None,
                trace=(
                    map_trace.child().to_dict()
                    if map_trace is not None
                    else None
                ),
            )
        atomic_write_json(
            self.queue.root / MANIFEST,
            {
                "queue": queue_id,
                "n_chunks": len(chunks),
                "n_items": len(remaining),
                "chunk_size": chunk_size,
                "lease_timeout_s": self.lease_timeout_s,
                "created_t": round(time.time(), 3),
            },
        )
        if ledger is not None:
            ledger.event(
                "queue_start",
                queue=queue_id,
                n_chunks=len(chunks),
                n_items=len(remaining),
                workers=self.workers,
                store_hits=self.stats["store_hits"],
            )
        if self.spawn_workers:
            for _ in range(self.workers):
                self.spawn_worker()
        try:
            self._collect(
                chunks, items, outcomes, ledger, progress, cancel
            )
        finally:
            # Runs on cancellation too: the done sentinel tells workers
            # to finish their current chunk and exit, and the segments
            # they flushed keep whatever completed (resumable, never
            # double-evaluated).
            self.queue.mark_done(queue_id)
        self._merge_segments(ledger)
        if ledger is not None:
            ledger.event(
                "queue_end",
                queue=queue_id,
                chunks=self.stats["chunks"],
                requeued=self.stats["requeued"],
                store_hits=self.stats["store_hits"],
                fresh=self.stats["fresh"],
            )
        if GLOBAL_METRICS.enabled:
            GLOBAL_METRICS.counter("work_queue.runs").inc()
            GLOBAL_METRICS.counter("work_queue.chunks").inc(len(chunks))
            GLOBAL_METRICS.counter("work_queue.requeued").inc(
                self.stats["requeued"]
            )
        return [outcomes[index] for index in range(len(items))]

    def _collect(
        self, chunks, items, outcomes, ledger, progress, cancel=None
    ) -> None:
        started = time.monotonic()
        last_progress = started
        pending_chunks = set(range(len(chunks)))
        while pending_chunks:
            check_cancelled(cancel)
            landed = []
            for chunk_index in sorted(pending_chunks):
                result = self.queue.read_result(chunk_index)
                if result is None:
                    continue
                self._merge_result(chunks, result, outcomes, ledger, progress)
                landed.append(chunk_index)
                last_progress = time.monotonic()
            for chunk_index in landed:
                pending_chunks.discard(chunk_index)
            if not pending_chunks:
                break
            requeued = self.queue.requeue_expired(self.lease_timeout_s)
            if requeued:
                self.stats["requeued"] += requeued
                if ledger is not None:
                    ledger.event("lease_expired", requeued=requeued)
            self._ensure_workers()
            if (
                self.timeout_s is not None
                and time.monotonic() - started > self.timeout_s
            ):
                raise ExecutorError(
                    f"work queue {self.queue.root} missed its "
                    f"{self.timeout_s}s deadline with "
                    f"{len(pending_chunks)} chunk(s) outstanding"
                )
            if (
                self.spawn_workers
                and self._alive_workers() == 0
                and self._respawns >= self.max_respawns
            ):
                stalled_s = time.monotonic() - last_progress
                if stalled_s > self.lease_timeout_s * 2:
                    raise ExecutorError(
                        "all work-queue workers died and the respawn "
                        f"budget ({self.max_respawns}) is exhausted; "
                        f"{len(pending_chunks)} chunk(s) outstanding"
                    )
            time.sleep(self.poll_s)

    def _merge_result(
        self, chunks, result, outcomes, ledger, progress
    ) -> None:
        indices = result.get("indices", [])
        encoded = result.get("outcomes", [])
        if len(indices) != len(encoded):
            raise ExecutorError(
                f"chunk {result.get('chunk')} result is corrupt: "
                f"{len(indices)} indices vs {len(encoded)} outcomes"
            )
        failed = 0
        for index, text, source in zip(
            indices, encoded, result.get("sources", [])
            or ["fresh"] * len(indices)
        ):
            outcome = decode_outcome(text)
            if outcome is None:
                raise ExecutorError(
                    f"chunk {result.get('chunk')}: undecodable outcome "
                    f"for item {index}"
                )
            outcomes[index] = outcome
            if not outcome.ok:
                failed += 1
            if source == "store":
                self.stats["store_hits"] += 1
            else:
                self.stats["fresh"] += 1
        self.stats["chunks"] += 1
        if ledger is not None:
            ledger.event(
                "chunk",
                index=result.get("chunk"),
                size=len(indices),
                s=result.get("elapsed", 0.0),
                failed=failed,
                worker=result.get("worker"),
            )
        if progress is not None:
            progress.update(done=len(indices) - failed, failed=failed)

    def _ensure_workers(self) -> None:
        """Respawn (bounded) when every spawned worker has died."""
        if not self.spawn_workers:
            return
        if self._alive_workers() > 0:
            return
        if self._respawns >= self.max_respawns:
            return
        self._respawns += 1
        self.stats["respawns"] += 1
        self.spawn_worker()

    def _merge_segments(self, ledger) -> None:
        if self.store is None:
            return
        for path in self.queue.segment_paths():
            self.stats["merged_records"] += self.store.merge_file(
                path, ledger=ledger
            )
