"""Quantizing the design space into understandable solutions.

"It is therefore incumbent upon edram suppliers to make the trade-offs
transparent and to quantize the design space into a set of
understandable if slightly sub-optimal solutions." (Section 3.)

The quantizer does two things:

* snaps arbitrary requirements onto the constructible grid (building-
  block sizes, power-of-two widths) and reports the quantization loss,
* reduces an exploration's Pareto frontier to a handful of *named*
  solutions (minimum power / minimum area / minimum cost / maximum
  bandwidth / balanced) a datasheet could print.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.errors import ConfigurationError, InfeasibleError
from repro.units import MBIT, ceil_div
from repro.core.explorer import ExplorationResult
from repro.core.metrics import SolutionMetrics
from repro.dram.edram import SIEMENS_CONCEPT, SiemensConceptRules


@dataclass(frozen=True)
class NamedSolution:
    """One catalog entry of the quantized solution set.

    Attributes:
        name: Human-oriented label ("min-power", "balanced", ...).
        metrics: The solution's metrics.
        suboptimality: Relative distance to the per-objective optimum of
            the frontier it was drawn from (0 = optimal in its own
            objective).
    """

    name: str
    metrics: SolutionMetrics
    suboptimality: float

    def __post_init__(self) -> None:
        if self.suboptimality < 0:
            raise ConfigurationError("suboptimality must be >= 0")


@dataclass(frozen=True)
class Quantizer:
    """Snaps requirements to the constructible grid and names solutions.

    Attributes:
        rules: The concept's constructibility rules.
    """

    rules: SiemensConceptRules = SIEMENS_CONCEPT

    def snap_size(self, required_bits: int) -> int:
        """Smallest constructible module size covering the requirement."""
        if required_bits <= 0:
            raise ConfigurationError("required size must be positive")
        step = min(self.rules.block_sizes_bits)
        size = max(
            self.rules.min_module_bits, ceil_div(required_bits, step) * step
        )
        if size > self.rules.max_module_bits:
            raise InfeasibleError(
                f"{required_bits / MBIT:.2f} Mbit exceeds the concept's "
                f"{self.rules.max_module_bits / MBIT:.0f} Mbit maximum"
            )
        return size

    def quantization_overhead(self, required_bits: int) -> float:
        """Wasted capacity fraction after snapping — compare against the
        commodity granularity overhead of Section 1's example."""
        size = self.snap_size(required_bits)
        return (size - required_bits) / required_bits

    def snap_width(self, required_width: int) -> int:
        """Smallest offered interface width >= the request."""
        if required_width <= 0:
            raise ConfigurationError("required width must be positive")
        width = self.rules.min_width
        while width < required_width:
            width *= 2
        if width > self.rules.max_width:
            raise InfeasibleError(
                f"width {required_width} exceeds the concept's "
                f"{self.rules.max_width}-bit maximum"
            )
        return width

    def block_decomposition(self, size_bits: int) -> dict:
        """Greedy decomposition of a module into building blocks.

        Uses the largest blocks first (fewer blocks = less periphery),
        finishing the remainder with small blocks.
        """
        if size_bits <= 0:
            raise ConfigurationError("size must be positive")
        remaining = size_bits
        counts: dict = {}
        for block in sorted(self.rules.block_sizes_bits, reverse=True):
            counts[block] = remaining // block
            remaining -= counts[block] * block
        if remaining > 0:
            smallest = min(self.rules.block_sizes_bits)
            counts[smallest] += 1
        return counts

    # -- named solutions ---------------------------------------------------

    def named_solutions(
        self, result: ExplorationResult
    ) -> list:
        """Reduce a frontier to the understandable solution set."""
        if not result.feasible:
            raise InfeasibleError(
                f"no feasible solutions for {result.requirements.name}"
            )
        picks = [
            ("min-power", lambda m: m.power_w),
            ("min-area", lambda m: m.area_mm2),
            ("min-cost", lambda m: m.unit_cost),
            ("max-bandwidth", lambda m: -m.sustained_bandwidth_bits_per_s),
            ("min-latency", lambda m: m.mean_latency_ns),
        ]
        pool = result.frontier or result.feasible
        named: list = []
        seen_labels: set = set()
        for name, key in picks:
            best = min(pool, key=key)
            optimum = key(best)
            named.append(
                NamedSolution(name=name, metrics=best, suboptimality=0.0)
            )
            seen_labels.add((name, best.label))
            del optimum
        named.append(self._balanced(pool))
        return named

    @staticmethod
    def _balanced(pool: list) -> NamedSolution:
        """The knee solution: minimal max-normalized objective."""
        mins = []
        maxs = []
        vectors = [metrics.objective_tuple() for metrics in pool]
        n = len(vectors[0])
        for k in range(n):
            values = [v[k] for v in vectors]
            mins.append(min(values))
            maxs.append(max(values))

        def badness(vector) -> float:
            worst = 0.0
            for k in range(n):
                span = maxs[k] - mins[k]
                if span <= 0:
                    continue
                worst = max(worst, (vector[k] - mins[k]) / span)
            return worst

        best_index = min(
            range(len(pool)), key=lambda i: badness(vectors[i])
        )
        return NamedSolution(
            name="balanced",
            metrics=pool[best_index],
            suboptimality=badness(vectors[best_index]),
        )
