"""Zero-overhead-when-off metrics: counters, gauges, bounded histograms.

The observability layer's contract is that instrumentation must never
change what the simulator computes and must cost nothing when disabled:

* instrumented call sites guard with ``if obs is not None`` (one
  attribute check per *event*, never per cycle);
* a disabled :class:`MetricsRegistry` hands out a shared
  :data:`NULL_METRIC` whose methods are no-ops, so library code can
  record unconditionally without branching;
* :class:`BoundedHistogram` has a fixed memory footprint no matter how
  many samples it absorbs — exact unit-width bins for small integer
  values (latencies in cycles) and geometric bins beyond, so a
  week-long run costs the same bytes as a smoke run.

:data:`GLOBAL_METRICS` is the process-wide registry (disabled by
default) used by machinery with no natural owner object, e.g. the
``parallel_map`` fallback counter.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field

from repro.errors import ConfigurationError


class Counter:
    """Monotonically increasing counter."""

    __slots__ = ("name", "value")

    def __init__(self, name: str) -> None:
        self.name = name
        self.value = 0

    def inc(self, amount: int = 1) -> None:
        self.value += amount


class Gauge:
    """Last-write-wins instantaneous value."""

    __slots__ = ("name", "value")

    def __init__(self, name: str) -> None:
        self.name = name
        self.value = 0.0

    def set(self, value: float) -> None:
        self.value = value


class _NullMetric:
    """No-op stand-in handed out by a disabled registry."""

    __slots__ = ()

    def inc(self, amount: int = 1) -> None:
        pass

    def set(self, value: float) -> None:
        pass

    def record(self, value: float) -> None:
        pass


NULL_METRIC = _NullMetric()


class BoundedHistogram:
    """Fixed-footprint histogram of non-negative values.

    Binning (monotone in the value, so percentiles walk bins in value
    order):

    * values below ``exact_limit`` land in unit-width bins
      (``floor(value)``) — **exact** for integer samples, which is what
      latency-in-cycles recording produces;
    * values at or above ``exact_limit`` land in geometric bins,
      ``bins_per_octave`` per power of two, whose representative (bin
      midpoint) is at most ``1 / (2 * bins_per_octave)`` relative error
      from any member — 6.25% with the default 8 bins/octave.

    The bin table is a dict capped at ``exact_limit`` unit bins plus
    ~``bins_per_octave * 52`` geometric bins, so memory is bounded by
    construction regardless of sample count.  ``count``/``total``/
    ``minimum``/``maximum`` are tracked exactly.

    :meth:`percentile` follows ``np.percentile``'s default linear
    interpolation between order statistics, so for integer samples that
    all fall below ``exact_limit`` it reproduces ``np.percentile``
    bit-for-bit (up to float addition order); above, the documented
    relative error bound applies.
    """

    __slots__ = (
        "exact_limit",
        "bins_per_octave",
        "_bins",
        "count",
        "total",
        "minimum",
        "maximum",
    )

    def __init__(
        self, exact_limit: int = 4096, bins_per_octave: int = 8
    ) -> None:
        if exact_limit < 1:
            raise ConfigurationError("exact_limit must be >= 1")
        if exact_limit & (exact_limit - 1):
            # Power of two keeps the unit-bin and geometric-bin key
            # ranges disjoint (and therefore the binning monotone).
            raise ConfigurationError("exact_limit must be a power of two")
        if bins_per_octave < 1:
            raise ConfigurationError("bins_per_octave must be >= 1")
        self.exact_limit = exact_limit
        self.bins_per_octave = bins_per_octave
        self._bins: dict = {}
        self.count = 0
        self.total = 0
        self.minimum = None
        self.maximum = None

    @property
    def max_bins(self) -> int:
        """Hard bound on the bin-table size (the memory guarantee)."""
        # Unit bins plus geometric bins over the float64 exponent range.
        return self.exact_limit + self.bins_per_octave * 1100

    def record(self, value) -> None:
        if not math.isfinite(value):
            # inf/nan would otherwise crash frexp-based binning (or
            # silently poison `total`); reject them at the door.
            raise ConfigurationError(
                f"histogram values must be finite, got {value}"
            )
        if value < 0:
            raise ConfigurationError(
                f"histogram values must be >= 0, got {value}"
            )
        key = self._bin_key(value)
        self._bins[key] = self._bins.get(key, 0) + 1
        self.count += 1
        self.total += value
        if self.minimum is None or value < self.minimum:
            self.minimum = value
        if self.maximum is None or value > self.maximum:
            self.maximum = value

    @property
    def mean(self) -> float:
        return self.total / self.count if self.count else 0.0

    def __eq__(self, other) -> bool:
        if not isinstance(other, BoundedHistogram):
            return NotImplemented
        return (
            self.exact_limit == other.exact_limit
            and self.bins_per_octave == other.bins_per_octave
            and self.count == other.count
            and self.total == other.total
            and self.minimum == other.minimum
            and self.maximum == other.maximum
            and self._bins == other._bins
        )

    def _bin_key(self, value) -> int:
        if value < self.exact_limit:
            return int(value)
        mantissa, exponent = math.frexp(value)  # value = m * 2^e, m in [0.5, 1)
        sub = int((mantissa - 0.5) * 2 * self.bins_per_octave)
        base_exponent = self.exact_limit.bit_length()
        return (
            self.exact_limit
            + (exponent - base_exponent) * self.bins_per_octave
            + sub
        )

    def _bin_value(self, key: int) -> float:
        """Representative value of a bin (exact for unit bins of ints)."""
        if key < self.exact_limit:
            return float(key)
        base_exponent = self.exact_limit.bit_length()
        offset = key - self.exact_limit
        exponent = base_exponent + offset // self.bins_per_octave
        sub = offset % self.bins_per_octave
        lower = math.ldexp(1.0, exponent - 1) * (
            1.0 + sub / self.bins_per_octave
        )
        width = math.ldexp(1.0, exponent - 1) / self.bins_per_octave
        return lower + width / 2.0

    def merge(self, other: "BoundedHistogram") -> "BoundedHistogram":
        """Fold ``other``'s samples into this histogram, losslessly.

        Two histograms with the same binning parameters partition the
        value axis identically, so summing their bin tables yields
        exactly the histogram the union of their samples would have
        built — merged registries therefore compare equal (``==``) to
        single-process ones, which is what makes cross-process
        aggregation trustworthy.

        Raises:
            ConfigurationError: The binning parameters differ (the
                merge would not be lossless).
        """
        if not isinstance(other, BoundedHistogram):
            raise ConfigurationError(
                f"cannot merge {type(other).__name__} into a histogram"
            )
        if (
            self.exact_limit != other.exact_limit
            or self.bins_per_octave != other.bins_per_octave
        ):
            raise ConfigurationError(
                "histogram merge needs identical binning: "
                f"({self.exact_limit}, {self.bins_per_octave}) vs "
                f"({other.exact_limit}, {other.bins_per_octave})"
            )
        for key, count in other._bins.items():
            self._bins[key] = self._bins.get(key, 0) + count
        self.count += other.count
        self.total += other.total
        if other.minimum is not None and (
            self.minimum is None or other.minimum < self.minimum
        ):
            self.minimum = other.minimum
        if other.maximum is not None and (
            self.maximum is None or other.maximum > self.maximum
        ):
            self.maximum = other.maximum
        return self

    def _order_statistic(self, k: int) -> float:
        """Value of the 0-based ``k``-th smallest sample (by bin)."""
        seen = 0
        for key in sorted(self._bins):
            seen += self._bins[key]
            if k < seen:
                return self._bin_value(key)
        raise ConfigurationError(
            f"order statistic {k} out of range for count {self.count}"
        )

    def percentile(self, q: float) -> float:
        """Linear-interpolated percentile (``np.percentile`` semantics)."""
        if not 0 <= q <= 100:
            raise ConfigurationError(f"percentile must be in [0, 100]: {q}")
        if self.count == 0:
            return 0.0
        rank = q / 100.0 * (self.count - 1)
        low = math.floor(rank)
        high = math.ceil(rank)
        low_value = self._order_statistic(low)
        if high == low:
            return float(low_value)
        high_value = self._order_statistic(high)
        return low_value + (high_value - low_value) * (rank - low)

    def to_dict(self) -> dict:
        """JSON-able snapshot, lossless for :meth:`from_dict`.

        Bins are ``[key, representative, count]`` triples: the *key* is
        the internal bin index (what :meth:`from_dict` reconstructs
        from, making the round trip exact), the *representative* the
        human-readable bin value the old two-element format carried.
        ``exact_limit``/``bins_per_octave`` ride along so a snapshot
        pins its own binning and merged snapshots can be checked for
        compatibility offline.
        """
        return {
            "count": self.count,
            "sum": self.total,
            "min": self.minimum,
            "max": self.maximum,
            "mean": self.mean,
            "p50": self.percentile(50),
            "p95": self.percentile(95),
            "p99": self.percentile(99),
            "exact_limit": self.exact_limit,
            "bins_per_octave": self.bins_per_octave,
            "bins": [
                [key, self._bin_value(key), self._bins[key]]
                for key in sorted(self._bins)
            ],
        }

    @classmethod
    def from_dict(cls, data: dict) -> "BoundedHistogram":
        """Rebuild a histogram from a :meth:`to_dict` snapshot.

        The reconstruction is exact: ``from_dict(h.to_dict()) == h``
        for every histogram, and merging reconstructed snapshots is
        indistinguishable from having recorded all samples into one
        registry (the aggregation layer relies on both).
        """
        hist = cls(
            exact_limit=data.get("exact_limit", 4096),
            bins_per_octave=data.get("bins_per_octave", 8),
        )
        for entry in data.get("bins", ()):
            if len(entry) != 3:
                raise ConfigurationError(
                    "histogram snapshot bins must be "
                    "[key, representative, count] triples "
                    "(pre-merge two-element snapshots are not lossless)"
                )
            key, _representative, count = entry
            hist._bins[int(key)] = hist._bins.get(int(key), 0) + int(count)
        hist.count = data["count"]
        hist.total = data["sum"]
        hist.minimum = data.get("min")
        hist.maximum = data.get("max")
        return hist


@dataclass
class MetricsRegistry:
    """Named metrics with one shared namespace per registry.

    A disabled registry returns :data:`NULL_METRIC` from every factory,
    so callers can keep unconditional ``registry.counter(...).inc()``
    call sites with near-zero cost when observability is off.
    """

    enabled: bool = True
    _counters: dict = field(default_factory=dict, init=False, repr=False)
    _gauges: dict = field(default_factory=dict, init=False, repr=False)
    _histograms: dict = field(default_factory=dict, init=False, repr=False)

    def counter(self, name: str) -> Counter:
        if not self.enabled:
            return NULL_METRIC
        metric = self._counters.get(name)
        if metric is None:
            metric = self._counters[name] = Counter(name)
        return metric

    def gauge(self, name: str) -> Gauge:
        if not self.enabled:
            return NULL_METRIC
        metric = self._gauges.get(name)
        if metric is None:
            metric = self._gauges[name] = Gauge(name)
        return metric

    def histogram(self, name: str, **kwargs) -> BoundedHistogram:
        if not self.enabled:
            return NULL_METRIC
        metric = self._histograms.get(name)
        if metric is None:
            metric = self._histograms[name] = BoundedHistogram(**kwargs)
        return metric

    def value(self, name: str):
        """Counter/gauge value (or histogram count) by name, else None."""
        if name in self._counters:
            return self._counters[name].value
        if name in self._gauges:
            return self._gauges[name].value
        if name in self._histograms:
            return self._histograms[name].count
        return None

    def reset(self) -> None:
        self._counters.clear()
        self._gauges.clear()
        self._histograms.clear()

    def snapshot(self) -> dict:
        """JSON-able dump of every metric in the registry."""
        return {
            "counters": {
                name: metric.value
                for name, metric in sorted(self._counters.items())
            },
            "gauges": {
                name: metric.value
                for name, metric in sorted(self._gauges.items())
            },
            "histograms": {
                name: metric.to_dict()
                for name, metric in sorted(self._histograms.items())
            },
        }


#: Process-wide registry for machinery without an owner object (the
#: ``parallel_map`` sweep telemetry and fallback counter).  Disabled by
#: default: zero overhead unless a tool or test opts in.
GLOBAL_METRICS = MetricsRegistry(enabled=False)
