"""Cross-process metrics aggregation: fold snapshots into registries.

A process-pool sweep runs its points in worker processes whose
``GLOBAL_METRICS`` die with the pool — before this module, every
counter a worker incremented was silently dropped.  The aggregation
contract is *losslessness*:

* counters add, so the merged count equals what a single process would
  have counted;
* histograms merge bin-by-bin (:meth:`BoundedHistogram.merge`), so the
  merged distribution equals the one the union of samples would have
  built — ``merge_snapshots(a.snapshot(), b.snapshot())`` compares
  equal to the snapshot of a registry that recorded everything itself;
* gauges are last-write-wins by definition, so the merge keeps the
  last folded value (fold order = chunk submission order in
  ``parallel_map``, file order in ``repro metrics --merge``).

The same :func:`fold_snapshot` is the single code path behind the
worker-side folding in :func:`repro.core.parallel.parallel_map` and
the offline ``repro metrics --merge`` CLI.
"""

from __future__ import annotations

from repro.errors import ConfigurationError
from repro.obs.metrics import BoundedHistogram, MetricsRegistry


def fold_snapshot(registry: MetricsRegistry, snapshot: dict) -> None:
    """Fold one :meth:`MetricsRegistry.snapshot` dict into ``registry``.

    A disabled registry absorbs nothing (folding must stay
    zero-overhead when observability is off).  Histogram folds require
    matching binning parameters; a mismatch raises
    :class:`~repro.errors.ConfigurationError` rather than merging
    lossily.
    """
    if not registry.enabled:
        return
    if not isinstance(snapshot, dict):
        raise ConfigurationError(
            f"metrics snapshot must be a dict, got {type(snapshot).__name__}"
        )
    for name, value in snapshot.get("counters", {}).items():
        registry.counter(name).inc(value)
    for name, value in snapshot.get("gauges", {}).items():
        registry.gauge(name).set(value)
    for name, dumped in snapshot.get("histograms", {}).items():
        incoming = BoundedHistogram.from_dict(dumped)
        target = registry.histogram(
            name,
            exact_limit=incoming.exact_limit,
            bins_per_octave=incoming.bins_per_octave,
        )
        target.merge(incoming)


def merge_snapshots(*snapshots: dict) -> dict:
    """Merge snapshot dicts into one, via the :func:`fold_snapshot` path.

    Returns the snapshot a single registry would have produced had it
    recorded every sample itself (gauges excepted: last snapshot wins).
    """
    merged = MetricsRegistry(enabled=True)
    for snapshot in snapshots:
        fold_snapshot(merged, snapshot)
    return merged.snapshot()
