"""Sweep progress reporting: rate, ETA, failure counts, TTY-aware.

A multi-thousand-point sweep used to run blind: no indication of rate,
remaining time or quarantined points until the final result appeared.
:class:`ProgressReporter` fixes that without violating the
observability contract (docs/OBSERVABILITY.md):

* **zero overhead when off** — a disabled reporter's :meth:`update` is
  one attribute check; the default construction auto-disables when
  stderr is not a TTY (CI logs never fill with ``\\r`` spam);
* **read-only** — the reporter only ever counts and prints; it cannot
  perturb evaluation order or results (bit-identity is asserted in
  ``tests/test_obs_ledger.py``);
* **bounded output** — redraws are throttled to ``min_interval_s``, so
  a fast sweep costs a handful of writes, not one per point.
"""

from __future__ import annotations

import sys
import time

from repro.errors import ConfigurationError


def _format_eta(seconds: float) -> str:
    """Compact h:mm:ss / m:ss rendering of a nonnegative duration."""
    seconds = max(0, int(seconds))
    minutes, secs = divmod(seconds, 60)
    hours, minutes = divmod(minutes, 60)
    if hours:
        return f"{hours}:{minutes:02d}:{secs:02d}"
    return f"{minutes}:{secs:02d}"


class ProgressReporter:
    """Incremental progress line for a fixed-size workload.

    Attributes:
        total: Number of points the workload will process.
        label: Prefix of the rendered line.
        enabled: Whether updates render.  ``None`` (default)
            auto-detects: on only when the stream is a TTY, so piping
            or CI disables it without any caller involvement.
        callback: Optional observer invoked with the reporter after
            every :meth:`update`, *independently* of ``enabled`` — the
            exploration service streams progress this way while the
            terminal rendering stays off.  Counting still happens only
            when there is someone to tell (rendering or callback), so
            a bare disabled reporter keeps its one-check hot path.

    The rendered line (stderr by default, overwritten in place)::

        sweep: 1280/4096 31% | 412.3/s | eta 0:06 | failed 2

    ``update`` is safe to call past ``total`` (a pool fallback may
    re-evaluate points); the display clamps rather than lies about
    percentages above 100.
    """

    def __init__(
        self,
        total: int,
        label: str = "sweep",
        stream=None,
        min_interval_s: float = 0.1,
        enabled: bool | None = None,
        clock=time.monotonic,
        callback=None,
    ) -> None:
        if total < 0:
            raise ConfigurationError("progress total must be >= 0")
        if min_interval_s < 0:
            raise ConfigurationError("min_interval_s must be >= 0")
        self.total = total
        self.label = label
        self.stream = stream if stream is not None else sys.stderr
        self.min_interval_s = min_interval_s
        if enabled is None:
            isatty = getattr(self.stream, "isatty", None)
            enabled = bool(isatty and isatty())
        self.enabled = enabled
        self.callback = callback
        self._clock = clock
        self.done = 0
        self.failed = 0
        self.prefilled = 0
        self._started: float | None = None
        self._last_render: float = float("-inf")
        self._rendered = False

    def start(self) -> None:
        """Mark the workload start (rate/ETA measure from here)."""
        if self._started is None:
            self._started = self._clock()

    def prefill(self, done: int = 0, failed: int = 0) -> None:
        """Record points that were completed *before* this run started.

        Journal-resumed and store-served points advance the bar but are
        excluded from the rate — otherwise a resume that skips
        thousands of points in the first throttle window reports an
        astronomically wrong rate, and an all-cached resume (zero fresh
        points) renders a garbage ETA from a rate measured over nothing.
        """
        self.prefilled += done + failed
        self.update(done=done, failed=failed)

    def update(self, done: int = 0, failed: int = 0) -> None:
        """Record ``done`` more successes and ``failed`` quarantines."""
        if not self.enabled and self.callback is None:
            return
        if self._started is None:
            self.start()
        self.done += done
        self.failed += failed
        if self.callback is not None:
            self.callback(self)
        if not self.enabled:
            return
        now = self._clock()
        if now - self._last_render >= self.min_interval_s:
            self._render(now)

    def finish(self) -> None:
        """Final render plus newline, leaving the terminal clean."""
        if not self.enabled or not self._rendered:
            return
        self._render(self._clock(), force=True)
        self.stream.write("\n")
        self.stream.flush()

    def _render(self, now: float, force: bool = False) -> None:
        processed = min(self.done + self.failed, self.total)
        elapsed = max(now - (self._started or now), 1e-9)
        # Rate over freshly evaluated points only: prefilled ones
        # (journal resume, store hits) arrived in one burst and would
        # otherwise dominate the window and corrupt the ETA.
        fresh = max(self.done + self.failed - self.prefilled, 0)
        rate = fresh / elapsed
        remaining = max(self.total - processed, 0)
        if remaining == 0:
            eta = "0:00"
        elif rate > 0:
            eta = _format_eta(remaining / rate)
        else:
            # No fresh point has completed yet (e.g. an all-cached
            # resume): there is no measured rate to extrapolate from.
            eta = "—"
        percent = 100 * processed // self.total if self.total else 100
        line = (
            f"{self.label}: {processed}/{self.total} {percent}% | "
            f"{rate:.1f}/s | eta {eta}"
        )
        if self.failed:
            line += f" | failed {self.failed}"
        self.stream.write("\r" + line)
        self.stream.flush()
        self._last_render = now
        self._rendered = True
