"""Prometheus text exposition over metrics snapshots (stdlib only).

:func:`render_prometheus` turns a
:meth:`~repro.obs.metrics.MetricsRegistry.snapshot` dict — plus any
extra service-level samples — into the Prometheus text format
(``text/plain; version=0.0.4``) that ``GET /v1/metrics`` and ``repro
metrics --format prom`` serve.  :func:`parse_prometheus` is the strict
reader the tests and the CI smoke job use to prove the output is
actually scrapeable, without adding a dependency on a real client
library.

Conventions (documented in ``docs/OBSERVABILITY.md``):

* every metric is prefixed ``repro_`` and dots become underscores —
  the registry's ``serve.shed`` counter exports as ``repro_serve_shed``;
* dotted *per-key* families split their tail into a label: with
  ``labels_from={"serve.job_ms": "workload"}`` the registry histogram
  ``serve.job_ms.edram_tradeoff`` exports as
  ``repro_serve_job_ms{workload="edram_tradeoff"}``;
* histograms export as Prometheus *summaries*: ``quantile`` samples
  for p50/p95/p99 plus ``_count`` and ``_sum``.
"""

from __future__ import annotations

import re

from repro.errors import ConfigurationError

CONTENT_TYPE = "text/plain; version=0.0.4; charset=utf-8"

#: Exported metric-name prefix; keeps repro metrics from colliding in a
#: shared Prometheus namespace.
PREFIX = "repro_"

_NAME_OK = re.compile(r"^[a-zA-Z_:][a-zA-Z0-9_:]*$")
_SAMPLE = re.compile(
    r"^([a-zA-Z_:][a-zA-Z0-9_:]*)"  # metric name
    r"(\{[^{}]*\})?"  # optional label set
    r" (-?(?:[0-9]+(?:\.[0-9]+)?(?:[eE][+-]?[0-9]+)?|Inf)|NaN)$"
)
_LABEL = re.compile(r'([a-zA-Z_][a-zA-Z0-9_]*)="((?:[^"\\]|\\.)*)"')


def sanitize_name(name: str) -> str:
    """Registry metric name → legal Prometheus metric name (prefixed)."""
    cleaned = re.sub(r"[^a-zA-Z0-9_:]", "_", name)
    full = PREFIX + cleaned
    if not _NAME_OK.match(full):
        raise ConfigurationError(f"cannot export metric name {name!r}")
    return full


def _unescape_label(value: str) -> str:
    """Inverse of :func:`_escape_label`, processing escapes in order
    (a chained ``str.replace`` would corrupt ``\\\\`` followed by
    ``n``)."""
    out: list = []
    index = 0
    while index < len(value):
        char = value[index]
        if char == "\\" and index + 1 < len(value):
            follow = value[index + 1]
            out.append(
                {"n": "\n", "\\": "\\", '"': '"'}.get(follow, "\\" + follow)
            )
            index += 2
        else:
            out.append(char)
            index += 1
    return "".join(out)


def _escape_label(value) -> str:
    return (
        str(value)
        .replace("\\", "\\\\")
        .replace('"', '\\"')
        .replace("\n", "\\n")
    )


def _format_value(value) -> str:
    number = float(value)
    if number != number:
        return "NaN"
    if number in (float("inf"), float("-inf")):
        return "+Inf" if number > 0 else "-Inf"
    if number == int(number) and abs(number) < 1e15:
        return str(int(number))
    return repr(number)


def _label_suffix(labels) -> str:
    if not labels:
        return ""
    body = ",".join(
        f'{key}="{_escape_label(value)}"'
        for key, value in sorted(labels.items())
    )
    return "{" + body + "}"


def _split_family(name: str, labels_from) -> tuple:
    """(family, labels) — peel a per-key tail into a label if configured."""
    if labels_from:
        for prefix, label_key in labels_from.items():
            tail = None
            if name.startswith(prefix + "."):
                tail = name[len(prefix) + 1 :]
            if tail:
                return prefix, {label_key: tail}
    return name, {}


class _Family:
    def __init__(self, kind: str) -> None:
        self.kind = kind
        self.samples: list = []  # (suffix, labels, value)


def render_prometheus(snapshot: dict, extra=None, labels_from=None) -> str:
    """Render a metrics snapshot (plus extra samples) as exposition text.

    ``extra`` is an iterable of ``{"name", "value", "type", "labels"}``
    dicts for service-level samples that do not live in a registry
    (queue depth, breaker states, cache ratios); same name may repeat
    with different labels.  ``labels_from`` maps dotted family prefixes
    to the label key their name tail becomes (see module docstring).
    """
    if not isinstance(snapshot, dict):
        raise ConfigurationError(
            f"metrics snapshot must be a dict, got {type(snapshot).__name__}"
        )
    families: dict = {}

    def family(name: str, kind: str) -> _Family:
        entry = families.get(name)
        if entry is None:
            entry = families[name] = _Family(kind)
        elif entry.kind != kind:
            raise ConfigurationError(
                f"metric family {name!r} exported as both "
                f"{entry.kind} and {kind}"
            )
        return entry

    for name, value in snapshot.get("counters", {}).items():
        base, labels = _split_family(name, labels_from)
        family(base, "counter").samples.append(("", labels, value))
    for name, value in snapshot.get("gauges", {}).items():
        base, labels = _split_family(name, labels_from)
        family(base, "gauge").samples.append(("", labels, value))
    for name, dumped in snapshot.get("histograms", {}).items():
        base, labels = _split_family(name, labels_from)
        entry = family(base, "summary")
        for quantile, key in (("0.5", "p50"), ("0.95", "p95"), ("0.99", "p99")):
            entry.samples.append(
                ("", dict(labels, quantile=quantile), dumped.get(key, 0.0))
            )
        entry.samples.append(("_count", labels, dumped.get("count", 0)))
        entry.samples.append(("_sum", labels, dumped.get("sum", 0.0)))
    for sample in extra or ():
        kind = sample.get("type", "gauge")
        if kind not in ("gauge", "counter"):
            raise ConfigurationError(
                f"extra samples must be gauge or counter, got {kind!r}"
            )
        family(sample["name"], kind).samples.append(
            ("", sample.get("labels") or {}, sample["value"])
        )

    lines = []
    for name in sorted(families):
        entry = families[name]
        exported = sanitize_name(name)
        lines.append(f"# TYPE {exported} {entry.kind}")
        for suffix, labels, value in entry.samples:
            lines.append(
                f"{exported}{suffix}{_label_suffix(labels)} "
                f"{_format_value(value)}"
            )
    return "\n".join(lines) + "\n" if lines else ""


def parse_prometheus(text: str) -> dict:
    """Strictly parse exposition text; raises ConfigurationError on any
    malformed line.

    Returns ``{"families": {name: kind}, "samples": [(name, labels,
    value)]}`` with labels as plain dicts — enough for the tests and CI
    smoke to assert on individual series.
    """
    families: dict = {}
    samples: list = []
    for lineno, raw in enumerate(text.splitlines(), start=1):
        line = raw.rstrip()
        if not line:
            continue
        if line.startswith("#"):
            parts = line.split(None, 3)
            if len(parts) >= 3 and parts[1] == "TYPE":
                kind = parts[3] if len(parts) > 3 else ""
                if kind not in (
                    "counter",
                    "gauge",
                    "summary",
                    "histogram",
                    "untyped",
                ):
                    raise ConfigurationError(
                        f"line {lineno}: unknown metric type {kind!r}"
                    )
                families[parts[2]] = kind
            continue
        match = _SAMPLE.match(line)
        if match is None:
            raise ConfigurationError(
                f"line {lineno}: malformed sample {line!r}"
            )
        name, label_body, value = match.groups()
        labels = {}
        if label_body:
            body = label_body[1:-1].strip()
            position = 0
            while position < len(body):
                pair = _LABEL.match(body, position)
                if pair is None:
                    raise ConfigurationError(
                        f"line {lineno}: malformed labels {label_body!r}"
                    )
                labels[pair.group(1)] = _unescape_label(pair.group(2))
                position = pair.end()
                while position < len(body) and body[position] in ", ":
                    position += 1
        base = name
        for suffix in ("_count", "_sum", "_bucket"):
            if name.endswith(suffix) and name[: -len(suffix)] in families:
                base = name[: -len(suffix)]
                break
        if base not in families:
            raise ConfigurationError(
                f"line {lineno}: sample {name!r} has no # TYPE declaration"
            )
        samples.append((name, labels, float(value)))
    return {"families": families, "samples": samples}


def workqueue_samples(status: dict, now: float | None = None) -> list:
    """Extra-sample list (for :func:`render_prometheus`) from a
    :meth:`~repro.core.executor.WorkQueue.status` snapshot.

    Covers the distributed-run gauges the ISSUE's dashboard needs:
    chunk counts by state, per-lease ages (a stuck worker shows as a
    monotonically growing age) and per-worker liveness (seconds since
    last heartbeat, plus chunks completed).
    """
    if now is None:
        import time

        now = time.time()
    samples = [
        {
            "name": f"workqueue.{key}",
            "value": int(status.get(key) or 0),
        }
        for key in ("pending", "leased", "expired", "completed")
    ]
    samples.append(
        {"name": "workqueue.done", "value": 1 if status.get("done") else 0}
    )
    for name, age in sorted((status.get("lease_ages") or {}).items()):
        samples.append(
            {
                "name": "workqueue.lease_age_s",
                "value": age,
                "labels": {"lease": name},
            }
        )
    for record in status.get("workers") or []:
        worker = str(record.get("worker", "?"))
        samples.append(
            {
                "name": "workqueue.worker_heartbeat_age_s",
                "value": round(max(0.0, now - record.get("t", now)), 3),
                "labels": {"worker": worker},
            }
        )
        samples.append(
            {
                "name": "workqueue.worker_chunks_done",
                "value": record.get("chunks_done", 0),
                "type": "counter",
                "labels": {"worker": worker},
            }
        )
    return samples


def sample_value(parsed: dict, name: str, **labels) -> float | None:
    """First sample matching ``name`` and the given label subset."""
    for sample_name, sample_labels, value in parsed["samples"]:
        if sample_name != name:
            continue
        if all(sample_labels.get(k) == v for k, v in labels.items()):
            return value
    return None
