"""Merge per-process ledgers/traces into one Chrome trace.

A distributed run leaves telemetry scattered across processes: the
coordinator's :class:`~repro.obs.ledger.RunLedger`, one worker ledger
per process under the queue's ``ledgers/`` directory, a saved
``/v1/jobs/<id>/events`` document from the service, and optionally
Chrome traces from :class:`~repro.obs.trace.TraceRecorder`.  ``repro
trace --merge FILE...`` feeds them through :func:`merge_traces`, which
assembles a single Perfetto-loadable Chrome trace-event JSON:

* every input file becomes one *process* (pid) with a ``process_name``
  metadata record, so Perfetto renders one lane per ledger;
* matched ``span_start``/``span_end`` pairs become complete (``X``)
  events; unmatched starts (a killed worker) degrade to instants;
* ``chunk`` events become ``X`` events covering their reported wall
  duration;
* every other ledger kind becomes a thread-scoped instant;
* spans whose ``parent_span_id`` lives in a *different* process get
  Chrome flow arrows (``ph: "s"``/``"f"``), which is what draws the
  service → executor → worker parenting across lanes.

:func:`orphan_parents` is the validator the chaos harness and CI smoke
use: the set of ``parent_span_id`` values referenced anywhere that no
event in any input ever carried as its own ``span_id`` — non-empty
means a broken cross-process parent chain.
"""

from __future__ import annotations

import json
from pathlib import Path

from repro.errors import ConfigurationError

#: Ledger kinds rendered as instants in the merged trace.  Everything
#: else (high-volume or bookkeeping-only kinds) is skipped to keep the
#: merged trace readable; spans and chunks always render.
INSTANT_KINDS = frozenset(
    {
        "ledger_open",
        "resume",
        "run_start",
        "run_end",
        "queue_start",
        "queue_end",
        "checkpoint",
        "quarantine",
        "retry",
        "timeout",
        "fallback",
        "lease_expired",
        "store_hits",
        "cache_hit",
        "cancelled",
        "progress",
    }
)


def load_trace_file(path) -> tuple:
    """Classify and load one input file.

    Returns ``("chrome", document)`` for a Chrome trace-event JSON
    (``traceEvents`` key), or ``("ledger", records)`` for ledger-shaped
    input: JSONL (one record per line), a JSON array of records, or a
    ``{"events": [...]}`` envelope (a saved job-events response).
    """
    path = Path(path)
    text = path.read_text(encoding="utf-8")
    stripped = text.lstrip()
    if stripped.startswith("{") or stripped.startswith("["):
        try:
            document = json.loads(text)
        except json.JSONDecodeError:
            document = None
        if isinstance(document, dict):
            if "traceEvents" in document:
                return "chrome", document
            if isinstance(document.get("events"), list):
                return "ledger", document["events"]
        if isinstance(document, list):
            return "ledger", document
    records = []
    for line in text.splitlines():
        line = line.strip()
        if not line:
            continue
        try:
            record = json.loads(line)
        except json.JSONDecodeError:
            continue  # torn tail of a killed writer
        if isinstance(record, dict):
            records.append(record)
    if not records:
        raise ConfigurationError(
            f"{path} holds neither a Chrome trace nor ledger records"
        )
    return "ledger", records


def _flow_id(span_id: str) -> int:
    """Stable positive integer flow id for a hex span id."""
    try:
        return int(span_id[:15], 16) or 1
    except ValueError:
        return (abs(hash(span_id)) % (2**31)) or 1


def _ledger_spans(records: list) -> tuple:
    """Split one ledger into (spans, chunks, instants).

    A span is a matched start/end pair (by the end's ``span`` back
    reference); unmatched starts are returned with ``dur=None``.
    """
    starts: dict = {}
    spans = []
    chunks = []
    instants = []
    for record in records:
        kind = record.get("kind")
        if kind == "span_start":
            starts[record.get("id")] = record
        elif kind == "span_end":
            start = starts.pop(record.get("span"), None)
            anchor = start if start is not None else record
            duration = record.get("s")
            begin_t = anchor.get("t")
            if start is None and duration is not None:
                # Quarantine-style synthetic end with no start: the
                # event time is the *end*; back the bar up.
                begin_t = (begin_t or 0.0) - duration
            spans.append(
                {
                    "name": record.get("name", "span"),
                    "t": begin_t,
                    "s": duration,
                    "record": anchor,
                }
            )
        elif kind == "chunk":
            chunks.append(record)
        elif kind in INSTANT_KINDS:
            instants.append(record)
    for start in starts.values():
        spans.append(
            {
                "name": start.get("name", "span"),
                "t": start.get("t"),
                "s": None,
                "record": start,
            }
        )
    return spans, chunks, instants


def orphan_parents(event_lists) -> set:
    """Parent span ids referenced but never defined, across all inputs.

    ``event_lists`` is an iterable of ledger record lists.  A parent is
    *defined* when any record anywhere carries it as its own
    ``span_id`` — the worker re-emits a stolen chunk's context
    verbatim, so even a SIGKILL'd worker's chunks stay defined.
    """
    defined = set()
    referenced = set()
    for records in event_lists:
        for record in records:
            span_id = record.get("span_id")
            if span_id:
                defined.add(span_id)
            parent = record.get("parent_span_id")
            if parent:
                referenced.add(parent)
    return referenced - defined


def merge_traces(paths) -> dict:
    """Assemble the input files into one Chrome trace document.

    See the module docstring for the mapping.  The merged document's
    ``otherData`` carries the input list, the trace ids observed and
    any orphan parent ids (``orphan_parents``) so a CI job can fail on
    broken parenting without re-parsing the events.
    """
    if not paths:
        raise ConfigurationError("trace merge needs at least one file")
    loaded = [(Path(path), *load_trace_file(path)) for path in paths]
    ledger_lists = [
        records for _, fmt, records in loaded if fmt == "ledger"
    ]
    # One wall-clock origin across every ledger, so lanes line up.
    t0 = None
    for records in ledger_lists:
        for record in records:
            t = record.get("t")
            if isinstance(t, (int, float)):
                t0 = t if t0 is None else min(t0, t)
    t0 = t0 or 0.0

    def ts_us(t) -> float:
        if not isinstance(t, (int, float)):
            return 0.0
        return round((t - t0) * 1e6, 3)

    events: list = []
    span_index: dict = {}  # span_id -> (pid, ts_us) first definition
    flows: list = []  # (child_pid, child_ts, parent_span_id, child_id)
    trace_ids = set()
    for pid0, (path, fmt, payload) in enumerate(loaded):
        pid = pid0 + 1
        events.append(
            {
                "name": "process_name",
                "ph": "M",
                "pid": pid,
                "args": {"name": path.name},
            }
        )
        if fmt == "chrome":
            context = (payload.get("otherData") or {}).get("trace") or {}
            if context.get("trace_id"):
                trace_ids.add(context["trace_id"])
            for event in payload.get("traceEvents", []):
                event = dict(event)
                event["pid"] = pid
                if event.get("ph") == "M" and event.get("name") == (
                    "process_name"
                ):
                    continue  # replaced by the file-name metadata
                events.append(event)
            continue
        spans, chunks, instants = _ledger_spans(payload)
        for record in payload:
            if record.get("trace_id"):
                trace_ids.add(record["trace_id"])
        for span in spans:
            record = span["record"]
            span_id = record.get("span_id")
            start_us = ts_us(span["t"])
            args = {
                key: value
                for key, value in record.items()
                if key not in ("id", "t", "kind")
            }
            if span["s"] is None:
                events.append(
                    {
                        "name": span["name"],
                        "ph": "i",
                        "s": "t",
                        "ts": start_us,
                        "pid": pid,
                        "tid": 1,
                        "args": args,
                    }
                )
            else:
                events.append(
                    {
                        "name": span["name"],
                        "ph": "X",
                        "ts": start_us,
                        "dur": round(span["s"] * 1e6, 3),
                        "pid": pid,
                        "tid": 1,
                        "args": args,
                    }
                )
            if span_id and span_id not in span_index:
                span_index[span_id] = (pid, start_us)
            parent = record.get("parent_span_id")
            if span_id and parent:
                flows.append((pid, start_us, parent, span_id))
        for record in chunks:
            duration = record.get("s") or 0.0
            events.append(
                {
                    "name": f"chunk {record.get('index')}",
                    "ph": "X",
                    "ts": ts_us((record.get("t") or t0) - duration),
                    "dur": round(duration * 1e6, 3),
                    "pid": pid,
                    "tid": 2,
                    "args": {
                        key: value
                        for key, value in record.items()
                        if key not in ("id", "t", "kind")
                    },
                }
            )
        for record in instants:
            events.append(
                {
                    "name": record.get("kind"),
                    "ph": "i",
                    "s": "t",
                    "ts": ts_us(record.get("t")),
                    "pid": pid,
                    "tid": 1,
                    "args": {
                        key: value
                        for key, value in record.items()
                        if key not in ("id", "t", "kind")
                    },
                }
            )
    # Cross-process parent arrows: one flow per child span whose parent
    # span was defined in a *different* process.
    for child_pid, child_ts, parent, child_id in flows:
        definition = span_index.get(parent)
        if definition is None:
            continue
        parent_pid, parent_ts = definition
        if parent_pid == child_pid:
            continue
        flow = _flow_id(child_id)
        events.append(
            {
                "name": "parent",
                "cat": "trace",
                "ph": "s",
                "id": flow,
                "ts": parent_ts,
                "pid": parent_pid,
                "tid": 1,
            }
        )
        events.append(
            {
                "name": "parent",
                "cat": "trace",
                "ph": "f",
                "bp": "e",
                "id": flow,
                "ts": child_ts,
                "pid": child_pid,
                "tid": 1,
            }
        )
    orphans = sorted(orphan_parents(ledger_lists))
    return {
        "traceEvents": events,
        "displayTimeUnit": "ns",
        "otherData": {
            "inputs": [str(path) for path, _, _ in loaded],
            "trace_ids": sorted(trace_ids),
            "orphan_parents": orphans,
        },
    }


def write_merged_trace(paths, out) -> dict:
    """Merge ``paths`` and write the Chrome trace JSON to ``out``."""
    document = merge_traces(paths)
    with open(out, "w", encoding="utf-8") as handle:
        json.dump(document, handle)
        handle.write("\n")
    return document
