"""Canned instrumented workloads for the `repro trace/metrics` CLI.

The MPEG2-decoder mix mirrors the paper's Section 4.1 memory subsystem
(and :mod:`repro.apps.mpeg2`): a display output stream, a
motion-compensation read engine and a reconstruction write engine over
the frame stores, a bitstream buffer client, and a CPU-like random
client — all sharing one embedded macro.  It is the standard target for
``repro trace`` because it exercises every instrumented path: row hits
(display), row misses and bank conflicts (motion compensation), writes
(reconstruction), refresh, back-pressure and fast-forward windows.
"""

from __future__ import annotations

from repro.controller.controller import ControllerConfig, MemoryController
from repro.dram.edram import EDRAMMacro
from repro.dram.organizations import AddressMapping, MappingScheme
from repro.sim.simulator import MemorySystemSimulator, SimulationConfig
from repro.traffic.client import ClientKind, MemoryClient
from repro.traffic.patterns import (
    BlockPattern,
    RandomPattern,
    SequentialPattern,
)
from repro.units import MBIT


def mpeg2_decoder_simulator(
    cycles: int = 8_000,
    warmup_cycles: int = 1_000,
    load: float = 1.2,
    banks: int = 8,
    page_bits: int = 4096,
    fast_forward: bool = True,
    backend: str = "cycle",
    obs=None,
) -> MemorySystemSimulator:
    """MPEG2-decoder-style five-client system on a 16-Mbit macro.

    ``load`` is the total offered fraction of peak bandwidth, split
    across the clients roughly like the decoder's traffic components
    (display and motion compensation dominate, bitstream is light).
    """
    macro = EDRAMMacro.build(
        size_bits=16 * MBIT, width=64, banks=banks, page_bits=page_bits
    )
    device = macro.device()
    controller = MemoryController(
        device=device,
        mapping=AddressMapping(
            device.organization, MappingScheme.ROW_BANK_COL
        ),
        config=ControllerConfig(),
    )
    total_words = device.organization.total_words
    burst = device.timing.burst_length
    # Traffic shares of the offered load (sum = 1.0): display reads,
    # motion-compensation reads, reconstruction writes, bitstream,
    # CPU-ish housekeeping.
    shares = {
        "display": 0.35,
        "motion": 0.30,
        "reconstruct": 0.20,
        "bitstream": 0.05,
        "cpu": 0.10,
    }
    frame_base = total_words // 4
    clients = [
        MemoryClient(
            name="display",
            pattern=SequentialPattern(base=0, length=frame_base),
            rate=load * shares["display"] / burst,
            kind=ClientKind.STREAM,
            seed=1,
        ),
        MemoryClient(
            name="motion",
            pattern=BlockPattern(
                base=frame_base,
                width=720,
                height=256,
                block_w=16,
                block_h=16,
            ),
            rate=load * shares["motion"] / burst,
            kind=ClientKind.BLOCK,
            seed=2,
        ),
        MemoryClient(
            name="reconstruct",
            pattern=BlockPattern(
                base=2 * frame_base,
                width=720,
                height=256,
                block_w=16,
                block_h=16,
            ),
            rate=load * shares["reconstruct"] / burst,
            read_fraction=0.0,
            kind=ClientKind.BLOCK,
            seed=3,
        ),
        MemoryClient(
            name="bitstream",
            pattern=SequentialPattern(
                base=3 * frame_base, length=frame_base // 4
            ),
            rate=load * shares["bitstream"] / burst,
            kind=ClientKind.STREAM,
            seed=4,
        ),
        MemoryClient(
            name="cpu",
            pattern=RandomPattern(base=0, length=total_words, seed=5),
            rate=load * shares["cpu"] / burst,
            read_fraction=0.6,
            kind=ClientKind.RANDOM,
            seed=5,
        ),
    ]
    return MemorySystemSimulator(
        controller=controller,
        clients=clients,
        config=SimulationConfig(
            cycles=cycles,
            warmup_cycles=warmup_cycles,
            fast_forward=fast_forward,
            backend=backend,
        ),
        obs=obs,
    )
