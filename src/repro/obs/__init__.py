"""Observability layer: metrics registry + command-timeline tracing.

One :class:`Observability` object rides along with a simulation run and
receives every interesting event — command issues, request retirements,
row hits/misses, FIFO pushes/stalls, refresh services and fast-forward
skip windows.  It fans each event into

* a :class:`~repro.obs.metrics.MetricsRegistry` (counters and bounded
  histograms, exported as a JSON snapshot), and
* optionally a :class:`~repro.obs.trace.TraceRecorder` (Chrome
  trace-event JSON loadable in Perfetto), with one timeline track per
  bank (row-open spans), per client (request lifetimes), plus command,
  refresh and fast-forward tracks.

The layer is strictly read-only: it never mutates simulator state, and
with ``obs=None`` (the default everywhere) the only cost is one
attribute check per event at the instrumented call sites — results are
bit-identical either way, which ``tests/test_obs.py`` pins with the
differential fingerprints.
"""

from __future__ import annotations

from repro.dram.commands import CommandType
from repro.obs.aggregate import fold_snapshot, merge_snapshots
from repro.obs.ledger import RunLedger
from repro.obs.metrics import (
    BoundedHistogram,
    Counter,
    Gauge,
    GLOBAL_METRICS,
    MetricsRegistry,
    NULL_METRIC,
)
from repro.obs.progress import ProgressReporter
from repro.obs.trace import TraceRecorder
from repro.obs.tracectx import TraceContext, coerce_trace

__all__ = [
    "BoundedHistogram",
    "Counter",
    "Gauge",
    "GLOBAL_METRICS",
    "MetricsRegistry",
    "NULL_METRIC",
    "Observability",
    "ProgressReporter",
    "RunLedger",
    "TraceContext",
    "TraceRecorder",
    "coerce_trace",
    "fold_snapshot",
    "merge_snapshots",
]


class Observability:
    """Metrics + optional tracing for one simulation run.

    Create with :meth:`create`, pass as ``obs=`` to
    :class:`~repro.sim.simulator.MemorySystemSimulator` (or attach to an
    already-built simulator with :meth:`attach`), run, then read
    ``obs.metrics.snapshot()`` and ``obs.trace.to_dict()``.
    """

    def __init__(
        self,
        metrics: MetricsRegistry | None = None,
        trace: TraceRecorder | None = None,
    ) -> None:
        self.metrics = metrics if metrics is not None else MetricsRegistry()
        self.trace = trace
        # Per-bank (row, activate-cycle) while a row is open, for the
        # bank-timeline spans closed at PRECHARGE/REFRESH time.
        self._open_rows: dict = {}

    @classmethod
    def create(
        cls,
        trace: bool = False,
        clock_hz: float | None = None,
        max_events: int = 1_000_000,
    ) -> "Observability":
        recorder = (
            TraceRecorder(clock_hz=clock_hz, max_events=max_events)
            if trace
            else None
        )
        return cls(metrics=MetricsRegistry(), trace=recorder)

    def attach(self, simulator) -> "Observability":
        """Wire this observer into an already-built simulator."""
        simulator.obs = self
        simulator.controller.obs = self
        self.bind(simulator)
        return self

    def bind(self, simulator) -> None:
        """Learn the run's clock and pre-name the timeline tracks."""
        if self.trace is not None and self.trace.clock_hz is None:
            self.trace.set_clock(simulator.device.timing.clock_hz)

    # -- controller events ---------------------------------------------------

    def on_command(self, command, end_cycle: int) -> None:
        """One DRAM command issued (``end_cycle`` = burst/settle end)."""
        kind = command.kind
        self.metrics.counter(f"sim.commands.{kind.value}").inc()
        trace = self.trace
        if trace is None:
            return
        if kind is CommandType.ACTIVATE:
            self._open_rows[command.bank] = (command.row, command.cycle)
            trace.instant(
                "commands", "ACT", command.cycle, bank=command.bank,
                row=command.row,
            )
        elif kind is CommandType.PRECHARGE:
            self._close_row_span(command.bank, command.cycle)
            trace.instant(
                "commands", "PRE", command.cycle, bank=command.bank
            )
        elif kind is CommandType.REFRESH:
            for bank in list(self._open_rows):
                self._close_row_span(bank, command.cycle)
            trace.complete(
                "refresh", "REFRESH", command.cycle, end_cycle
            )
        else:  # READ / WRITE column commands span until burst end
            trace.complete(
                "commands",
                kind.value,
                command.cycle,
                end_cycle,
                bank=command.bank,
                column=command.column,
                request_id=command.request_id,
            )

    def _close_row_span(self, bank: int, cycle: int) -> None:
        opened = self._open_rows.pop(bank, None)
        if opened is None:
            return
        row, activate_cycle = opened
        self.trace.complete(
            f"bank {bank}", f"row {row}", activate_cycle, cycle, row=row
        )

    def on_access(self, bank: int, was_row_hit: bool) -> None:
        name = "sim.row_hits" if was_row_hit else "sim.row_misses"
        self.metrics.counter(name).inc()

    def on_retire(self, request) -> None:
        latency = request.latency_cycles
        self.metrics.histogram("sim.latency_cycles").record(latency)
        self.metrics.histogram(
            f"sim.latency_cycles.{request.client}"
        ).record(latency)
        self.metrics.counter("sim.requests_completed").inc()
        if self.trace is not None:
            self.trace.complete(
                f"client {request.client}",
                f"req {request.request_id}",
                request.created_cycle,
                request.completed_cycle,
                address=request.address,
                read=request.is_read,
                latency_cycles=latency,
            )

    def on_fifo_push(self, client: str, depth: int, cycle: int) -> None:
        self.metrics.histogram(f"fifo.depth.{client}").record(depth)
        if self.trace is not None:
            self.trace.counter(
                f"client {client}", f"fifo {client}", cycle, depth=depth
            )

    def on_fifo_stall(self, client: str, cycle: int) -> None:
        self.metrics.counter(f"fifo.stalls.{client}").inc()
        if self.trace is not None:
            self.trace.instant(f"client {client}", "stall", cycle)

    # -- fault injection / degradation events --------------------------------

    def on_fault_event(self, event: str, cycle: int, **details) -> None:
        """One injected fault or degradation response from
        :mod:`repro.inject`: ECC outcomes (``ecc_corrected`` /
        ``ecc_uncorrectable``), scrub retries, refresh drops/delays,
        row remaps, bank quarantines and injected FIFO stalls all land
        here as ``inject.<event>`` counters plus trace instants on the
        ``inject`` track."""
        self.metrics.counter(f"inject.{event}").inc()
        if self.trace is not None:
            self.trace.instant("inject", event, cycle, **details)

    # -- simulator events ----------------------------------------------------

    def on_skip(self, start_cycle: int, skipped: int) -> None:
        self.metrics.counter("sim.cycles_fast_forwarded").inc(skipped)
        self.metrics.counter("sim.fast_forward_jumps").inc()
        self.metrics.histogram("sim.fast_forward_span").record(skipped)
        if self.trace is not None:
            self.trace.complete(
                "fast-forward",
                "skip",
                start_cycle,
                start_cycle + skipped,
                cycles=skipped,
            )

    def on_measurement_reset(self, cycle: int) -> None:
        self.metrics.counter("sim.measurement_resets").inc()
        if self.trace is not None:
            self.trace.instant("fast-forward", "measurement-reset", cycle)

    def on_run_end(self, total_cycles: int) -> None:
        self.metrics.gauge("sim.total_cycles").set(total_cycles)
        if self.trace is not None:
            for bank in list(self._open_rows):
                self._close_row_span(bank, total_cycles)
            self.metrics.gauge("trace.events").set(len(self.trace.events))
            self.metrics.gauge("trace.dropped_events").set(
                self.trace.dropped_events
            )
