"""``repro top`` — live TTY dashboard over a running service.

Polls ``GET /v1/metrics`` (Prometheus text) and renders a compact
one-screen summary: job counts by status, queue depth against its
limit, per-workload breaker state and latency quantiles, shed /
coalesced / cache rates.  On a real TTY the screen is redrawn in place
with ANSI clear codes; when stdout is not a TTY (CI logs, pipes) it
degrades to plain periodic text blocks, one per poll.

Everything is injectable for tests: the fetcher (a callable returning
exposition text), the clock, the output stream and the iteration
count — ``render_dashboard`` itself is a pure function from parsed
samples to a string.
"""

from __future__ import annotations

import time

from repro.obs.expo import parse_prometheus, sample_value

#: ANSI: home the cursor and clear to end of screen.
_CLEAR = "\x1b[H\x1b[2J"


def _fmt(value, width: int = 6) -> str:
    if value is None:
        return "-".rjust(width)
    if value == int(value):
        return str(int(value)).rjust(width)
    return f"{value:.2f}".rjust(width)


def _series(parsed: dict, name: str) -> list:
    return [
        (labels, value)
        for sample_name, labels, value in parsed["samples"]
        if sample_name == name
    ]


def render_dashboard(text: str, title: str = "repro top") -> str:
    """One dashboard frame from raw exposition text (pure function)."""
    parsed = parse_prometheus(text)
    lines = [title, "=" * len(title)]

    jobs = _series(parsed, "repro_serve_jobs")
    total_jobs = int(sum(value for _, value in jobs))
    by_status = ", ".join(
        f"{labels.get('status', '?')}={int(value)}"
        for labels, value in sorted(
            jobs, key=lambda pair: pair[0].get("status", "")
        )
    )
    lines.append(
        f"jobs      {total_jobs} ({by_status})" if jobs else "jobs      0"
    )

    depth = sample_value(parsed, "repro_serve_queue_depth")
    limit = sample_value(parsed, "repro_serve_queue_depth_limit")
    in_flight = sample_value(parsed, "repro_serve_in_flight")
    lines.append(
        f"queue     depth {_fmt(depth, 1)}"
        + (f"/{int(limit)}" if limit is not None else "")
        + f"   in-flight {_fmt(in_flight, 1)}"
    )

    shed = sample_value(parsed, "repro_serve_shed")
    coalesced = sample_value(parsed, "repro_serve_coalesced")
    cache_ratio = sample_value(parsed, "repro_serve_cache_hit_ratio")
    lines.append(
        f"pressure  shed {_fmt(shed, 1)}   coalesced {_fmt(coalesced, 1)}"
        + (
            f"   cache-hit {cache_ratio * 100:.0f}%"
            if cache_ratio is not None
            else ""
        )
    )

    # Per-workload: breaker state + latency summary on one row each.
    workloads: dict = {}
    for labels, value in _series(parsed, "repro_serve_breaker_state"):
        if value >= 1:
            workloads.setdefault(labels.get("workload", "?"), {})[
                "state"
            ] = labels.get("state", "?")
    for labels, value in _series(parsed, "repro_serve_job_ms"):
        entry = workloads.setdefault(labels.get("workload", "?"), {})
        entry[f"q{labels.get('quantile', '?')}"] = value
    for labels, value in _series(parsed, "repro_serve_job_ms_count"):
        workloads.setdefault(labels.get("workload", "?"), {})[
            "count"
        ] = value
    if workloads:
        lines.append("")
        lines.append(
            "workload              breaker     jobs   p50ms   p95ms"
        )
        for name in sorted(workloads):
            entry = workloads[name]
            lines.append(
                f"{name[:20].ljust(20)}  "
                f"{entry.get('state', 'closed').ljust(9)} "
                f"{_fmt(entry.get('count'))} "
                f"{_fmt(entry.get('q0.5'), 7)} "
                f"{_fmt(entry.get('q0.95'), 7)}"
            )

    # Distributed workers, if the scrape includes work-queue samples.
    workers = _series(parsed, "repro_workqueue_lease_age_s")
    if workers:
        lines.append("")
        lines.append("worker                lease-age-s")
        for labels, value in sorted(
            workers, key=lambda pair: pair[0].get("lease", "")
        ):
            lines.append(
                f"{labels.get('lease', '?')[:20].ljust(20)}  "
                f"{_fmt(value, 9)}"
            )
    return "\n".join(lines) + "\n"


def top_loop(
    fetch,
    out,
    interval_s: float = 1.0,
    iterations: int | None = None,
    is_tty: bool | None = None,
    sleep=time.sleep,
    title: str = "repro top",
) -> int:
    """Poll ``fetch()`` and render frames to ``out`` until interrupted.

    ``iterations=None`` runs until KeyboardInterrupt (the interactive
    mode); tests and ``--once`` pass a finite count.  Returns the
    number of frames rendered.  A fetch failure renders an error frame
    instead of crashing — the service being briefly unreachable is a
    state worth displaying, not a reason to exit.
    """
    if is_tty is None:
        is_tty = bool(getattr(out, "isatty", lambda: False)())
    frames = 0
    try:
        while iterations is None or frames < iterations:
            try:
                frame = render_dashboard(fetch(), title=title)
            except Exception as error:  # noqa: BLE001 - keep polling
                frame = f"{title}\n{'=' * len(title)}\n[unreachable: {error}]\n"
            if is_tty:
                out.write(_CLEAR + frame)
            else:
                out.write(frame + "\n")
            out.flush()
            frames += 1
            if iterations is not None and frames >= iterations:
                break
            sleep(interval_s)
    except KeyboardInterrupt:
        pass
    return frames
