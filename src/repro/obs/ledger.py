"""Run ledger: structured JSONL span events for sweep-scale telemetry.

The paper's contribution is the *sweep* — thousands of design points
per exploration — yet PR 3's observability only looked inside one
simulation.  :class:`RunLedger` instruments the pipeline itself: every
:meth:`Sweep.run <repro.core.sweep.Sweep.run>`, explorer invocation and
injection campaign gets a run id and streams append-only JSONL events:

* ``ledger_open`` — once per file, with config+git provenance and an
  environment fingerprint (python, platform, CPU count, numpy);
* ``run_start`` / ``run_end`` — one pair per instrumented invocation;
* ``span_start`` / ``span_end`` — named phases (enumerate, evaluate,
  frontier, map N) with wall durations;
* ``chunk`` — per-chunk worker timings from ``parallel_map``;
* ``retry`` / ``timeout`` / ``fallback`` / ``quarantine`` — the
  resilience machinery's decisions, now on the record;
* ``checkpoint`` / ``resume`` — journal interactions, so an
  interrupted-and-resumed sweep reads as one continuous story.

Every event carries a monotonically increasing ``id`` and the ledger's
``run`` id.  Re-opening an existing ledger file *continues* the id
sequence (and emits a ``resume`` event) instead of restarting it, so a
resumed sweep never duplicates ids — ``repro report`` and the tests
rely on that continuity.

The ledger is pure output: it never feeds back into evaluation, and
``ledger=None`` (the default everywhere) costs one ``is not None``
check per call site.  Lines are buffered and flushed at state-changing
events (open/resume/checkpoint/run boundaries), so a crash loses at
most a buffer of chunk timings, never the story's spine.
"""

from __future__ import annotations

import json
import os
import platform
import subprocess
import sys
import time
import uuid
from contextlib import contextmanager
from pathlib import Path

from repro.errors import ConfigurationError
from repro.obs.tracectx import coerce_trace

#: Event kinds that force a flush to disk when emitted.
FLUSH_KINDS = frozenset(
    {
        "ledger_open",
        "resume",
        "run_start",
        "run_end",
        "checkpoint",
        "fallback",
    }
)


def environment_fingerprint() -> dict:
    """Where this run happened: interpreter, platform, CPUs, numpy."""
    try:
        import numpy

        numpy_version = numpy.__version__
    except Exception:  # pragma: no cover - numpy is normally present
        numpy_version = None
    return {
        "python": platform.python_version(),
        "implementation": platform.python_implementation(),
        "platform": platform.platform(),
        "machine": platform.machine(),
        "cpu_count": os.cpu_count(),
        "numpy": numpy_version,
        "argv": list(sys.argv),
    }


def git_provenance(cwd: str | Path | None = None) -> dict:
    """Best-effort git commit/dirty state (empty outside a checkout)."""
    base = str(cwd) if cwd is not None else os.getcwd()
    try:
        commit = subprocess.run(
            ["git", "rev-parse", "HEAD"],
            cwd=base,
            capture_output=True,
            text=True,
            timeout=5,
            check=True,
        ).stdout.strip()
        status = subprocess.run(
            ["git", "status", "--porcelain"],
            cwd=base,
            capture_output=True,
            text=True,
            timeout=5,
            check=True,
        ).stdout
        return {"commit": commit, "dirty": bool(status.strip())}
    except Exception:
        return {}


def _stamp_trace(record: dict, stack: list) -> None:
    """Stamp the innermost bound trace context onto one event record.

    No-op on an empty stack, so a traceless ledger emits byte-identical
    records to the pre-tracing format (pinned by the ledger tests).
    """
    if not stack:
        return
    context = stack[-1]
    record["trace_id"] = context.trace_id
    record["span_id"] = context.span_id
    if context.parent_span_id is not None:
        record["parent_span_id"] = context.parent_span_id


@contextmanager
def _span_context(stack: list):
    """Push a child of the current context for one span's duration."""
    parent = stack[-1] if stack else None
    if parent is not None:
        stack.append(parent.child())
    try:
        yield
    finally:
        if parent is not None:
            stack.pop()


class RunLedger:
    """Append-only JSONL event stream for one (or one resumed) run.

    Opening a path that already holds a ledger *continues* it: the run
    id and the event-id sequence carry on from the existing tail and a
    ``resume`` event marks the seam.  Opening a fresh path writes the
    ``ledger_open`` provenance event first.

    Attributes:
        path: The JSONL file.
        run_id: Stable id stamped on every event (inherited on resume).
        resumed: Whether this ledger continued an existing file.
    """

    def __init__(self, path: str | Path, trace=None) -> None:
        self.path = Path(path)
        self._handle = None
        self._unflushed = 0
        self._needs_newline = False
        self.resumed = False
        context = coerce_trace(trace)
        self._trace_stack: list = [] if context is None else [context]
        run_id = None
        next_id = 0
        if self.path.exists() and self.path.stat().st_size > 0:
            run_id, next_id = self._scan_existing()
            self.resumed = True
        self.run_id = run_id if run_id else uuid.uuid4().hex[:12]
        self._next_id = next_id
        if self.resumed:
            self.event("resume", prior_events=next_id)
        else:
            self.event(
                "ledger_open",
                environment=environment_fingerprint(),
                git=git_provenance(),
            )

    def _scan_existing(self) -> tuple:
        """Recover (run_id, next_event_id) from an existing ledger."""
        run_id = None
        max_id = -1
        line = ""
        with open(self.path, "r", encoding="utf-8") as handle:
            for line in handle:
                if not line.strip():
                    continue
                try:
                    record = json.loads(line)
                except json.JSONDecodeError:
                    continue  # torn tail from an interrupted run
                if run_id is None:
                    run_id = record.get("run")
                event_id = record.get("id")
                if isinstance(event_id, int) and event_id > max_id:
                    max_id = event_id
        # A writer killed mid-line leaves no trailing newline; appending
        # straight after it would corrupt the next event too.
        self._needs_newline = bool(line) and not line.endswith("\n")
        return run_id, max_id + 1

    # -- event emission ------------------------------------------------------

    def event(self, kind: str, **fields) -> int:
        """Emit one event; returns its id (monotonic within the file)."""
        if not kind:
            raise ConfigurationError("ledger event kind required")
        event_id = self._next_id
        self._next_id += 1
        record = {
            "id": event_id,
            "t": round(time.time(), 6),
            "run": self.run_id,
            "kind": kind,
        }
        record.update(fields)
        _stamp_trace(record, self._trace_stack)
        handle = self._open()
        handle.write(json.dumps(record, default=str) + "\n")
        self._unflushed += 1
        if kind in FLUSH_KINDS or self._unflushed >= 128:
            self.flush()
        return event_id

    @contextmanager
    def span(self, name: str, **fields):
        """Named phase: ``span_start``/``span_end`` with wall duration.

        With a trace context bound, the span runs under a fresh child
        context — both span events (and everything emitted inside)
        carry the child's ``span_id``, parented to the enclosing span.
        """
        with _span_context(self._trace_stack):
            start_id = self.event("span_start", name=name, **fields)
            started = time.perf_counter()
            try:
                yield start_id
            finally:
                self.event(
                    "span_end",
                    name=name,
                    span=start_id,
                    s=round(time.perf_counter() - started, 6),
                )

    # -- trace context -------------------------------------------------------

    @property
    def trace_context(self):
        """The innermost bound :class:`TraceContext`, or None."""
        return self._trace_stack[-1] if self._trace_stack else None

    @contextmanager
    def bind_trace(self, context):
        """Bind ``context`` (context/dict/None) for the enclosed block."""
        context = coerce_trace(context)
        if context is None:
            yield None
            return
        self._trace_stack.append(context)
        try:
            yield context
        finally:
            self._trace_stack.pop()

    # -- lifecycle -----------------------------------------------------------

    def flush(self) -> None:
        if self._handle is not None:
            self._handle.flush()
            self._unflushed = 0

    def close(self) -> None:
        if self._handle is not None:
            self._handle.close()
            self._handle = None

    def __enter__(self) -> "RunLedger":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    def _open(self):
        if self._handle is None:
            self._handle = open(self.path, "a", encoding="utf-8")
            if self._needs_newline:
                self._handle.write("\n")
                self._needs_newline = False
        return self._handle


class MemoryLedger:
    """In-memory, ledger-shaped event sink (no file, no provenance).

    Quacks like :class:`RunLedger` — ``event`` / ``span`` / ``flush`` /
    ``close`` with the same record shape — but appends dicts to
    :attr:`events` instead of writing JSONL.  The exploration service
    taps one per job so ledger events double as the server-sent event
    stream; an optional ``subscriber`` callable sees each record as it
    is emitted.

    Records are plain dicts and :attr:`events` is append-only, so a
    reader holding an index can poll for new events without locking
    (CPython list appends are atomic).
    """

    def __init__(
        self, run_id: str = "mem", subscriber=None, trace=None
    ) -> None:
        self.run_id = run_id
        self.events: list = []
        self._subscriber = subscriber
        self._next_id = 0
        context = coerce_trace(trace)
        self._trace_stack: list = [] if context is None else [context]

    def event(self, kind: str, **fields) -> int:
        if not kind:
            raise ConfigurationError("ledger event kind required")
        event_id = self._next_id
        self._next_id += 1
        record = {
            "id": event_id,
            "t": round(time.time(), 6),
            "run": self.run_id,
            "kind": kind,
        }
        record.update(fields)
        _stamp_trace(record, self._trace_stack)
        self.events.append(record)
        if self._subscriber is not None:
            self._subscriber(record)
        return event_id

    @contextmanager
    def span(self, name: str, **fields):
        with _span_context(self._trace_stack):
            start_id = self.event("span_start", name=name, **fields)
            started = time.perf_counter()
            try:
                yield start_id
            finally:
                self.event(
                    "span_end",
                    name=name,
                    span=start_id,
                    s=round(time.perf_counter() - started, 6),
                )

    @property
    def trace_context(self):
        """The innermost bound :class:`TraceContext`, or None."""
        return self._trace_stack[-1] if self._trace_stack else None

    @contextmanager
    def bind_trace(self, context):
        """Bind ``context`` (context/dict/None) for the enclosed block."""
        context = coerce_trace(context)
        if context is None:
            yield None
            return
        self._trace_stack.append(context)
        try:
            yield context
        finally:
            self._trace_stack.pop()

    def flush(self) -> None:
        pass

    def close(self) -> None:
        pass


def coerce_ledger(ledger) -> tuple:
    """Normalize a ``ledger=`` argument to ``(ledger | None, owned)``.

    Callers accept ``None`` (off), a path (the common case — the callee
    opens and closes it), an already-open :class:`RunLedger` (shared
    across several invocations; the caller keeps ownership), or any
    ledger-shaped object — something with callable ``event`` and
    ``close`` — such as :class:`MemoryLedger` (never owned: the
    provider keeps reading it after the run).
    """
    if ledger is None:
        return None, False
    if isinstance(ledger, RunLedger):
        return ledger, False
    if isinstance(ledger, (str, Path)):
        return RunLedger(ledger), True
    if callable(getattr(ledger, "event", None)) and callable(
        getattr(ledger, "close", None)
    ):
        return ledger, False
    raise ConfigurationError(
        f"ledger must be a path, RunLedger or ledger-shaped object, "
        f"got {type(ledger).__name__}"
    )
