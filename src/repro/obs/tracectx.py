"""Trace-context propagation for distributed runs.

A :class:`TraceContext` is the W3C-style ``trace_id`` / ``span_id`` /
``parent_span_id`` triple that correlates one logical request across
every process that touches it: the service mints a root context at job
submission, the executor derives a child per work-queue chunk and ships
it inside the chunk document, and the worker binds that child verbatim
so its ledger spans parent correctly into the coordinator's — see
docs/OBSERVABILITY.md ("Trace context").

Contexts are immutable values, deliberately dumb: no clocks, no
thread-locals, no globals.  Whoever holds a context decides where it
flows (ledger events, TraceRecorder metadata, chunk files); code that
was handed ``None`` emits exactly the bytes it emitted before this
module existed, which is how the zero-overhead-when-off contract is
kept.
"""

from __future__ import annotations

import uuid
from dataclasses import dataclass

from repro.errors import ConfigurationError


def _new_id(bits: int) -> str:
    """A random lowercase-hex id of ``bits`` bits (multiple of 4)."""
    return uuid.uuid4().hex[: bits // 4]


@dataclass(frozen=True)
class TraceContext:
    """One span's identity within a distributed trace.

    Attributes:
        trace_id: 128-bit hex id shared by every span of one request.
        span_id: 64-bit hex id of this span.
        parent_span_id: ``span_id`` of the enclosing span, or None for
            the root.
    """

    trace_id: str
    span_id: str
    parent_span_id: str | None = None

    def __post_init__(self) -> None:
        if not self.trace_id or not self.span_id:
            raise ConfigurationError(
                "trace_id and span_id must be non-empty"
            )

    @classmethod
    def root(cls) -> "TraceContext":
        """Mint a fresh trace with this context as its root span."""
        return cls(trace_id=_new_id(128), span_id=_new_id(64))

    def child(self) -> "TraceContext":
        """A new span under this one, in the same trace."""
        return TraceContext(
            trace_id=self.trace_id,
            span_id=_new_id(64),
            parent_span_id=self.span_id,
        )

    def to_dict(self) -> dict:
        """JSON-able form for chunk files and event records."""
        document = {"trace_id": self.trace_id, "span_id": self.span_id}
        if self.parent_span_id is not None:
            document["parent_span_id"] = self.parent_span_id
        return document

    @classmethod
    def from_dict(cls, document) -> "TraceContext | None":
        """Rebuild a context from :meth:`to_dict` output (None-safe)."""
        if not document:
            return None
        if not isinstance(document, dict):
            raise ConfigurationError(
                "trace context must be a JSON object, got "
                f"{type(document).__name__}"
            )
        try:
            return cls(
                trace_id=document["trace_id"],
                span_id=document["span_id"],
                parent_span_id=document.get("parent_span_id"),
            )
        except KeyError as error:
            raise ConfigurationError(
                f"trace context missing field {error.args[0]!r}"
            ) from None


def coerce_trace(context) -> TraceContext | None:
    """Accept a TraceContext, a to_dict() mapping, or None."""
    if context is None or isinstance(context, TraceContext):
        return context
    return TraceContext.from_dict(context)
