"""Command-timeline recording in Chrome trace-event JSON.

The recorder emits the `Trace Event Format
<https://docs.google.com/document/d/1CvAClvFfyA5R-PhYUmn5OOQtYMH4h6I0nSsKchNAySU>`_
consumed by Perfetto (https://ui.perfetto.dev) and ``chrome://tracing``:
a flat ``traceEvents`` list of instant (``ph: "i"``), complete
(``ph: "X"``) and counter (``ph: "C"``) events plus process/thread
metadata.  Cycles are converted to microseconds through the interface
clock, so the timeline is in real time and traces from different clock
rates line up.

Tracks (Perfetto rows) are lazily allocated by name — one per bank, one
per client, one for the command bus, one for refresh and one for
fast-forward windows — and the event count is capped so a runaway run
degrades to a truncated trace (with a drop counter) instead of
exhausting memory.
"""

from __future__ import annotations

import json

from repro.errors import ConfigurationError
from repro.obs.tracectx import coerce_trace


class TraceRecorder:
    """Collects trace events against a cycle clock.

    Attributes:
        clock_hz: Interface clock used to place cycles on the real-time
            axis (may be set after construction, before first event).
        max_events: Hard cap on stored events; further events are
            counted in ``dropped_events`` and discarded.
    """

    def __init__(
        self, clock_hz: float | None = None, max_events: int = 1_000_000
    ) -> None:
        if max_events < 1:
            raise ConfigurationError("max_events must be >= 1")
        if clock_hz is not None and clock_hz <= 0:
            raise ConfigurationError("clock_hz must be positive")
        self.clock_hz = clock_hz
        self.max_events = max_events
        self.events: list = []
        self.dropped_events = 0
        self._tracks: dict = {}
        self.context = None

    def set_context(self, context) -> None:
        """Attach a distributed trace context (context/dict/None).

        Every event emitted afterwards carries ``trace_id``/``span_id``
        in its args, and :meth:`to_dict` exposes the context in
        ``otherData`` — which is how ``repro trace --merge`` stitches a
        simulator timeline into its parent distributed trace.  Without
        a context the output is byte-identical to the pre-tracing
        format.
        """
        self.context = coerce_trace(context)

    # -- time base -----------------------------------------------------------

    def set_clock(self, clock_hz: float) -> None:
        if clock_hz <= 0:
            raise ConfigurationError("clock_hz must be positive")
        self.clock_hz = clock_hz

    def _ts_us(self, cycle: float) -> float:
        if self.clock_hz is None:
            raise ConfigurationError(
                "TraceRecorder needs clock_hz before recording events"
            )
        return cycle * 1e6 / self.clock_hz

    # -- tracks --------------------------------------------------------------

    def track(self, name: str) -> int:
        """Thread id for a named track (created with metadata on first use)."""
        tid = self._tracks.get(name)
        if tid is None:
            tid = len(self._tracks) + 1
            self._tracks[name] = tid
            self.events.append(
                {
                    "name": "thread_name",
                    "ph": "M",
                    "pid": 1,
                    "tid": tid,
                    "args": {"name": name},
                }
            )
        return tid

    # -- events --------------------------------------------------------------

    def _emit(self, event: dict) -> None:
        if len(self.events) >= self.max_events:
            self.dropped_events += 1
            return
        if self.context is not None:
            args = event.setdefault("args", {})
            args["trace_id"] = self.context.trace_id
            args["span_id"] = self.context.span_id
        self.events.append(event)

    def instant(self, track: str, name: str, cycle: int, **args) -> None:
        self._emit(
            {
                "name": name,
                "ph": "i",
                "s": "t",  # thread-scoped instant
                "ts": self._ts_us(cycle),
                "pid": 1,
                "tid": self.track(track),
                "args": dict(args, cycle=cycle),
            }
        )

    def complete(
        self,
        track: str,
        name: str,
        start_cycle: int,
        end_cycle: int,
        **args,
    ) -> None:
        if end_cycle < start_cycle:
            raise ConfigurationError(
                f"trace span ends ({end_cycle}) before it starts "
                f"({start_cycle})"
            )
        self._emit(
            {
                "name": name,
                "ph": "X",
                "ts": self._ts_us(start_cycle),
                "dur": self._ts_us(end_cycle - start_cycle),
                "pid": 1,
                "tid": self.track(track),
                "args": dict(
                    args, start_cycle=start_cycle, end_cycle=end_cycle
                ),
            }
        )

    def counter(self, track: str, name: str, cycle: int, **values) -> None:
        self._emit(
            {
                "name": name,
                "ph": "C",
                "ts": self._ts_us(cycle),
                "pid": 1,
                "tid": self.track(track),
                "args": dict(values),
            }
        )

    # -- export --------------------------------------------------------------

    def to_dict(self) -> dict:
        """The Chrome trace-event JSON object (Perfetto-loadable)."""
        events = [
            {
                "name": "process_name",
                "ph": "M",
                "pid": 1,
                "args": {"name": "repro memory system"},
            }
        ]
        events.extend(self.events)
        other = {
            "clock_hz": self.clock_hz,
            "dropped_events": self.dropped_events,
        }
        if self.context is not None:
            other["trace"] = self.context.to_dict()
        return {
            "traceEvents": events,
            "displayTimeUnit": "ns",
            "otherData": other,
        }

    def write(self, path: str) -> None:
        with open(path, "w", encoding="utf-8") as handle:
            json.dump(self.to_dict(), handle)
            handle.write("\n")
