"""Application memory models: the paper's case studies and markets.

* :mod:`repro.apps.video` — frame geometry (PAL/NTSC, chroma formats),
* :mod:`repro.apps.mpeg2` — the MPEG2 decoder memory subsystem
  (Section 4.1 case study),
* :mod:`repro.apps.graphics` — 3D graphics frame stores (the laptop
  accelerator market of Section 2),
* :mod:`repro.apps.network` — network switch packet buffers (the high-end
  market: up to 128 Mbit, 512-bit interfaces),
* :mod:`repro.apps.storage` — disk / printer controller memory (embedded
  processor + program/data storage),
* :mod:`repro.apps.trends` — the processor-memory performance gap
  (Section 4.2),
* :mod:`repro.apps.iram` — merged processor+DRAM (IRAM) improvement
  factors,
* :mod:`repro.apps.markets` — Section 2's advisability rules of thumb and
  market size data.
"""

from repro.apps.video import (
    ChromaFormat,
    VideoStandard,
    FrameGeometry,
    PAL,
    NTSC,
    frame_bits,
)
from repro.apps.mpeg2 import MPEG2MemoryBudget, DecoderVariant
from repro.apps.graphics import GraphicsFrameStore
from repro.apps.network import SwitchBuffer
from repro.apps.storage import EmbeddedControllerMemory
from repro.apps.trends import TrendModel, PROCESSOR_TREND, DRAM_CORE_TREND
from repro.apps.iram import IRAMModel, AMATModel, CacheLevel
from repro.apps.markets import (
    MarketForecast,
    MarketSegment,
    SEGMENTS,
    advisability_score,
)
from repro.apps.pcmemory import (
    PC_GENERATIONS,
    PCGeneration,
    device_growth_rate,
    forced_overprovision_mbit,
    system_growth_rate,
)

__all__ = [
    "ChromaFormat",
    "VideoStandard",
    "FrameGeometry",
    "PAL",
    "NTSC",
    "frame_bits",
    "MPEG2MemoryBudget",
    "DecoderVariant",
    "GraphicsFrameStore",
    "SwitchBuffer",
    "EmbeddedControllerMemory",
    "TrendModel",
    "PROCESSOR_TREND",
    "DRAM_CORE_TREND",
    "IRAMModel",
    "AMATModel",
    "CacheLevel",
    "MarketForecast",
    "MarketSegment",
    "SEGMENTS",
    "advisability_score",
    "PC_GENERATIONS",
    "PCGeneration",
    "device_growth_rate",
    "forced_overprovision_mbit",
    "system_growth_rate",
]
