"""3D graphics accelerator frame store (paper Section 2).

"Embedded DRAM has already conquered a large part of the market for 3D
graphics accelerator chips for laptops ... Memory sizes of 8-32 Mbit are
likely to be required, mainly for frame storage."

The model sizes the frame store (color buffers, Z buffer, textures) and
its bandwidth (pixel fill with Z read-modify-write, texturing, display
refresh) for a resolution/depth/rate target — the numbers that decide
between an eDRAM frame store and external memory.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import ConfigurationError
from repro.units import MBIT


@dataclass(frozen=True)
class GraphicsFrameStore:
    """Memory requirements of a 3D accelerator.

    Attributes:
        width: Display width in pixels.
        height: Display height in pixels.
        color_bits: Bits per pixel of the color buffer.
        z_bits: Bits per pixel of the depth buffer (0 = no Z).
        double_buffered: Two color buffers for tear-free animation.
        texture_bits: Dedicated texture storage in bits.
        refresh_hz: Display refresh rate.
        frame_rate_hz: 3D rendering frame rate.
        depth_complexity: Average times each pixel is touched per frame
            (overdraw).
        texel_fetch_per_pixel: Texture bits fetched per rendered pixel
            (bilinear filtering fetches 4 texels).
    """

    width: int = 800
    height: int = 600
    color_bits: int = 16
    z_bits: int = 16
    double_buffered: bool = True
    texture_bits: int = 4 * MBIT
    refresh_hz: float = 75.0
    frame_rate_hz: float = 30.0
    depth_complexity: float = 2.5
    texel_fetch_per_pixel: int = 64

    def __post_init__(self) -> None:
        if self.width <= 0 or self.height <= 0:
            raise ConfigurationError("display dimensions must be positive")
        if self.color_bits <= 0:
            raise ConfigurationError("color depth must be positive")
        if self.z_bits < 0 or self.texture_bits < 0:
            raise ConfigurationError("buffer sizes must be non-negative")
        if self.refresh_hz <= 0 or self.frame_rate_hz <= 0:
            raise ConfigurationError("rates must be positive")
        if self.depth_complexity < 1:
            raise ConfigurationError("depth complexity must be >= 1")
        if self.texel_fetch_per_pixel < 0:
            raise ConfigurationError("texel fetch must be >= 0")

    @property
    def pixels(self) -> int:
        return self.width * self.height

    @property
    def color_buffer_bits(self) -> int:
        buffers = 2 if self.double_buffered else 1
        return buffers * self.pixels * self.color_bits

    @property
    def z_buffer_bits(self) -> int:
        return self.pixels * self.z_bits

    @property
    def total_bits(self) -> int:
        return self.color_buffer_bits + self.z_buffer_bits + self.texture_bits

    @property
    def total_mbit(self) -> float:
        return self.total_bits / MBIT

    # -- bandwidth --------------------------------------------------------

    def fill_bandwidth_bits_per_s(self) -> float:
        """Pixel fill: Z read + Z write + color write, times overdraw."""
        per_pixel = 2 * self.z_bits + self.color_bits
        return (
            per_pixel
            * self.pixels
            * self.depth_complexity
            * self.frame_rate_hz
        )

    def texture_bandwidth_bits_per_s(self) -> float:
        """Texel fetches during rasterization."""
        return (
            self.texel_fetch_per_pixel
            * self.pixels
            * self.depth_complexity
            * self.frame_rate_hz
        )

    def refresh_bandwidth_bits_per_s(self) -> float:
        """Display controller scan-out of the front buffer."""
        return self.pixels * self.color_bits * self.refresh_hz

    def total_bandwidth_bits_per_s(self) -> float:
        return (
            self.fill_bandwidth_bits_per_s()
            + self.texture_bandwidth_bits_per_s()
            + self.refresh_bandwidth_bits_per_s()
        )
