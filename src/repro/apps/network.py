"""Network switch packet buffer (paper Section 2).

"Network switching is the high-end market for edram: memory sizes of up
to 128 Mbit and interface widths up to 512 [bits] are required for
reading and writing data packets out of large buffers."

A shared-memory switch must write every arriving packet and read every
departing one: the buffer bandwidth is 2x the aggregate line rate, and
the buffer size is set by line rate times the worst tolerated congestion
delay.  Both scale with port count, which is why switches hit the top of
the eDRAM range.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import ConfigurationError
from repro.units import MBIT, ceil_div


@dataclass(frozen=True)
class SwitchBuffer:
    """Shared-memory switch buffering requirements.

    Attributes:
        n_ports: Switch ports.
        line_rate_bits_per_s: Rate of each port.
        buffering_s: Worst-case congestion delay to absorb (rule of thumb:
            one round-trip time of buffering per port).
        cell_bits: Internal cell/segment size (ATM cell = 424 bits;
            Ethernet switches segment frames similarly).
        speedup: Internal bandwidth overprovisioning factor over the
            strict 2x line rate (to cover segmentation waste and control
            traffic).
    """

    n_ports: int = 16
    line_rate_bits_per_s: float = 622e6  # OC-12
    buffering_s: float = 1e-3
    cell_bits: int = 424
    speedup: float = 1.2

    def __post_init__(self) -> None:
        if self.n_ports < 1:
            raise ConfigurationError("switch needs at least one port")
        if self.line_rate_bits_per_s <= 0:
            raise ConfigurationError("line rate must be positive")
        if self.buffering_s <= 0:
            raise ConfigurationError("buffering time must be positive")
        if self.cell_bits <= 0:
            raise ConfigurationError("cell size must be positive")
        if self.speedup < 1:
            raise ConfigurationError("speedup must be >= 1")

    @property
    def aggregate_rate_bits_per_s(self) -> float:
        return self.n_ports * self.line_rate_bits_per_s

    @property
    def buffer_bits(self) -> int:
        """Shared buffer size: aggregate rate times the congestion delay."""
        return int(round(self.aggregate_rate_bits_per_s * self.buffering_s))

    @property
    def buffer_mbit(self) -> float:
        return self.buffer_bits / MBIT

    def memory_bandwidth_bits_per_s(self) -> float:
        """Write + read every packet, with internal speedup."""
        return 2.0 * self.aggregate_rate_bits_per_s * self.speedup

    def interface_width_bits(self, clock_hz: float) -> int:
        """Memory interface width needed at a given clock.

        This is how the 512-bit figure arises: a 16-port OC-12 switch at
        143 MHz needs 2 * 16 * 622 Mb/s * 1.2 / 143 MHz = 167 bits, and a
        16-port gigabit or 4-port OC-48 box pushes past 256-512.
        """
        if clock_hz <= 0:
            raise ConfigurationError("clock must be positive")
        width = ceil_div(
            int(self.memory_bandwidth_bits_per_s()), int(clock_hz)
        )
        # Round up to the next power of two, the constructible widths.
        rounded = 1
        while rounded < width:
            rounded *= 2
        return rounded

    def cells_buffered(self) -> int:
        """Buffer capacity in cells."""
        return self.buffer_bits // self.cell_bits
