"""Disk / printer controller memory (paper Section 2).

"The three other main markets for edram are likely to be controllers for
hard-disk drives, controllers for printers, and network switches.  The
first two of these markets are driven mainly by system cost; the products
contain embedded processors, and the memory is used for storage of
programs as well as data.  Memory requirements are more modest than for
graphics controllers, both in terms of size and bandwidth."

The model splits the memory into program store, data structures, and a
media buffer (disk track cache or printer band buffer), and computes the
modest bandwidth that results — the point being that these applications
choose eDRAM for *cost* (package/pin/board savings), not bandwidth.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import ConfigurationError
from repro.units import MBIT, MBYTE


@dataclass(frozen=True)
class EmbeddedControllerMemory:
    """Memory requirements of an embedded (disk/printer) controller.

    Attributes:
        program_bits: Firmware image size.
        data_bits: Working data structures (cache directories, queues).
        media_buffer_bits: Track cache / band buffer.
        media_rate_bits_per_s: Media transfer rate (disk head rate or
            print engine consumption).
        host_rate_bits_per_s: Host interface rate.
        cpu_fetch_bits_per_s: Embedded-CPU instruction/data traffic that
            misses its caches.
    """

    program_bits: int = 2 * MBIT
    data_bits: int = 1 * MBIT
    media_buffer_bits: int = 4 * MBIT
    media_rate_bits_per_s: float = 160e6
    host_rate_bits_per_s: float = 264e6  # Ultra ATA/33
    cpu_fetch_bits_per_s: float = 40e6

    def __post_init__(self) -> None:
        for name in ("program_bits", "data_bits", "media_buffer_bits"):
            if getattr(self, name) < 0:
                raise ConfigurationError(f"{name} must be non-negative")
        for name in (
            "media_rate_bits_per_s",
            "host_rate_bits_per_s",
            "cpu_fetch_bits_per_s",
        ):
            if getattr(self, name) < 0:
                raise ConfigurationError(f"{name} must be non-negative")

    @property
    def total_bits(self) -> int:
        return self.program_bits + self.data_bits + self.media_buffer_bits

    @property
    def total_mbit(self) -> float:
        return self.total_bits / MBIT

    def total_bandwidth_bits_per_s(self) -> float:
        """Buffer traffic: media in + host out (each write+read) + CPU."""
        return (
            2.0 * self.media_rate_bits_per_s
            + 2.0 * self.host_rate_bits_per_s
            + self.cpu_fetch_bits_per_s
        )

    def interface_width_bits(self, clock_hz: float, efficiency: float = 0.6) -> int:
        """Interface width at a clock, derated by sustained efficiency."""
        if clock_hz <= 0:
            raise ConfigurationError("clock must be positive")
        if not 0 < efficiency <= 1:
            raise ConfigurationError("efficiency must be in (0, 1]")
        needed = self.total_bandwidth_bits_per_s() / (clock_hz * efficiency)
        width = 1
        while width < needed:
            width *= 2
        return max(16, width)
