"""Video frame geometry.

The paper's calibration identities (Section 4.1): "a PAL frame, for
example, in 4:2:0 format needs 4.75 Mbit, whereas an NTSC frame requires
3.96 Mbit" — both exact with 720-pixel active lines, 8-bit samples and
binary Mbit:

    PAL  720 x 576 x 12 bpp = 4,976,640 bits = 4.746 Mbit
    NTSC 720 x 480 x 12 bpp = 4,147,200 bits = 3.955 Mbit

"Standard commodity sizes are usually not a multiple of the frame memory
size", which is the granularity argument in its video form.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass

from repro.errors import ConfigurationError
from repro.units import MBIT


class ChromaFormat(enum.Enum):
    """Chroma subsampling: value = average bits per pixel at 8-bit depth."""

    YUV420 = 12
    YUV422 = 16
    YUV444 = 24

    @property
    def bits_per_pixel(self) -> int:
        return self.value


class VideoStandard(enum.Enum):
    """Broadcast scanning standards."""

    PAL = "PAL"
    NTSC = "NTSC"


@dataclass(frozen=True)
class FrameGeometry:
    """One video frame format.

    Attributes:
        standard: Scanning standard.
        width: Active pixels per line.
        height: Active lines per frame.
        frame_rate_hz: Frames per second.
        chroma: Chroma subsampling format.
    """

    standard: VideoStandard
    width: int
    height: int
    frame_rate_hz: float
    chroma: ChromaFormat = ChromaFormat.YUV420

    def __post_init__(self) -> None:
        if self.width <= 0 or self.height <= 0:
            raise ConfigurationError(
                f"frame dimensions must be positive: {self.width}x{self.height}"
            )
        if self.frame_rate_hz <= 0:
            raise ConfigurationError("frame rate must be positive")

    @property
    def pixels(self) -> int:
        return self.width * self.height

    @property
    def frame_bits(self) -> int:
        """Bits to store one frame."""
        return self.pixels * self.chroma.bits_per_pixel

    @property
    def frame_mbit(self) -> float:
        """Frame size in binary Mbit (the paper's unit)."""
        return self.frame_bits / MBIT

    @property
    def luma_bits(self) -> int:
        return self.pixels * 8

    @property
    def chroma_bits(self) -> int:
        return self.frame_bits - self.luma_bits

    @property
    def pixel_rate_hz(self) -> float:
        """Active pixels per second."""
        return self.pixels * self.frame_rate_hz

    def display_bandwidth_bits_per_s(self) -> float:
        """Bandwidth to scan the frame out once per frame period."""
        return self.frame_bits * self.frame_rate_hz

    def with_chroma(self, chroma: ChromaFormat) -> "FrameGeometry":
        """Same geometry at a different chroma format."""
        return FrameGeometry(
            standard=self.standard,
            width=self.width,
            height=self.height,
            frame_rate_hz=self.frame_rate_hz,
            chroma=chroma,
        )


#: PAL: 720 x 576 at 25 frames/s (50 fields/s interlaced).
PAL = FrameGeometry(
    standard=VideoStandard.PAL,
    width=720,
    height=576,
    frame_rate_hz=25.0,
)

#: NTSC: 720 x 480 at ~29.97 frames/s (59.94 fields/s interlaced).
NTSC = FrameGeometry(
    standard=VideoStandard.NTSC,
    width=720,
    height=480,
    frame_rate_hz=30000.0 / 1001.0,
)


def frame_bits(
    standard: VideoStandard, chroma: ChromaFormat = ChromaFormat.YUV420
) -> int:
    """Frame size in bits for a standard and chroma format."""
    base = PAL if standard is VideoStandard.PAL else NTSC
    return base.with_chroma(chroma).frame_bits
