"""MPEG2 video decoder memory subsystem (paper Section 4.1).

"An MPEG2 video decoding pipeline contains three large memory blocks: an
input buffer for storing the incoming compressed data stream, two full
frame buffers for bidirectional picture reconstruction, and an output
buffer for progressive-to-interlaced conversion.  Memory can be saved
only in the output buffer.  Specifically, about 3 Mbit can be saved at
the expense of doubling the throughput of the decoding pipeline as well
as the memory bandwidth of the motion compensation module."

The model computes, for a given frame geometry and decoder variant:

* the memory budget per block (input/VBV, two reference frames, output),
* whether it fits the 16-Mbit commodity size the standard was bent to
  accommodate,
* the sustained memory bandwidth by traffic component (reconstruction
  writes, motion-compensation reads, display reads, bitstream),
* and the 2x motion-compensation/pipeline penalty of the reduced-output
  variant.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass

from repro.errors import ConfigurationError
from repro.units import MBIT
from repro.apps.video import FrameGeometry, PAL


class DecoderVariant(enum.Enum):
    """Output-buffer sizing strategies."""

    #: Full output buffer: B-pictures reconstructed once into memory,
    #: display conversion reads from there.
    STANDARD = "standard"
    #: Reduced output buffer: B-pictures are decoded twice (once per
    #: field), trading ~3 Mbit of memory for 2x decode throughput and 2x
    #: motion-compensation bandwidth.
    REDUCED_OUTPUT = "reduced-output"


#: MP@ML video buffering verifier (VBV) size: 1,835,008 bits.
VBV_BITS_MP_ML = 1_835_008


@dataclass(frozen=True)
class GOPStructure:
    """Group-of-pictures composition.

    Attributes:
        i_fraction: Share of I pictures.
        p_fraction: Share of P pictures.
        b_fraction: Share of B pictures.
    """

    i_fraction: float = 1.0 / 12.0
    p_fraction: float = 3.0 / 12.0
    b_fraction: float = 8.0 / 12.0

    def __post_init__(self) -> None:
        total = self.i_fraction + self.p_fraction + self.b_fraction
        if abs(total - 1.0) > 1e-9:
            raise ConfigurationError(
                f"GOP fractions must sum to 1, got {total}"
            )
        if min(self.i_fraction, self.p_fraction, self.b_fraction) < 0:
            raise ConfigurationError("GOP fractions must be non-negative")


@dataclass(frozen=True)
class MPEG2MemoryBudget:
    """Memory and bandwidth budget of an MPEG2 decoder.

    Attributes:
        frame: Decoded frame geometry (PAL or NTSC, 4:2:0 for MP@ML).
        variant: Output-buffer strategy.
        bitrate_bits_per_s: Compressed stream rate (MP@ML max 15 Mbit/s).
        gop: Picture-type mix.
        mc_overfetch: Motion-compensation read amplification: half-pel
            interpolation needs (16+1)^2/16^2 per block, and burst/page
            granularity adds more.  1.6 is a representative planning
            figure.
        input_buffer_margin: Extra system buffering on top of the VBV
            (1.0 = exactly the VBV, which is what squeezing into 16 Mbit
            demands).
    """

    frame: FrameGeometry = PAL
    variant: DecoderVariant = DecoderVariant.STANDARD
    bitrate_bits_per_s: float = 15e6
    gop: GOPStructure = GOPStructure()
    mc_overfetch: float = 1.6
    input_buffer_margin: float = 1.0

    def __post_init__(self) -> None:
        if self.bitrate_bits_per_s <= 0:
            raise ConfigurationError("bitrate must be positive")
        if self.mc_overfetch < 1.0:
            raise ConfigurationError(
                f"MC overfetch must be >= 1, got {self.mc_overfetch}"
            )
        if self.input_buffer_margin < 1.0:
            raise ConfigurationError("input margin must be >= 1")

    # -- memory blocks -------------------------------------------------------

    @property
    def input_buffer_bits(self) -> int:
        """Compressed-stream buffer: VBV plus system margin."""
        return int(round(VBV_BITS_MP_ML * self.input_buffer_margin))

    @property
    def reference_frames_bits(self) -> int:
        """Two full frame stores for bidirectional prediction."""
        return 2 * self.frame.frame_bits

    @property
    def output_buffer_bits(self) -> int:
        """Progressive-to-interlaced conversion buffer.

        Standard variant: a reconstructed B-picture store plus display
        working space — about one frame (the B picture is written once
        and displayed field by field).  Reduced variant: the B picture is
        re-decoded per field, so only a small line/field working buffer
        remains (about 0.35 frame), saving about 3 Mbit on a PAL frame.
        """
        if self.variant is DecoderVariant.STANDARD:
            return self.frame.frame_bits
        return int(round(0.35 * self.frame.frame_bits))

    @property
    def total_bits(self) -> int:
        return (
            self.input_buffer_bits
            + self.reference_frames_bits
            + self.output_buffer_bits
        )

    @property
    def total_mbit(self) -> float:
        return self.total_bits / MBIT

    @property
    def saved_vs_standard_bits(self) -> int:
        """Memory saved relative to the standard variant."""
        standard = MPEG2MemoryBudget(
            frame=self.frame,
            variant=DecoderVariant.STANDARD,
            bitrate_bits_per_s=self.bitrate_bits_per_s,
            gop=self.gop,
            mc_overfetch=self.mc_overfetch,
            input_buffer_margin=self.input_buffer_margin,
        )
        return standard.total_bits - self.total_bits

    def fits_bits(self, capacity_bits: int) -> bool:
        """Whether the budget fits a given memory capacity."""
        if capacity_bits <= 0:
            raise ConfigurationError("capacity must be positive")
        return self.total_bits <= capacity_bits

    @property
    def fits_16_mbit(self) -> bool:
        """The commodity size the MPEG group bent the standard around."""
        return self.fits_bits(16 * MBIT)

    # -- bandwidth components --------------------------------------------------

    @property
    def decode_passes(self) -> float:
        """Average decode passes per displayed B picture."""
        return 2.0 if self.variant is DecoderVariant.REDUCED_OUTPUT else 1.0

    def reconstruction_write_bandwidth(self) -> float:
        """Writing reconstructed pictures to memory (bits/s).

        Reference (I/P) pictures are written once; B pictures are written
        ``decode_passes`` times (the reduced variant re-decodes them but
        writes only the current field, so the write volume stays one
        frame per displayed frame).
        """
        return self.frame.frame_bits * self.frame.frame_rate_hz

    def motion_compensation_read_bandwidth(self) -> float:
        """Prediction reads from the reference stores (bits/s).

        P pictures read one prediction, B pictures two, both amplified by
        the overfetch factor; the reduced variant multiplies the B share
        by the number of decode passes.
        """
        per_frame = self.frame.frame_bits
        predictions = (
            self.gop.p_fraction * 1.0
            + self.gop.b_fraction * 2.0 * self.decode_passes
        )
        return (
            predictions
            * per_frame
            * self.mc_overfetch
            * self.frame.frame_rate_hz
        )

    def display_read_bandwidth(self) -> float:
        """Scanning pictures out for display (bits/s)."""
        return self.frame.frame_bits * self.frame.frame_rate_hz

    def bitstream_bandwidth(self) -> float:
        """Writing then reading the compressed stream (bits/s)."""
        return 2.0 * self.bitrate_bits_per_s

    def total_bandwidth_bits_per_s(self) -> float:
        return (
            self.reconstruction_write_bandwidth()
            + self.motion_compensation_read_bandwidth()
            + self.display_read_bandwidth()
            + self.bitstream_bandwidth()
        )

    def pipeline_throughput_factor(self) -> float:
        """Decode-pipeline throughput relative to the standard variant.

        The reduced-output variant must decode B pictures twice within
        the same display interval: 2x, the paper's stated cost.
        """
        return self.decode_passes
