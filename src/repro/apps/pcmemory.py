"""PC main-memory granularity: the Section 4 mismatch.

"The size of PC memory systems has grown by only half the rate of single
DRAM devices for many years.  As the growth of bandwidth requirements
has kept pace with that of the memory systems, the interface width of
DRAMs should thus have been growing as fast as the size of single DRAM
devices.  This has not happened for packaging reasons.  Instead
granularity has decreased, often inducing unnecessary but unavoidable
extra memory."

The model: a PC memory bus of fixed width (64 bits in the era) must be
populated by whole devices; the minimum upgrade increment is therefore
``bus_width / device_width * device_capacity``.  As device capacity
quadruples per generation while device width only doubles at best, the
increment grows relative to the system size — the "unnecessary but
unavoidable extra memory".
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import ConfigurationError
from repro.units import MBIT, ceil_div


@dataclass(frozen=True)
class PCGeneration:
    """One PC-platform memory generation.

    Attributes:
        year: Platform year.
        device_capacity_mbit: Mainstream DRAM device capacity.
        device_width_bits: Mainstream device data width.
        bus_width_bits: Platform memory-bus width.
        typical_system_mbyte: Typical installed memory.
    """

    year: int
    device_capacity_mbit: float
    device_width_bits: int
    bus_width_bits: int
    typical_system_mbyte: int

    def __post_init__(self) -> None:
        if self.device_capacity_mbit <= 0:
            raise ConfigurationError("device capacity must be positive")
        if self.device_width_bits <= 0 or self.bus_width_bits <= 0:
            raise ConfigurationError("widths must be positive")
        if self.bus_width_bits % self.device_width_bits != 0:
            raise ConfigurationError(
                "bus width must be a device-width multiple"
            )
        if self.typical_system_mbyte <= 0:
            raise ConfigurationError("system size must be positive")

    @property
    def devices_per_rank(self) -> int:
        """Devices needed to populate the bus once."""
        return self.bus_width_bits // self.device_width_bits

    @property
    def increment_mbit(self) -> int:
        """Minimum memory increment (one rank)."""
        return int(round(self.devices_per_rank * self.device_capacity_mbit))

    @property
    def increment_fraction_of_system(self) -> float:
        """Increment relative to the typical system — the granularity
        pain: small is flexible, large forces over-buying."""
        system_mbit = self.typical_system_mbyte * 8
        return self.increment_mbit / system_mbit


#: Mid-80s to late-90s PC platforms.  Device capacity grows 256x over
#: the span (59 %/yr) while typical installed memory grows 16x (26 %/yr)
#: — the paper's "half the rate" in compound-growth terms.  Device width
#: lags capacity badly (x1 -> x16 while capacity went 0.25 -> 64 Mbit),
#: which is exactly the packaging limitation the paper blames.
PC_GENERATIONS: tuple = (
    PCGeneration(
        year=1986,
        device_capacity_mbit=0.25,
        device_width_bits=1,
        bus_width_bits=16,
        typical_system_mbyte=1,
    ),
    PCGeneration(
        year=1990,
        device_capacity_mbit=1,
        device_width_bits=4,
        bus_width_bits=32,
        typical_system_mbyte=2,
    ),
    PCGeneration(
        year=1994,
        device_capacity_mbit=16,
        device_width_bits=8,
        bus_width_bits=64,
        typical_system_mbyte=8,
    ),
    PCGeneration(
        year=1998,
        device_capacity_mbit=64,
        device_width_bits=16,
        bus_width_bits=64,
        typical_system_mbyte=16,
    ),
)


def device_growth_rate(generations: tuple = PC_GENERATIONS) -> float:
    """Compound annual growth of device capacity."""
    first, last = generations[0], generations[-1]
    years = last.year - first.year
    if years <= 0:
        raise ConfigurationError("need increasing years")
    ratio = last.device_capacity_mbit / first.device_capacity_mbit
    return ratio ** (1.0 / years) - 1.0


def system_growth_rate(generations: tuple = PC_GENERATIONS) -> float:
    """Compound annual growth of installed system memory."""
    first, last = generations[0], generations[-1]
    years = last.year - first.year
    if years <= 0:
        raise ConfigurationError("need increasing years")
    ratio = last.typical_system_mbyte / first.typical_system_mbyte
    return ratio ** (1.0 / years) - 1.0


def forced_overprovision_mbit(
    wanted_mbit: float, generation: PCGeneration
) -> float:
    """Extra memory bought because upgrades come in whole ranks."""
    if wanted_mbit <= 0:
        raise ConfigurationError("wanted size must be positive")
    ranks = ceil_div(int(wanted_mbit), generation.increment_mbit)
    return ranks * generation.increment_mbit - wanted_mbit
