"""Technology trend engine: the processor-memory performance gap.

Paper, Section 4.2: "There is an increasing gap between processor and
DRAM speed: processor performance increases by 60% per year in contrast
to only a 10% improvement in the DRAM core."  And Section 4: "the row and
column access times in a DRAM core have declined by roughly only 10%/year
whereas the peak device memory bandwidth has increased over the last
couple of years by two orders of magnitude."

A :class:`TrendModel` is a compound-growth curve anchored at a base year;
the module provides the canonical processor / DRAM-core / DRAM-bandwidth
trends, gap computation, and doubling-time analytics.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from repro.errors import ConfigurationError


@dataclass(frozen=True)
class TrendModel:
    """Compound annual growth from a base year.

    Attributes:
        name: What is growing.
        base_year: Anchor year.
        base_value: Value at the anchor.
        annual_growth: Fractional growth per year (0.60 = +60 %/yr).
            Negative values model decline (access *times* shrinking).
    """

    name: str
    base_year: int
    base_value: float
    annual_growth: float

    def __post_init__(self) -> None:
        if self.base_value <= 0:
            raise ConfigurationError(
                f"{self.name}: base value must be positive"
            )
        if self.annual_growth <= -1:
            raise ConfigurationError(
                f"{self.name}: growth must be > -100 %/yr"
            )

    def value(self, year: float) -> float:
        """Value of the metric at ``year``."""
        return self.base_value * (1 + self.annual_growth) ** (
            year - self.base_year
        )

    def ratio(self, year: float) -> float:
        """Growth factor since the base year."""
        return self.value(year) / self.base_value

    def doubling_time_years(self) -> float:
        """Years to double (or halve, for negative growth)."""
        if self.annual_growth == 0:
            return math.inf
        return math.log(2) / abs(math.log(1 + self.annual_growth))

    def years_to_factor(self, factor: float) -> float:
        """Years until the metric grows by ``factor``."""
        if factor <= 0:
            raise ConfigurationError("factor must be positive")
        if self.annual_growth == 0:
            return math.inf if factor != 1 else 0.0
        return math.log(factor) / math.log(1 + self.annual_growth)


#: CPU performance: +60 %/yr (Hennessy-Patterson, as cited by the paper).
PROCESSOR_TREND = TrendModel(
    name="processor performance",
    base_year=1980,
    base_value=1.0,
    annual_growth=0.60,
)

#: DRAM core speed: +10 %/yr (row/column access times -10 %/yr).
DRAM_CORE_TREND = TrendModel(
    name="DRAM core performance",
    base_year=1980,
    base_value=1.0,
    annual_growth=0.10,
)

#: DRAM peak device bandwidth: interface tricks (synchronous protocols,
#: prefetch, banking) delivered two orders of magnitude over roughly a
#: decade, i.e. about +60 %/yr at the device interface.
DRAM_BANDWIDTH_TREND = TrendModel(
    name="DRAM device peak bandwidth",
    base_year=1988,
    base_value=1.0,
    annual_growth=0.60,
)


def performance_gap(
    year: float,
    cpu: TrendModel = PROCESSOR_TREND,
    dram: TrendModel = DRAM_CORE_TREND,
) -> float:
    """Processor/DRAM-core performance ratio at ``year``.

    With the default trends the gap grows by 1.60/1.10 ≈ 1.45x per year.
    """
    return cpu.value(year) / dram.value(year)


def gap_growth_per_year(
    cpu: TrendModel = PROCESSOR_TREND,
    dram: TrendModel = DRAM_CORE_TREND,
) -> float:
    """Annual growth factor of the gap itself."""
    return (1 + cpu.annual_growth) / (1 + dram.annual_growth)
