"""IRAM: merging a microprocessor with DRAM (paper Section 4.2).

"Merging a microprocessor with DRAM can reduce the latency by a factor of
5-10, increase the bandwidth by a factor of 50 to 100 and improve the
energy efficiency by a factor of 2 to 4." (Citing Patterson et al.,
ISSCC'97.)

The module grounds those factors in a cache-hierarchy model: an
:class:`AMATModel` computes average memory access time over cache levels,
and :class:`IRAMModel` applies the merge — main-memory latency divided by
the latency factor, bandwidth multiplied by the width factor, energy per
access divided by the efficiency factor — and reports the end-to-end
speedup for a workload's miss profile.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import ConfigurationError


@dataclass(frozen=True)
class CacheLevel:
    """One cache level in the hierarchy.

    Attributes:
        name: Level name (L1, L2, ...).
        hit_time_ns: Access time on a hit.
        miss_rate: Local miss rate (misses per access *to this level*).
        energy_per_access_nj: Energy per access.
    """

    name: str
    hit_time_ns: float
    miss_rate: float
    energy_per_access_nj: float = 1.0

    def __post_init__(self) -> None:
        if self.hit_time_ns <= 0:
            raise ConfigurationError(f"{self.name}: hit time must be positive")
        if not 0 <= self.miss_rate <= 1:
            raise ConfigurationError(
                f"{self.name}: miss rate must be in [0, 1]"
            )
        if self.energy_per_access_nj < 0:
            raise ConfigurationError(f"{self.name}: energy must be >= 0")


@dataclass(frozen=True)
class AMATModel:
    """Average memory access time over a cache hierarchy.

    Attributes:
        levels: Cache levels, fastest first.
        memory_latency_ns: Main-memory access latency behind the last
            level.
        memory_energy_nj: Energy of one main-memory access.
    """

    levels: tuple
    memory_latency_ns: float
    memory_energy_nj: float = 50.0

    def __post_init__(self) -> None:
        if not self.levels:
            raise ConfigurationError("need at least one cache level")
        if self.memory_latency_ns <= 0:
            raise ConfigurationError("memory latency must be positive")
        if self.memory_energy_nj < 0:
            raise ConfigurationError("memory energy must be >= 0")

    def amat_ns(self) -> float:
        """Average memory access time per CPU reference."""
        total = 0.0
        reach = 1.0  # fraction of references reaching this level
        for level in self.levels:
            total += reach * level.hit_time_ns
            reach *= level.miss_rate
        return total + reach * self.memory_latency_ns

    def memory_reference_fraction(self) -> float:
        """Fraction of references that reach main memory."""
        reach = 1.0
        for level in self.levels:
            reach *= level.miss_rate
        return reach

    def energy_per_reference_nj(self) -> float:
        total = 0.0
        reach = 1.0
        for level in self.levels:
            total += reach * level.energy_per_access_nj
            reach *= level.miss_rate
        return total + reach * self.memory_energy_nj

    def with_memory(
        self, latency_ns: float, energy_nj: float
    ) -> "AMATModel":
        """Same hierarchy over a different main memory."""
        return AMATModel(
            levels=self.levels,
            memory_latency_ns=latency_ns,
            memory_energy_nj=energy_nj,
        )


#: A late-90s desktop hierarchy: 2-level cache over 60 ns page-miss DRAM.
DESKTOP_HIERARCHY = AMATModel(
    levels=(
        CacheLevel(name="L1", hit_time_ns=2.0, miss_rate=0.05,
                   energy_per_access_nj=0.5),
        CacheLevel(name="L2", hit_time_ns=10.0, miss_rate=0.30,
                   energy_per_access_nj=5.0),
    ),
    memory_latency_ns=120.0,
    memory_energy_nj=60.0,
)


@dataclass(frozen=True)
class IRAMModel:
    """The processor-in-DRAM merge, as improvement factors.

    Attributes:
        latency_factor: Main-memory latency reduction (paper: 5-10).
        bandwidth_factor: Bandwidth increase (paper: 50-100).
        energy_factor: Energy-efficiency improvement (paper: 2-4).
    """

    latency_factor: float = 7.5
    bandwidth_factor: float = 75.0
    energy_factor: float = 3.0

    def __post_init__(self) -> None:
        for name in ("latency_factor", "bandwidth_factor", "energy_factor"):
            if getattr(self, name) < 1:
                raise ConfigurationError(f"{name} must be >= 1")

    def within_paper_ranges(self) -> bool:
        """Whether the factors sit inside the paper's quoted ranges."""
        return (
            5 <= self.latency_factor <= 10
            and 50 <= self.bandwidth_factor <= 100
            and 2 <= self.energy_factor <= 4
        )

    def merged_hierarchy(self, base: AMATModel) -> AMATModel:
        """Apply the merge to a hierarchy's main memory."""
        return base.with_memory(
            latency_ns=base.memory_latency_ns / self.latency_factor,
            energy_nj=base.memory_energy_nj / self.energy_factor,
        )

    def amat_speedup(self, base: AMATModel) -> float:
        """End-to-end AMAT improvement for the workload the hierarchy
        encodes.  Cache hits are unaffected, so the speedup is diluted by
        the hit fraction — large for memory-bound workloads, modest for
        cache-friendly ones."""
        merged = self.merged_hierarchy(base)
        return base.amat_ns() / merged.amat_ns()

    def energy_improvement(self, base: AMATModel) -> float:
        """Per-reference energy improvement."""
        merged = self.merged_hierarchy(base)
        return base.energy_per_reference_nj() / merged.energy_per_reference_nj()

    def bandwidth_bits_per_s(
        self, base_bandwidth_bits_per_s: float
    ) -> float:
        """Deliverable memory bandwidth after the merge."""
        if base_bandwidth_bits_per_s <= 0:
            raise ConfigurationError("base bandwidth must be positive")
        return base_bandwidth_bits_per_s * self.bandwidth_factor
