"""Market segments and the Section 2 advisability rules of thumb.

"It is not possible to give a simple formula for the advisability of
edram in a specific project.  However, some rules of thumb can be given:
the product volume and product lifetime are usually high; either the
memory content is high enough to justify the higher DRAM process costs,
or edram is required for bandwidth or other reasons; other things being
equal, edram will find its way first into portable applications."

:func:`advisability_score` encodes exactly those rules as a transparent
weighted checklist, and :data:`SEGMENTS` records the paper's market
survey (graphics, disk, printer, switches, PC main memory) with its
stated characteristics, including the prediction that eDRAM will *not*
capture PC main memory ("the need for flexibility and an upgrade path is
too strong").
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import ConfigurationError
from repro.units import MBIT


@dataclass(frozen=True)
class MarketSegment:
    """One application market from the paper's survey.

    Attributes:
        name: Segment name.
        memory_mbit_range: (min, max) memory sizes required.
        interface_width_range: (min, max) interface widths in bits.
        volume_per_year: Typical unit volume.
        portable: Battery-powered segment.
        needs_upgrade_path: Whether field memory expansion is expected
            (the eDRAM killer).
        driver: What drives the choice: "cost", "bandwidth", "power".
    """

    name: str
    memory_mbit_range: tuple
    interface_width_range: tuple
    volume_per_year: int
    portable: bool
    needs_upgrade_path: bool
    driver: str

    def __post_init__(self) -> None:
        lo, hi = self.memory_mbit_range
        if not 0 < lo <= hi:
            raise ConfigurationError(f"{self.name}: bad memory range")
        wlo, whi = self.interface_width_range
        if not 0 < wlo <= whi:
            raise ConfigurationError(f"{self.name}: bad width range")
        if self.volume_per_year < 0:
            raise ConfigurationError(f"{self.name}: bad volume")
        if self.driver not in ("cost", "bandwidth", "power"):
            raise ConfigurationError(
                f"{self.name}: driver must be cost/bandwidth/power"
            )


#: The paper's market survey, Section 2.
SEGMENTS: tuple = (
    MarketSegment(
        name="3D graphics (laptop)",
        memory_mbit_range=(8, 32),
        interface_width_range=(128, 256),
        volume_per_year=5_000_000,
        portable=True,
        needs_upgrade_path=False,
        driver="power",
    ),
    MarketSegment(
        name="3D graphics (desktop/games)",
        memory_mbit_range=(8, 32),
        interface_width_range=(128, 512),
        volume_per_year=20_000_000,
        portable=False,
        needs_upgrade_path=False,
        driver="bandwidth",
    ),
    MarketSegment(
        name="hard-disk controller",
        memory_mbit_range=(2, 16),
        interface_width_range=(16, 64),
        volume_per_year=50_000_000,
        portable=False,
        needs_upgrade_path=False,
        driver="cost",
    ),
    MarketSegment(
        name="printer controller",
        memory_mbit_range=(4, 32),
        interface_width_range=(16, 64),
        volume_per_year=15_000_000,
        portable=False,
        needs_upgrade_path=False,
        driver="cost",
    ),
    MarketSegment(
        name="network switch",
        memory_mbit_range=(32, 128),
        interface_width_range=(256, 512),
        volume_per_year=500_000,
        portable=False,
        needs_upgrade_path=False,
        driver="bandwidth",
    ),
    MarketSegment(
        name="PC main memory",
        memory_mbit_range=(64, 512),
        interface_width_range=(64, 64),
        volume_per_year=100_000_000,
        portable=False,
        needs_upgrade_path=True,
        driver="cost",
    ),
)


def advisability_score(
    volume_per_year: int,
    product_lifetime_years: float,
    memory_mbit: float,
    required_bandwidth_gbyte_per_s: float,
    portable: bool,
    needs_upgrade_path: bool,
    memory_known_at_design_time: bool = True,
) -> float:
    """Section 2's rules of thumb as a transparent score in [0, 1].

    The score is a weighted checklist, not a regression — mirroring the
    paper's refusal to give "a simple formula" while still ordering
    projects sensibly.  An upgrade-path requirement or unknown memory
    size vetoes the project (score 0), exactly as the paper argues for
    PC main memory.

    Args:
        volume_per_year: Expected production volume.
        product_lifetime_years: Market lifetime of the product.
        memory_mbit: Embedded memory content.
        required_bandwidth_gbyte_per_s: Sustained bandwidth need.
        portable: Battery-powered product.
        needs_upgrade_path: Field memory expansion required.
        memory_known_at_design_time: The designer knows the exact
            requirement ("later extensions are not possible").
    """
    if volume_per_year < 0:
        raise ConfigurationError("volume must be >= 0")
    if product_lifetime_years <= 0:
        raise ConfigurationError("lifetime must be positive")
    if memory_mbit <= 0:
        raise ConfigurationError("memory content must be positive")
    if required_bandwidth_gbyte_per_s < 0:
        raise ConfigurationError("bandwidth must be >= 0")
    if needs_upgrade_path or not memory_known_at_design_time:
        return 0.0
    score = 0.0
    # High volume amortizes NRE and justifies a dedicated part.
    if volume_per_year >= 10_000_000:
        score += 0.30
    elif volume_per_year >= 1_000_000:
        score += 0.20
    elif volume_per_year >= 100_000:
        score += 0.10
    # Long lifetime mitigates second-sourcing and requalification risk.
    if product_lifetime_years >= 3:
        score += 0.15
    elif product_lifetime_years >= 1.5:
        score += 0.08
    # Memory content high enough to justify DRAM process costs...
    if memory_mbit >= 16:
        score += 0.25
    elif memory_mbit >= 4:
        score += 0.15
    # ...or eDRAM is required for bandwidth reasons.
    if required_bandwidth_gbyte_per_s >= 1.0:
        score += 0.20
    elif required_bandwidth_gbyte_per_s >= 0.4:
        score += 0.10
    # Portable applications benefit first (power).
    if portable:
        score += 0.10
    return min(1.0, score)


@dataclass(frozen=True)
class MarketForecast:
    """The paper's eDRAM market forecast.

    Section 2: the eDRAM market was "estimated at [several hundred] $m
    in 1997, rising to 4-8bn in 2001".  Growing a few-hundred-million
    1997 market to $4-8bn by 2001 requires ~70-100% compound annual
    growth; the forecast object makes that arithmetic explicit and
    checkable.

    Attributes:
        base_year: Anchor year (1997).
        base_value_usd: Market size at the anchor.
        annual_growth: Compound annual growth rate.
    """

    base_year: int = 1997
    base_value_usd: float = 500e6
    annual_growth: float = 0.85

    def __post_init__(self) -> None:
        if self.base_value_usd <= 0:
            raise ConfigurationError("market size must be positive")
        if self.annual_growth <= -1:
            raise ConfigurationError("growth must be > -100%/yr")

    def value_usd(self, year: int) -> float:
        """Forecast market size at ``year``."""
        return self.base_value_usd * (1 + self.annual_growth) ** (
            year - self.base_year
        )

    def within_paper_range_2001(self) -> bool:
        """Whether the 2001 forecast lands in the paper's $4-8bn band."""
        forecast = self.value_usd(2001)
        return 4e9 <= forecast <= 8e9


def rank_segments(segments: tuple = SEGMENTS) -> list:
    """Rank the paper's segments by advisability (highest first)."""
    ranked = []
    for segment in segments:
        lo, hi = segment.memory_mbit_range
        score = advisability_score(
            volume_per_year=segment.volume_per_year,
            product_lifetime_years=2.0,
            memory_mbit=(lo + hi) / 2,
            required_bandwidth_gbyte_per_s=(
                1.5 if segment.driver == "bandwidth" else 0.3
            ),
            portable=segment.portable,
            needs_upgrade_path=segment.needs_upgrade_path,
        )
        ranked.append((segment, score))
    ranked.sort(key=lambda pair: pair[1], reverse=True)
    return ranked
