"""CLI for the exploration service: `repro serve` and `repro client`.

The server side is one blocking command (``repro serve``).  The client
side mirrors the HTTP surface one subcommand per endpoint and is
forwarded from the root CLI (``repro client submit ...``) or run
directly as ``python -m repro.serve ...``; see docs/SERVICE.md for a
walkthrough.
"""

from __future__ import annotations

import argparse
import json
import sys

from repro.errors import ReproError


def add_serve_arguments(parser: argparse.ArgumentParser) -> None:
    parser.add_argument("--host", default="127.0.0.1")
    parser.add_argument("--port", type=int, default=8765)
    parser.add_argument(
        "--cache-size",
        type=int,
        default=256,
        help="in-memory result-cache entries (LRU beyond this)",
    )
    parser.add_argument(
        "--cache-path",
        default=None,
        help="JSONL spill file; results survive restarts",
    )
    parser.add_argument(
        "--workers",
        type=int,
        default=4,
        help="job executor threads",
    )


def run_serve(args: argparse.Namespace) -> int:
    from repro.serve.server import run_server

    def ready(address) -> None:
        host, port = address
        print(f"repro serve listening on http://{host}:{port}", flush=True)

    run_server(
        host=args.host,
        port=args.port,
        cache_size=args.cache_size,
        cache_path=args.cache_path,
        max_workers=args.workers,
        ready=ready,
    )
    return 0


def _load_job(args: argparse.Namespace) -> dict:
    if args.job is not None:
        return json.loads(args.job)
    if args.job_file == "-":
        return json.load(sys.stdin)
    with open(args.job_file, "r", encoding="utf-8") as handle:
        return json.load(handle)


def _emit(document: dict, out: str | None) -> None:
    text = json.dumps(document, indent=2, sort_keys=True)
    if out:
        with open(out, "w", encoding="utf-8") as handle:
            handle.write(text + "\n")
    else:
        print(text)


def build_client_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro client",
        description="client for a running `repro serve` instance",
    )
    parser.add_argument(
        "--url",
        default="http://127.0.0.1:8765",
        help="server base URL",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    submit = sub.add_parser("submit", help="submit a job document")
    group = submit.add_mutually_exclusive_group(required=True)
    group.add_argument("--job", help="inline JSON job document")
    group.add_argument(
        "--job-file", help="path to a JSON job document ('-' = stdin)"
    )
    submit.add_argument(
        "--wait",
        action="store_true",
        help="block until the job finishes and print its result",
    )
    submit.add_argument(
        "--timeout-s", type=float, default=120.0, help="--wait deadline"
    )
    submit.add_argument("--out", help="write the response JSON here")

    for name, help_text in (
        ("status", "job status"),
        ("result", "job result document"),
        ("report", "job run report (markdown inside JSON)"),
        ("events", "stream the job's events until it finishes"),
    ):
        command = sub.add_parser(name, help=help_text)
        command.add_argument("job_id")
        if name != "events":
            command.add_argument("--out", help="write the response here")

    sub.add_parser("stats", help="service counters and cache stats")
    sub.add_parser("healthz", help="liveness check")
    return parser


def client_main(argv=None) -> int:
    from repro.serve.client import ServeClient, ServeClientError

    args = build_client_parser().parse_args(argv)
    client = ServeClient(args.url)
    try:
        if args.command == "submit":
            response = client.submit(_load_job(args))
            if args.wait:
                job_id = response["job_id"]
                final = client.wait(job_id, timeout_s=args.timeout_s)
                if final["status"] == "failed":
                    _emit(final, args.out)
                    return 2
                response = client.result(job_id)
            _emit(response, args.out)
        elif args.command == "status":
            _emit(client.status(args.job_id), args.out)
        elif args.command == "result":
            _emit(client.result(args.job_id), args.out)
        elif args.command == "report":
            _emit(client.report(args.job_id), args.out)
        elif args.command == "events":
            for event in client.events(args.job_id):
                print(json.dumps(event), flush=True)
        elif args.command == "stats":
            _emit(client.stats(), None)
        elif args.command == "healthz":
            _emit(client.healthz(), None)
    except ServeClientError as error:
        print(f"error: {error}", file=sys.stderr)
        return 2
    except (ConnectionError, OSError) as error:
        print(f"error: cannot reach {args.url}: {error}", file=sys.stderr)
        return 2
    except ReproError as error:
        print(f"error: {error}", file=sys.stderr)
        return 2
    return 0


def main(argv=None) -> int:
    """`python -m repro.serve` entry: `serve` or any client command."""
    argv = list(sys.argv[1:] if argv is None else argv)
    if argv and argv[0] == "serve":
        parser = argparse.ArgumentParser(prog="python -m repro.serve serve")
        add_serve_arguments(parser)
        return run_serve(parser.parse_args(argv[1:]))
    return client_main(argv)


if __name__ == "__main__":
    raise SystemExit(main())
