"""CLI for the exploration service: `repro serve` and `repro client`.

The server side is one blocking command (``repro serve``).  The client
side mirrors the HTTP surface one subcommand per endpoint and is
forwarded from the root CLI (``repro client submit ...``) or run
directly as ``python -m repro.serve ...``; see docs/SERVICE.md for a
walkthrough.
"""

from __future__ import annotations

import argparse
import json
import sys

from repro.errors import ReproError


def add_serve_arguments(parser: argparse.ArgumentParser) -> None:
    parser.add_argument("--host", default="127.0.0.1")
    parser.add_argument("--port", type=int, default=8765)
    parser.add_argument(
        "--cache-size",
        type=int,
        default=256,
        help="in-memory result-cache entries (LRU beyond this)",
    )
    parser.add_argument(
        "--cache-path",
        default=None,
        help="JSONL spill file; results survive restarts",
    )
    parser.add_argument(
        "--workers",
        type=int,
        default=4,
        help="job executor threads",
    )
    parser.add_argument(
        "--max-depth",
        type=int,
        default=None,
        help="admission limit: queued+running jobs beyond this are "
        "shed with 429 (default 64; see docs/SERVICE.md)",
    )
    parser.add_argument(
        "--per-workload",
        type=int,
        default=None,
        help="per-workload admission limit (default: no per-workload "
        "cap)",
    )
    parser.add_argument(
        "--breaker-threshold",
        type=int,
        default=None,
        help="consecutive failures that open a workload's circuit "
        "breaker (default 5; 0 disables breakers)",
    )
    parser.add_argument(
        "--breaker-cooldown-s",
        type=float,
        default=None,
        help="seconds an open breaker waits before a half-open probe "
        "(default 5)",
    )
    parser.add_argument(
        "--no-resilience",
        action="store_true",
        help="disable admission control and circuit breakers entirely",
    )
    parser.add_argument(
        "--journal-dir",
        default=None,
        help="directory for per-job sweep checkpoints: cancelled jobs "
        "leave a resumable journal here",
    )
    parser.add_argument(
        "--no-tracing",
        action="store_true",
        help="do not mint trace contexts at job submission (ledger "
        "events lose their trace_id/span_id stamps)",
    )


def _resilience_from_args(args: argparse.Namespace):
    """False to disable, None for defaults, or an explicit config."""
    if args.no_resilience:
        return False
    overrides = {}
    if args.max_depth is not None:
        overrides["max_depth"] = args.max_depth
    if args.per_workload is not None:
        overrides["per_workload"] = args.per_workload
    if args.breaker_threshold is not None:
        overrides["breaker_threshold"] = args.breaker_threshold
    if args.breaker_cooldown_s is not None:
        overrides["breaker_cooldown_s"] = args.breaker_cooldown_s
    if not overrides:
        return None
    from repro.serve.resilience import ResilienceConfig

    return ResilienceConfig(**overrides)


def run_serve(args: argparse.Namespace) -> int:
    from repro.serve.server import run_server

    def ready(address) -> None:
        host, port = address
        print(f"repro serve listening on http://{host}:{port}", flush=True)

    run_server(
        host=args.host,
        port=args.port,
        cache_size=args.cache_size,
        cache_path=args.cache_path,
        max_workers=args.workers,
        ready=ready,
        resilience=_resilience_from_args(args),
        journal_dir=args.journal_dir,
        tracing=not args.no_tracing,
    )
    return 0


def _load_job(args: argparse.Namespace) -> dict:
    if args.job is not None:
        return json.loads(args.job)
    if args.job_file == "-":
        return json.load(sys.stdin)
    with open(args.job_file, "r", encoding="utf-8") as handle:
        return json.load(handle)


def _emit(document: dict, out: str | None) -> None:
    text = json.dumps(document, indent=2, sort_keys=True)
    if out:
        with open(out, "w", encoding="utf-8") as handle:
            handle.write(text + "\n")
    else:
        print(text)


def build_client_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro client",
        description="client for a running `repro serve` instance",
    )
    parser.add_argument(
        "--url",
        default="http://127.0.0.1:8765",
        help="server base URL",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    submit = sub.add_parser("submit", help="submit a job document")
    group = submit.add_mutually_exclusive_group(required=True)
    group.add_argument("--job", help="inline JSON job document")
    group.add_argument(
        "--job-file", help="path to a JSON job document ('-' = stdin)"
    )
    submit.add_argument(
        "--wait",
        action="store_true",
        help="block until the job finishes and print its result",
    )
    submit.add_argument(
        "--timeout-s", type=float, default=120.0, help="--wait deadline"
    )
    submit.add_argument("--out", help="write the response JSON here")

    for name, help_text in (
        ("status", "job status"),
        ("result", "job result document"),
        ("report", "job run report (markdown inside JSON)"),
        ("events", "stream the job's events until it finishes"),
        ("cancel", "request cooperative cancellation of a running job"),
    ):
        command = sub.add_parser(name, help=help_text)
        command.add_argument("job_id")
        if name != "events":
            command.add_argument("--out", help="write the response here")

    sub.add_parser("stats", help="service counters and cache stats")
    sub.add_parser(
        "metrics",
        help="Prometheus exposition text from GET /v1/metrics",
    )
    sub.add_parser("healthz", help="liveness check")
    sub.add_parser(
        "readyz",
        help="readiness / overload snapshot (admission depth, "
        "breaker states)",
    )
    return parser


def client_main(argv=None) -> int:
    from repro.serve.client import ServeClient, ServeClientError

    args = build_client_parser().parse_args(argv)
    client = ServeClient(args.url)
    try:
        if args.command == "submit":
            response = client.submit(_load_job(args))
            if args.wait:
                job_id = response["job_id"]
                final = client.wait(job_id, timeout_s=args.timeout_s)
                if final["status"] == "failed":
                    _emit(final, args.out)
                    return 2
                response = client.result(job_id)
            _emit(response, args.out)
        elif args.command == "status":
            _emit(client.status(args.job_id), args.out)
        elif args.command == "result":
            _emit(client.result(args.job_id), args.out)
        elif args.command == "report":
            _emit(client.report(args.job_id), args.out)
        elif args.command == "events":
            for event in client.events(args.job_id):
                print(json.dumps(event), flush=True)
        elif args.command == "cancel":
            _emit(client.cancel(args.job_id), args.out)
        elif args.command == "stats":
            _emit(client.stats(), None)
        elif args.command == "metrics":
            sys.stdout.write(client.metrics_text())
        elif args.command == "healthz":
            _emit(client.healthz(), None)
        elif args.command == "readyz":
            _emit(client.readyz(), None)
    except ServeClientError as error:
        print(f"error: {error}", file=sys.stderr)
        return 2
    except (ConnectionError, OSError) as error:
        print(f"error: cannot reach {args.url}: {error}", file=sys.stderr)
        return 2
    except ReproError as error:
        print(f"error: {error}", file=sys.stderr)
        return 2
    return 0


def main(argv=None) -> int:
    """`python -m repro.serve` entry: `serve` or any client command."""
    argv = list(sys.argv[1:] if argv is None else argv)
    try:
        if argv and argv[0] == "serve":
            parser = argparse.ArgumentParser(
                prog="python -m repro.serve serve"
            )
            add_serve_arguments(parser)
            return run_serve(parser.parse_args(argv[1:]))
        return client_main(argv)
    except KeyboardInterrupt:
        print("repro: interrupted", file=sys.stderr)
        return 130


if __name__ == "__main__":
    raise SystemExit(main())
