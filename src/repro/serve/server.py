"""Asyncio HTTP front end for the exploration service.

Stdlib only: ``asyncio.start_server`` plus a minimal HTTP/1.1
request parser.  Every connection serves exactly one request
(``Connection: close``) — the service is a batch API, not a byte-
shaving RPC plane, and one-shot connections keep the parser honest and
the failure modes boring.

All JSON endpoints delegate to :func:`repro.serve.handlers.route`; the
only transport-level specialization is ``GET /v1/jobs/{id}/events``
with ``Accept: text/event-stream``-style semantics: the handler polls
the job's append-only event list and writes each record as one SSE
``event:``/``data:`` frame, closing with an ``end`` frame once the job
finishes.  Job execution happens on the service's worker threads, so
the event loop only ever formats bytes — a slow sweep never blocks
health checks or other submissions.
"""

from __future__ import annotations

import asyncio
import json

from repro.errors import ConfigurationError
from repro.serve.handlers import ExplorationService, route
from repro.serve.protocol import error_envelope

#: Largest accepted request body; a sweep spec is small by nature.
MAX_BODY_BYTES = 1_000_000

#: Seconds between event-list polls while streaming SSE.
SSE_POLL_S = 0.02

_STATUS_TEXT = {
    200: "OK",
    400: "Bad Request",
    404: "Not Found",
    405: "Method Not Allowed",
    409: "Conflict",
    413: "Payload Too Large",
    429: "Too Many Requests",
    500: "Internal Server Error",
    503: "Service Unavailable",
}


def _http_payload(status: int, body: bytes, content_type: str) -> bytes:
    reason = _STATUS_TEXT.get(status, "Unknown")
    head = (
        f"HTTP/1.1 {status} {reason}\r\n"
        f"Content-Type: {content_type}\r\n"
        f"Content-Length: {len(body)}\r\n"
        "Connection: close\r\n"
        "\r\n"
    )
    return head.encode("ascii") + body


class ReproServer:
    """One service instance behind one listening socket.

    Usage (see ``repro serve`` in the CLI for the blocking wrapper)::

        server = ReproServer(port=0)
        await server.start()
        host, port = server.address
        ...
        await server.aclose()
    """

    def __init__(
        self,
        service: ExplorationService | None = None,
        host: str = "127.0.0.1",
        port: int = 8765,
    ) -> None:
        self.service = service if service is not None else ExplorationService()
        self.host = host
        self.port = port
        self._server: asyncio.base_events.Server | None = None
        #: Live SSE streams right now — observable from tests so a
        #: client disconnect can be shown to reap its server-side loop.
        self.sse_streams = 0

    @property
    def address(self) -> tuple:
        """Actual ``(host, port)`` once started (port 0 resolves here)."""
        if self._server is None:
            raise ConfigurationError("server not started")
        return self._server.sockets[0].getsockname()[:2]

    async def start(self) -> None:
        self._server = await asyncio.start_server(
            self._handle, host=self.host, port=self.port
        )

    async def serve_forever(self) -> None:
        if self._server is None:
            await self.start()
        async with self._server:
            await self._server.serve_forever()

    async def aclose(self) -> None:
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
            self._server = None
        self.service.close()

    # -- request handling ----------------------------------------------------

    async def _handle(self, reader, writer) -> None:
        try:
            method, path, body = await self._read_request(reader)
        except _BadRequest as error:
            await self._write_json(
                writer, error.status, error_envelope("bad_json", str(error))
            )
            return
        except (ConnectionError, asyncio.IncompleteReadError):
            writer.close()
            return
        try:
            if method == "GET" and path.split("?")[0].endswith("/events"):
                await self._stream_events(writer, path)
            elif path.split("?")[0] == "/v1/metrics":
                # Raw Prometheus text, not a JSON envelope — rendered
                # here at the transport layer, like SSE.
                await self._write_metrics(writer, method)
            else:
                status, payload = route(self.service, method, path, body)
                await self._write_json(writer, status, payload)
        except (ConnectionError, asyncio.IncompleteReadError):
            writer.close()

    async def _read_request(self, reader) -> tuple:
        request_line = await reader.readline()
        parts = request_line.decode("latin-1").split()
        if len(parts) != 3:
            raise _BadRequest("malformed request line")
        method, target, _version = parts
        content_length = 0
        while True:
            line = await reader.readline()
            if line in (b"\r\n", b"\n", b""):
                break
            name, _, value = line.decode("latin-1").partition(":")
            if name.strip().lower() == "content-length":
                try:
                    content_length = int(value.strip())
                except ValueError:
                    raise _BadRequest("bad Content-Length") from None
        if content_length > MAX_BODY_BYTES:
            raise _BadRequest(
                f"body over {MAX_BODY_BYTES} bytes", status=413
            )
        body = None
        if content_length:
            raw = await reader.readexactly(content_length)
            try:
                body = json.loads(raw)
            except json.JSONDecodeError as error:
                raise _BadRequest(f"body is not JSON: {error}") from None
        return method, target, body

    async def _write_metrics(self, writer, method: str) -> None:
        from repro.obs.expo import CONTENT_TYPE

        if method != "GET":
            await self._write_json(
                writer,
                405,
                error_envelope(
                    "method_not_allowed",
                    f"method {method} not allowed on /v1/metrics",
                ),
            )
            return
        body = self.service.metrics_text().encode("utf-8")
        writer.write(_http_payload(200, body, CONTENT_TYPE))
        await writer.drain()
        writer.close()

    async def _write_json(self, writer, status: int, payload: dict) -> None:
        body = json.dumps(payload).encode("utf-8")
        writer.write(_http_payload(status, body, "application/json"))
        await writer.drain()
        writer.close()

    async def _stream_events(self, writer, path: str) -> None:
        job_id = path.split("?")[0].split("/")[-2]
        try:
            self.service.events_since(job_id, 0)
        except Exception:
            status, payload = route(self.service, "GET", path)
            await self._write_json(writer, status, payload)
            return
        head = (
            "HTTP/1.1 200 OK\r\n"
            "Content-Type: text/event-stream\r\n"
            "Cache-Control: no-cache\r\n"
            "Connection: close\r\n"
            "\r\n"
        )
        writer.write(head.encode("ascii"))
        cursor = 0
        self.sse_streams += 1
        try:
            while True:
                events, finished = self.service.events_since(job_id, cursor)
                for event in events:
                    frame = (
                        f"event: {event.get('kind', 'message')}\n"
                        f"data: {json.dumps(event)}\n\n"
                    )
                    writer.write(frame.encode("utf-8"))
                cursor += len(events)
                if not events:
                    # SSE comment frame: ignored by clients, but the
                    # write + drain below surfaces a peer disconnect as
                    # ConnectionError even while the job is quiet — the
                    # stream is reaped instead of polling forever.
                    writer.write(b": keepalive\n\n")
                await writer.drain()
                if finished and not events:
                    writer.write(b"event: end\ndata: {}\n\n")
                    await writer.drain()
                    break
                await asyncio.sleep(SSE_POLL_S)
        finally:
            self.sse_streams -= 1
            writer.close()


class _BadRequest(Exception):
    def __init__(self, message: str, status: int = 400) -> None:
        super().__init__(message)
        self.status = status


def run_server(
    host: str = "127.0.0.1",
    port: int = 8765,
    cache_size: int = 256,
    cache_path=None,
    max_workers: int = 4,
    ready=None,
    resilience=None,
    journal_dir=None,
    tracing: bool = True,
) -> None:
    """Blocking entry point behind ``repro serve``.

    ``ready``, when given, is called with the bound ``(host, port)``
    once the socket listens — the test harness and CLI use it to print
    the resolved port before blocking.  ``resilience`` is a
    :class:`~repro.serve.resilience.ResilienceConfig` (or ``False`` to
    disable admission control and breakers); ``journal_dir`` enables
    per-job sweep checkpoints for resumable cancellation.
    """
    from repro.serve.cache import ResultCache

    service = ExplorationService(
        cache=ResultCache(maxsize=cache_size, path=cache_path),
        max_workers=max_workers,
        resilience=resilience,
        journal_dir=journal_dir,
        tracing=tracing,
    )
    server = ReproServer(service=service, host=host, port=port)

    async def main() -> None:
        await server.start()
        if ready is not None:
            ready(server.address)
        try:
            await server.serve_forever()
        finally:
            await server.aclose()

    # KeyboardInterrupt propagates: the CLI entry points translate it
    # into a one-line message and exit code 130.  asyncio.run() already
    # cancels the serve loop and runs the `finally: aclose()` (draining
    # in-flight jobs) before re-raising.
    asyncio.run(main())
