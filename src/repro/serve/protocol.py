"""Wire protocol for the exploration service: schemas, fingerprints.

The service speaks one versioned JSON dialect (``SCHEMA_VERSION``) over
plain HTTP.  This module is the *entire* contract surface: strict
payload validation (unknown fields are rejected, not ignored — a typoed
``axess`` must fail loudly, not silently run the default sweep),
canonical serialization, and the content-addressed job fingerprint the
result cache and request coalescer key on.

Validation errors raise :class:`RequestError`, which carries both a
machine-readable ``code`` and the HTTP status the server maps it to.
The name deliberately avoids ``ProtocolError`` — that name already
means "illegal DRAM command sequence" in :mod:`repro.errors`.

Fingerprints hash the *canonical* job document (sorted keys, no
whitespace, schema version folded in), so two byte-different requests
describing the same work coalesce, while any semantic difference —
axis order included, because sweep point order follows axis order —
yields a different key.
"""

from __future__ import annotations

import hashlib
import json
from dataclasses import dataclass, field

from repro.errors import ConfigurationError
from repro.units import GBIT, MBIT

#: Version stamped on every request/response envelope.  Bump on any
#: backward-incompatible change to the job or response documents.
SCHEMA_VERSION = 1

#: Job kinds the service executes.
JOB_KINDS = ("sweep", "explore")

#: Evaluation backends per job kind.  Sweep workloads are scalar python
#: functions today, so "auto" just follows ``Sweep.run``'s normal path
#: (which prefers a workload's ``evaluate_batch`` when present).
SWEEP_BACKENDS = ("auto", "scalar")
EXPLORE_BACKENDS = ("batched", "scalar")

#: Hard cap on sweep cartesian size — a service must bound work per
#: request; beyond this, split the job client-side.
MAX_SWEEP_POINTS = 4096

_SCALAR_TYPES = (bool, int, float, str)


class RequestError(ConfigurationError):
    """Invalid request at the protocol layer (maps to a 4xx response).

    Attributes:
        code: Machine-readable error code for clients.
        http_status: Status the HTTP layer responds with.
    """

    def __init__(
        self,
        message: str,
        code: str = "bad_request",
        http_status: int = 400,
        extra: dict | None = None,
    ) -> None:
        super().__init__(message)
        self.code = code
        self.http_status = http_status
        #: Extra machine-readable fields folded into the error envelope
        #: (e.g. ``retry_after_s`` on 429/503 rejections).
        self.extra = extra or {}


def canonical_json(document) -> str:
    """The one true serialization: sorted keys, no whitespace.

    Both the fingerprint and the cached result text use this form, so
    byte comparison of two serializations is semantic comparison.
    """
    return json.dumps(
        document, sort_keys=True, separators=(",", ":"), allow_nan=False
    )


def fingerprint_document(document) -> str:
    """sha256 over the canonical form of a JSON-able document."""
    return hashlib.sha256(canonical_json(document).encode("utf-8")).hexdigest()


# -- validation helpers ------------------------------------------------------


def _expect_object(payload, where: str) -> dict:
    if not isinstance(payload, dict):
        raise RequestError(
            f"{where} must be a JSON object, got {type(payload).__name__}"
        )
    return payload


def _reject_unknown(payload: dict, allowed, where: str) -> None:
    unknown = sorted(set(payload) - set(allowed))
    if unknown:
        raise RequestError(
            f"unknown field(s) in {where}: {', '.join(unknown)} "
            f"(allowed: {', '.join(sorted(allowed))})"
        )


def _string_field(payload: dict, key: str, where: str) -> str:
    value = payload.get(key)
    if not isinstance(value, str) or not value:
        raise RequestError(f"{where}.{key} must be a non-empty string")
    return value


def _bool_field(payload: dict, key: str, where: str, default: bool) -> bool:
    value = payload.get(key, default)
    if not isinstance(value, bool):
        raise RequestError(f"{where}.{key} must be a boolean")
    return value


def _number_field(
    payload: dict,
    key: str,
    where: str,
    *,
    default=None,
    required: bool = False,
    positive: bool = True,
):
    value = payload.get(key, default)
    if value is None:
        if required:
            raise RequestError(f"{where}.{key} is required")
        return None
    if isinstance(value, bool) or not isinstance(value, (int, float)):
        raise RequestError(f"{where}.{key} must be a number")
    if positive and value <= 0:
        raise RequestError(f"{where}.{key} must be > 0")
    return float(value)


def _int_tuple_field(payload: dict, key: str, where: str):
    values = payload.get(key)
    if values is None:
        return None
    if not isinstance(values, list) or not values:
        raise RequestError(f"{where}.{key} must be a non-empty array")
    out = []
    for index, value in enumerate(values):
        if isinstance(value, bool) or not isinstance(value, int) or value <= 0:
            raise RequestError(
                f"{where}.{key}[{index}] must be a positive integer"
            )
        out.append(value)
    return tuple(out)


# -- job specs ---------------------------------------------------------------


@dataclass(frozen=True)
class SweepJobSpec:
    """A validated sweep job: a named workload over a parameter grid.

    ``axes`` preserves request order — sweep point order follows axis
    order, so order is part of the job's identity.
    """

    workload: str
    axes: tuple  # ((name, (value, ...)), ...) in request order
    backend: str = "auto"
    skip_errors: bool = False
    #: Execution hint only: fan the sweep across this many local worker
    #: processes (0 = serial).  Deliberately excluded from
    #: :meth:`canonical` and :meth:`fingerprint` — where a job runs
    #: must not change what it computes, so a 4-worker run shares its
    #: cache entry (byte-identically) with the serial run.
    workers: int = field(default=0, compare=False)
    #: Server-side deadline in seconds; the job is cooperatively
    #: cancelled once it lapses.  Excluded from the fingerprint for the
    #: same reason as ``workers``: how long a job may run does not
    #: change what it computes, so a deadline-bearing request still
    #: coalesces with (and is served from the cache of) the same job
    #: submitted without one.
    deadline_s: float | None = field(default=None, compare=False)

    kind = "sweep"

    @property
    def n_points(self) -> int:
        total = 1
        for _, values in self.axes:
            total *= len(values)
        return total

    def canonical(self) -> dict:
        return {
            "schema_version": SCHEMA_VERSION,
            "kind": self.kind,
            "workload": self.workload,
            "axes": [[name, list(values)] for name, values in self.axes],
            "backend": self.backend,
            "skip_errors": self.skip_errors,
        }

    def fingerprint(self) -> str:
        from repro.core.sweep import Sweep

        return Sweep(axes=dict(self.axes)).content_key(
            schema_version=SCHEMA_VERSION,
            kind=self.kind,
            workload=self.workload,
            backend=self.backend,
            skip_errors=self.skip_errors,
            axis_order=[name for name, _ in self.axes],
        )


@dataclass(frozen=True)
class ExploreJobSpec:
    """A validated design-space exploration job (E10-style).

    ``requirements`` holds the fully resolved
    :class:`~repro.core.requirements.ApplicationRequirements` field
    values (presets expanded at parse time), so equivalent requests
    share one fingerprint.
    """

    requirements: tuple  # sorted ((field, value), ...) pairs
    backend: str = "batched"
    widths: tuple | None = None
    bank_options: tuple | None = None
    #: Server-side deadline (see :class:`SweepJobSpec.deadline_s`);
    #: excluded from the fingerprint.
    deadline_s: float | None = field(default=None, compare=False)

    kind = "explore"

    requirements_dict: dict = field(init=False, repr=False, compare=False)

    def __post_init__(self):
        object.__setattr__(self, "requirements_dict", dict(self.requirements))

    def canonical(self) -> dict:
        document = {
            "schema_version": SCHEMA_VERSION,
            "kind": self.kind,
            "requirements": dict(self.requirements),
            "backend": self.backend,
        }
        if self.widths is not None:
            document["widths"] = list(self.widths)
        if self.bank_options is not None:
            document["bank_options"] = list(self.bank_options)
        return document

    def fingerprint(self) -> str:
        return fingerprint_document(self.canonical())

    def to_requirements(self):
        from repro.core.requirements import ApplicationRequirements

        fields = self.requirements_dict
        return ApplicationRequirements(
            name=fields["name"],
            capacity_bits=int(fields["capacity_mbit"] * MBIT),
            sustained_bandwidth_bits_per_s=(
                fields["bandwidth_gbit_s"] * GBIT
            ),
            max_latency_ns=fields.get("max_latency_ns"),
            power_budget_w=fields.get("power_budget_w"),
            volume_per_year=int(fields.get("volume_per_year", 1_000_000)),
            portable=fields.get("portable", False),
            read_fraction=fields.get("read_fraction", 0.67),
            locality=fields.get("locality", 0.7),
        )


# -- parsing -----------------------------------------------------------------

_SWEEP_FIELDS = (
    "kind",
    "workload",
    "axes",
    "backend",
    "skip_errors",
    "workers",
    "deadline_s",
)

#: Cap on the `workers:` execution hint — a service must bound the
#: processes one request can spawn.
MAX_SWEEP_WORKERS = 8
_EXPLORE_FIELDS = (
    "kind",
    "requirements",
    "backend",
    "widths",
    "bank_options",
    "deadline_s",
)
_REQUIREMENT_FIELDS = (
    "name",
    "capacity_mbit",
    "bandwidth_gbit_s",
    "max_latency_ns",
    "power_budget_w",
    "volume_per_year",
    "portable",
    "read_fraction",
    "locality",
)

#: Named requirement presets, so ``"requirements": "mpeg2"`` submits the
#: paper's E10 customer without the client spelling out the budget.
REQUIREMENT_PRESETS = {
    "mpeg2": lambda: _mpeg2_preset(),
}


def _mpeg2_preset() -> dict:
    from repro.experiments.e10_design_space import mpeg2_requirements

    source = mpeg2_requirements()
    return {
        "name": source.name,
        "capacity_mbit": source.capacity_bits / MBIT,
        "bandwidth_gbit_s": source.sustained_bandwidth_bits_per_s / GBIT,
        "max_latency_ns": source.max_latency_ns,
        "volume_per_year": source.volume_per_year,
        "locality": source.locality,
    }


def _parse_axes(payload: dict, workload: str) -> tuple:
    from repro.serve.workloads import workload_parameters

    axes = payload.get("axes")
    axes = _expect_object(axes, "job.axes")
    if not axes:
        raise RequestError("job.axes must name at least one axis")
    accepted = workload_parameters(workload)
    parsed = []
    for name, values in axes.items():
        if name not in accepted:
            raise RequestError(
                f"job.axes: workload {workload!r} has no parameter "
                f"{name!r} (accepts: {', '.join(accepted)})"
            )
        if not isinstance(values, list) or not values:
            raise RequestError(
                f"job.axes.{name} must be a non-empty array of scalars"
            )
        for index, value in enumerate(values):
            if not isinstance(value, _SCALAR_TYPES):
                raise RequestError(
                    f"job.axes.{name}[{index}] must be a scalar "
                    f"(bool/int/float/str), got {type(value).__name__}"
                )
        parsed.append((name, tuple(values)))
    return tuple(parsed)


def _parse_sweep(payload: dict) -> SweepJobSpec:
    from repro.serve.workloads import has_workload, workload_names

    _reject_unknown(payload, _SWEEP_FIELDS, "sweep job")
    workload = _string_field(payload, "workload", "job")
    if not has_workload(workload):
        raise RequestError(
            f"unknown workload {workload!r} "
            f"(available: {', '.join(workload_names())})",
            code="unknown_workload",
        )
    backend = payload.get("backend", "auto")
    if backend not in SWEEP_BACKENDS:
        raise RequestError(
            f"job.backend must be one of {SWEEP_BACKENDS}, got {backend!r}"
        )
    workers = payload.get("workers", 0)
    if (
        isinstance(workers, bool)
        or not isinstance(workers, int)
        or workers < 0
    ):
        raise RequestError("job.workers must be a nonnegative integer")
    if workers > MAX_SWEEP_WORKERS:
        raise RequestError(
            f"job.workers is capped at {MAX_SWEEP_WORKERS}, got {workers}",
            code="too_large",
            http_status=413,
        )
    spec = SweepJobSpec(
        workload=workload,
        axes=_parse_axes(payload, workload),
        backend=backend,
        skip_errors=_bool_field(payload, "skip_errors", "job", False),
        workers=workers,
        deadline_s=_number_field(payload, "deadline_s", "job"),
    )
    if spec.n_points > MAX_SWEEP_POINTS:
        raise RequestError(
            f"sweep has {spec.n_points} points, over the per-job cap of "
            f"{MAX_SWEEP_POINTS}; split the axes across several jobs",
            code="too_large",
            http_status=413,
        )
    return spec


def _parse_requirements(value) -> tuple:
    if isinstance(value, str):
        preset = REQUIREMENT_PRESETS.get(value)
        if preset is None:
            raise RequestError(
                f"unknown requirements preset {value!r} "
                f"(available: {', '.join(sorted(REQUIREMENT_PRESETS))})"
            )
        value = preset()
    value = _expect_object(value, "job.requirements")
    _reject_unknown(value, _REQUIREMENT_FIELDS, "job.requirements")
    where = "job.requirements"
    fields = {
        "name": _string_field(value, "name", where),
        "capacity_mbit": _number_field(
            value, "capacity_mbit", where, required=True
        ),
        "bandwidth_gbit_s": _number_field(
            value, "bandwidth_gbit_s", where, required=True
        ),
    }
    for optional in ("max_latency_ns", "power_budget_w"):
        number = _number_field(value, optional, where)
        if number is not None:
            fields[optional] = number
    volume = value.get("volume_per_year")
    if volume is not None:
        if isinstance(volume, bool) or not isinstance(volume, int):
            raise RequestError(f"{where}.volume_per_year must be an integer")
        if volume <= 0:
            raise RequestError(f"{where}.volume_per_year must be > 0")
        fields["volume_per_year"] = volume
    if "portable" in value:
        fields["portable"] = _bool_field(value, "portable", where, False)
    for fraction in ("read_fraction", "locality"):
        number = _number_field(value, fraction, where)
        if number is not None:
            if not 0.0 <= number <= 1.0:
                raise RequestError(f"{where}.{fraction} must be in [0, 1]")
            fields[fraction] = number
    return tuple(sorted(fields.items()))


def _parse_explore(payload: dict) -> ExploreJobSpec:
    _reject_unknown(payload, _EXPLORE_FIELDS, "explore job")
    if "requirements" not in payload:
        raise RequestError("job.requirements is required")
    backend = payload.get("backend", "batched")
    if backend not in EXPLORE_BACKENDS:
        raise RequestError(
            f"job.backend must be one of {EXPLORE_BACKENDS}, got {backend!r}"
        )
    return ExploreJobSpec(
        requirements=_parse_requirements(payload["requirements"]),
        backend=backend,
        widths=_int_tuple_field(payload, "widths", "job"),
        bank_options=_int_tuple_field(payload, "bank_options", "job"),
        deadline_s=_number_field(payload, "deadline_s", "job"),
    )


def parse_job(payload):
    """Validate a submitted job document into a frozen spec.

    Raises :class:`RequestError` (→ 4xx) on any malformation; a
    returned spec is fully executable and fingerprintable.
    """
    payload = _expect_object(payload, "job")
    kind = payload.get("kind")
    if kind not in JOB_KINDS:
        raise RequestError(
            f"job.kind must be one of {JOB_KINDS}, got {kind!r}"
        )
    if kind == "sweep":
        return _parse_sweep(payload)
    return _parse_explore(payload)


# -- response envelopes ------------------------------------------------------


def ok_envelope(**fields) -> dict:
    envelope = {"schema_version": SCHEMA_VERSION, "ok": True}
    envelope.update(fields)
    return envelope


def error_envelope(code: str, message: str, **extra) -> dict:
    """The error response document; ``extra`` fields (``retry_after_s``
    on overload/breaker rejections) land inside the ``error`` object."""
    error = {"code": code, "message": message}
    error.update(extra)
    return {
        "schema_version": SCHEMA_VERSION,
        "ok": False,
        "error": error,
    }
