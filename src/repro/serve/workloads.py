"""Named sweep workloads the service can run.

A workload is a plain python function of scalar keyword parameters
returning a JSON-able dict — exactly what :meth:`Sweep.run
<repro.core.sweep.Sweep.run>` calls per point.  The registry maps the
names clients put in ``job.workload`` to these functions, and exposes
each workload's accepted parameter names so the protocol layer can
reject a typoed axis *before* any evaluation runs.

Workloads must be deterministic in their parameters: the content-
addressed result cache serves a stored response for any identical job,
so a nondeterministic workload would make cache hits observably differ
from cold runs.  All built-ins are pinned (analytic evaluation, or
seeded simulation).

If a workload result dict carries an ``objectives`` list (values to
*minimize*), the service computes the Pareto frontier over the sweep's
successful points with :func:`repro.core.pareto.pareto_frontier` and
returns the frontier indices alongside the points.
"""

from __future__ import annotations

import inspect

from repro.errors import ConfigurationError
from repro.units import GBIT, MBIT

#: name -> callable(**scalar params) -> JSON-able dict
_WORKLOADS: dict = {}


def register_workload(name: str, fn, replace: bool = False) -> None:
    """Register a workload function under a client-visible name.

    Tests register throwaway workloads (slow, failing, counting); the
    built-ins below register themselves at import.
    """
    if not name:
        raise ConfigurationError("workload name required")
    if not replace and name in _WORKLOADS:
        raise ConfigurationError(f"workload {name!r} already registered")
    _WORKLOADS[name] = fn


def unregister_workload(name: str) -> None:
    """Remove a registered workload (test cleanup)."""
    _WORKLOADS.pop(name, None)


def has_workload(name: str) -> bool:
    return name in _WORKLOADS


def get_workload(name: str):
    try:
        return _WORKLOADS[name]
    except KeyError:
        raise ConfigurationError(f"unknown workload {name!r}") from None


def workload_names() -> list:
    return sorted(_WORKLOADS)


def workload_parameters(name: str) -> tuple:
    """Keyword parameters a workload accepts (axis-name validation)."""
    fn = get_workload(name)
    signature = inspect.signature(fn)
    return tuple(signature.parameters)


# -- built-ins ---------------------------------------------------------------


def edram_tradeoff(
    size_mbit: float = 16.0,
    width: int = 64,
    banks: int = 4,
    page_bits: int = 2048,
    locality: float = 0.6,
    bandwidth_gbit_s: float = 2.0,
) -> dict:
    """Analytic power/area/cost/bandwidth of one eDRAM organization.

    The paper's central trade-off (Sections 3-5) as a sweepable point:
    requirements sized to the macro itself, bandwidth demand and
    locality from the axes.  ``objectives`` orders the minimization
    tuple (power, area, cost, -sustained bandwidth), so the service's
    Pareto pass reproduces the E10 frontier shape over any axes subset.
    """
    from repro.core.evaluator import Evaluator
    from repro.core.requirements import ApplicationRequirements
    from repro.dram.edram import EDRAMMacro

    macro = EDRAMMacro(
        size_bits=int(size_mbit * MBIT),
        width=width,
        banks=banks,
        page_bits=page_bits,
    )
    requirements = ApplicationRequirements(
        name="serve point",
        capacity_bits=macro.size_bits,
        sustained_bandwidth_bits_per_s=bandwidth_gbit_s * GBIT,
        locality=locality,
    )
    evaluator = Evaluator()
    metrics = evaluator.evaluate_macro(macro, requirements)
    feasible = evaluator.meets(metrics, requirements)
    return {
        "label": metrics.label,
        "feasible": feasible,
        "power_w": metrics.power_w,
        "area_mm2": metrics.area_mm2,
        "unit_cost": metrics.unit_cost,
        "mean_latency_ns": metrics.mean_latency_ns,
        "peak_bandwidth_gbit_s": metrics.peak_bandwidth_bits_per_s / GBIT,
        "sustained_bandwidth_gbit_s": (
            metrics.sustained_bandwidth_bits_per_s / GBIT
        ),
        "objectives": [
            metrics.power_w,
            metrics.area_mm2,
            metrics.unit_cost,
            -metrics.sustained_bandwidth_bits_per_s,
        ],
    }


def injected_sim(
    cycles: int = 2_000,
    warmup_cycles: int = 200,
    seed: int = 0,
    cell_faults: int = 0,
    refresh_drop_rate: float = 0.0,
    fifo_stall_rate: float = 0.0,
) -> dict:
    """Seeded fault-injected simulation (PR 4's injector as a service
    workload) — the chaos-test surface: faults on the axes, bit-exact
    per seed.
    """
    from repro.inject import InjectionConfig
    from repro.inject.runtime import build_injected_simulator

    injection = None
    if cell_faults or refresh_drop_rate or fifo_stall_rate:
        injection = InjectionConfig(
            seed=seed,
            n_cell_faults=cell_faults,
            refresh_drop_rate=refresh_drop_rate,
            fifo_stall_rate=fifo_stall_rate,
        )
    simulator = build_injected_simulator(
        injection,
        cycles=cycles,
        warmup_cycles=warmup_cycles,
        seed=seed,
    )
    result = simulator.run()
    return {
        "requests_completed": result.requests_completed,
        "data_bits_transferred": result.data_bits_transferred,
        "row_hit_rate": result.row_hit_rate,
        "refreshes": result.refreshes,
        "mean_latency_cycles": result.latency.mean,
        "injected": injection is not None,
    }


def sim_fingerprint(seed: int = 0, cycles: int = 1_000) -> tuple:
    """Seeded baseline simulation reduced to its result fingerprint.

    Work-queue workers unpickle task functions *by reference*
    (``module.qualname``), so anything swept through
    :class:`~repro.core.executor.WorkQueueExecutor` must live in an
    importable module — not a benchmark script or ``__main__``.  This
    is that workload: the distributed bench and the CI smoke sweep it
    and compare fingerprints bit-for-bit against a serial run.
    """
    from repro.inject.runtime import build_injected_simulator
    from repro.verify.differential import result_fingerprint

    simulator = build_injected_simulator(
        None,
        cycles=cycles,
        warmup_cycles=max(1, cycles // 8),
        seed=seed,
    )
    return result_fingerprint(simulator.run())


register_workload("edram_tradeoff", edram_tradeoff)
register_workload("injected_sim", injected_sim)
register_workload("sim_fingerprint", sim_fingerprint)
