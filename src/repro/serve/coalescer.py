"""Request coalescing: overlapping identical in-flight jobs run once.

Two clients submitting the same fingerprint while the first execution
is still running must not evaluate the design space twice — the second
job *follows* the first and receives the same result the moment the
primary finishes.  This is the in-flight complement of the result
cache: the cache de-duplicates across time, the coalescer across
concurrency.

The window is admit → release, both under one lock shared with the
follower list, so there is no race in which a follower attaches after
the primary resolved: ``release`` atomically detaches the entry and
snapshots the followers, after which new submissions miss the in-flight
map and hit the (just-populated) result cache instead.
"""

from __future__ import annotations

import threading


class RequestCoalescer:
    """Tracks the primary in-flight job per fingerprint.

    Attributes:
        coalesced: Total follower jobs fused onto a primary (the
            ``serve.coalesced`` counter in ``/v1/stats``).
    """

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._inflight: dict = {}  # fingerprint -> primary job record
        self.coalesced = 0

    def admit(self, fingerprint: str, job):
        """Register ``job`` for execution, or attach it to the primary.

        Returns the primary job when ``job`` became a follower (the
        caller must *not* execute), or None when ``job`` is now the
        primary (the caller owns the execution and must ``release``).
        """
        with self._lock:
            primary = self._inflight.get(fingerprint)
            if primary is not None:
                self.coalesced += 1
                primary.followers.append(job)
                return primary
            self._inflight[fingerprint] = job
            return None

    def release(self, fingerprint: str, job) -> list:
        """Detach a finished primary; returns its followers to resolve."""
        with self._lock:
            if self._inflight.get(fingerprint) is job:
                del self._inflight[fingerprint]
            followers = list(job.followers)
            job.followers.clear()
            return followers

    @property
    def in_flight(self) -> int:
        with self._lock:
            return len(self._inflight)
