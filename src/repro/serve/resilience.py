"""Overload protection for the exploration service.

Three small, lock-free-on-the-read-path primitives the service wires
into its submit path (see :mod:`repro.serve.handlers`):

* :class:`AdmissionController` — a bounded admission count with
  per-workload concurrency limits.  A submit that would exceed either
  bound is *shed* with a 429 ``overloaded`` envelope carrying
  ``retry_after_s`` instead of queueing without bound; cache hits and
  coalesced followers consume no slot, so a saturated service still
  answers everything it already knows.
* :class:`CircuitBreaker` — per-workload consecutive-failure tracking.
  ``breaker_threshold`` failures in a row open the breaker; while open,
  submits for that workload are rejected with a 503 ``circuit_open``
  envelope so one broken workload cannot exhaust the executor pool.
  After ``breaker_cooldown_s`` the breaker goes *half-open* and admits
  exactly one probe; a probe success closes it, a failure re-opens it.
* :class:`CancelToken` — cooperative cancellation with an optional
  monotonic deadline.  The service hands one to every cold execution;
  ``Sweep.run``/``parallel_map``/``WorkQueueExecutor`` check it at
  chunk boundaries and the simulator watchdog checks it at its
  512-cycle cadence, so an abandoned or expired job frees its capacity
  instead of running to completion.

All the mutating entry points the service calls are guarded by the
service's own submit lock; the classes here only lock where they can be
reached from job threads too.
"""

from __future__ import annotations

import threading
import time
from dataclasses import dataclass

from repro.errors import CancelledError, ConfigurationError


@dataclass(frozen=True)
class ResilienceConfig:
    """Admission and breaker settings for one service instance.

    Attributes:
        max_depth: Jobs admitted for execution (queued + running) at
            once, across all workloads.  Submissions beyond this are
            shed with 429 ``overloaded``.
        per_workload: Same bound per workload key (None = ``max_depth``
            — only the global bound applies).
        shed_retry_after_s: ``retry_after_s`` hint on 429 responses.
        breaker_threshold: Consecutive failures that open a workload's
            circuit breaker (0 disables breakers).
        breaker_cooldown_s: Seconds an open breaker rejects submissions
            before allowing one half-open probe.
    """

    max_depth: int = 64
    per_workload: int | None = None
    shed_retry_after_s: float = 0.1
    breaker_threshold: int = 5
    breaker_cooldown_s: float = 5.0

    def __post_init__(self) -> None:
        if self.max_depth < 1:
            raise ConfigurationError("max_depth must be >= 1")
        if self.per_workload is not None and self.per_workload < 1:
            raise ConfigurationError("per_workload must be >= 1")
        if self.shed_retry_after_s <= 0:
            raise ConfigurationError("shed_retry_after_s must be positive")
        if self.breaker_threshold < 0:
            raise ConfigurationError("breaker_threshold must be >= 0")
        if self.breaker_cooldown_s <= 0:
            raise ConfigurationError("breaker_cooldown_s must be positive")

    def workload_limit(self) -> int:
        limit = self.per_workload
        return self.max_depth if limit is None else min(limit, self.max_depth)


class AdmissionController:
    """Bounded admission: global depth plus per-workload concurrency.

    ``try_admit``/``release`` bracket a job's executor occupancy; the
    depth gauge is what ``/v1/readyz`` and the bench's overload section
    report.
    """

    def __init__(self, config: ResilienceConfig) -> None:
        self.config = config
        self._lock = threading.Lock()
        self._depth = 0
        self._per_key: dict = {}
        self.shed = 0

    @property
    def depth(self) -> int:
        with self._lock:
            return self._depth

    def key_depth(self, key: str) -> int:
        with self._lock:
            return self._per_key.get(key, 0)

    def try_admit(self, key: str) -> bool:
        """Claim one slot for ``key``; False (and a shed count) if full."""
        with self._lock:
            if (
                self._depth >= self.config.max_depth
                or self._per_key.get(key, 0) >= self.config.workload_limit()
            ):
                self.shed += 1
                return False
            self._depth += 1
            self._per_key[key] = self._per_key.get(key, 0) + 1
            return True

    def release(self, key: str) -> None:
        with self._lock:
            self._depth = max(0, self._depth - 1)
            count = self._per_key.get(key, 0) - 1
            if count <= 0:
                self._per_key.pop(key, None)
            else:
                self._per_key[key] = count

    def snapshot(self) -> dict:
        with self._lock:
            return {
                "depth": self._depth,
                "max_depth": self.config.max_depth,
                "per_workload_limit": self.config.workload_limit(),
                "per_workload": dict(self._per_key),
                "shed": self.shed,
            }


#: Breaker states.
CLOSED, OPEN, HALF_OPEN = "closed", "open", "half_open"


class _Breaker:
    __slots__ = ("state", "failures", "opened_at")

    def __init__(self) -> None:
        self.state = CLOSED
        self.failures = 0
        self.opened_at = 0.0


class CircuitBreaker:
    """Per-key consecutive-failure breakers (closed/open/half-open)."""

    def __init__(self, config: ResilienceConfig) -> None:
        self.config = config
        self._lock = threading.Lock()
        self._breakers: dict = {}
        self.opened = 0
        self.rejected = 0

    def _breaker(self, key: str) -> _Breaker:
        breaker = self._breakers.get(key)
        if breaker is None:
            breaker = self._breakers[key] = _Breaker()
        return breaker

    def allow(self, key: str) -> tuple:
        """``(allowed, retry_after_s)`` for one submission of ``key``.

        An open breaker past its cooldown transitions to half-open and
        admits the caller as the single probe; a second caller during
        the probe is rejected with the full cooldown as its hint.
        """
        if self.config.breaker_threshold == 0:
            return True, None
        with self._lock:
            breaker = self._breakers.get(key)
            if breaker is None or breaker.state == CLOSED:
                return True, None
            now = time.monotonic()
            if breaker.state == OPEN:
                remaining = (
                    breaker.opened_at + self.config.breaker_cooldown_s - now
                )
                if remaining > 0:
                    self.rejected += 1
                    return False, max(remaining, 0.001)
                breaker.state = HALF_OPEN
                return True, None
            # half-open: a probe is already in flight
            self.rejected += 1
            return False, self.config.breaker_cooldown_s

    def record_success(self, key: str) -> None:
        if self.config.breaker_threshold == 0:
            return
        with self._lock:
            breaker = self._breakers.get(key)
            if breaker is None:
                return
            breaker.state = CLOSED
            breaker.failures = 0

    def record_failure(self, key: str) -> None:
        if self.config.breaker_threshold == 0:
            return
        with self._lock:
            breaker = self._breaker(key)
            breaker.failures += 1
            if (
                breaker.state == HALF_OPEN
                or breaker.failures >= self.config.breaker_threshold
            ):
                if breaker.state != OPEN:
                    self.opened += 1
                breaker.state = OPEN
                breaker.opened_at = time.monotonic()

    def record_cancelled(self, key: str) -> None:
        """A probe/job was cancelled: neither a success nor a failure.

        A cancelled half-open probe would otherwise strand the breaker
        half-open forever (every later submit rejected, no probe left
        to deliver a verdict) — re-open it with a fresh cooldown so the
        next window admits a new probe.  Closed/open breakers are left
        untouched.
        """
        with self._lock:
            breaker = self._breakers.get(key)
            if breaker is not None and breaker.state == HALF_OPEN:
                breaker.state = OPEN
                breaker.opened_at = time.monotonic()

    def state_of(self, key: str) -> str:
        with self._lock:
            breaker = self._breakers.get(key)
            return CLOSED if breaker is None else breaker.state

    def snapshot(self) -> dict:
        with self._lock:
            return {
                "opened": self.opened,
                "rejected": self.rejected,
                "states": {
                    key: breaker.state
                    for key, breaker in self._breakers.items()
                    if breaker.state != CLOSED or breaker.failures
                },
            }


class CancelToken:
    """Cooperative cancellation flag with an optional deadline.

    Thread-safe; checks are cheap enough for per-point cadence.  The
    first ``cancel`` wins and pins ``reason``; a lapsed deadline
    self-cancels with reason ``"deadline"`` on the next check.
    """

    def __init__(self, deadline_s: float | None = None) -> None:
        if deadline_s is not None and deadline_s <= 0:
            raise ConfigurationError("deadline_s must be positive")
        self._event = threading.Event()
        self.reason: str | None = None
        self._deadline = (
            None if deadline_s is None else time.monotonic() + deadline_s
        )

    def cancel(self, reason: str = "cancelled") -> bool:
        """Request cancellation; returns True on the first call only."""
        if self._event.is_set():
            return False
        self.reason = reason
        self._event.set()
        return True

    @property
    def cancelled(self) -> bool:
        if self._event.is_set():
            return True
        if self._deadline is not None and time.monotonic() > self._deadline:
            self.cancel("deadline")
            return True
        return False

    def remaining_s(self) -> float | None:
        """Seconds until the deadline (None = no deadline)."""
        if self._deadline is None:
            return None
        return max(0.0, self._deadline - time.monotonic())

    def raise_if_cancelled(self) -> None:
        if self.cancelled:
            raise CancelledError(
                f"cancelled ({self.reason or 'cancelled'})"
            )
