"""Exploration service: a JSON batch API over the design-space tools.

``repro serve`` turns the library's sweep and exploration machinery
into a long-lived process: submit jobs, stream progress, fetch Pareto
fronts and run reports, and let a content-addressed result cache plus
request coalescing absorb repeated and concurrent identical work.
See docs/SERVICE.md for the API reference and cache semantics.
"""

from repro.serve.cache import ResultCache
from repro.serve.client import InProcessClient, ServeClient, ServeClientError
from repro.serve.coalescer import RequestCoalescer
from repro.serve.handlers import ExplorationService, route
from repro.serve.protocol import (
    RequestError,
    SCHEMA_VERSION,
    canonical_json,
    parse_job,
)
from repro.serve.server import ReproServer, run_server
from repro.serve.workloads import (
    get_workload,
    register_workload,
    unregister_workload,
    workload_names,
    workload_parameters,
)

__all__ = [
    "ExplorationService",
    "InProcessClient",
    "RequestCoalescer",
    "RequestError",
    "ReproServer",
    "ResultCache",
    "SCHEMA_VERSION",
    "ServeClient",
    "ServeClientError",
    "canonical_json",
    "get_workload",
    "parse_job",
    "register_workload",
    "route",
    "run_server",
    "unregister_workload",
    "workload_names",
    "workload_parameters",
]
