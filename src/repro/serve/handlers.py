"""The exploration service: job lifecycle, execution, routing.

:class:`ExplorationService` is deliberately synchronous — jobs run on a
:class:`~concurrent.futures.ThreadPoolExecutor`, state is guarded by
plain locks — and the asyncio HTTP layer (:mod:`repro.serve.server`)
is a thin wrapper over it.  That split buys the test layer its
strongest property: :func:`route` dispatches method+path+body to the
service exactly once for *both* the real socket server and the
in-process test client, so contract tests pin the wire behavior
without opening a socket.

Execution path per job::

    submit -> cache.get(fingerprint)   -- hit: done instantly, cached=True
           -> coalescer.admit          -- in flight: follow the primary
           -> breaker.allow            -- workload broken: 503 circuit_open
           -> admission.try_admit      -- at capacity: 429 overloaded
           -> executor.submit          -- cold: run it

Only a *cold primary* occupies an executor slot, so only it is subject
to the breaker and admission checks: cache hits and coalesced
followers are answered even when the service is saturated.  Rejected
submissions create no job record and do not count as ``submitted`` —
the bookkeeping invariant ``submitted == executions + cache_hits +
coalesced`` holds with resilience enabled.

Every cold primary carries a :class:`~repro.serve.resilience.CancelToken`
(armed with the job's optional ``deadline_s``).  ``POST
/v1/jobs/<id>/cancel`` or a lapsed deadline flips it; the sweep /
parallel / executor chunk boundaries and the simulator watchdog
observe it and unwind with :class:`~repro.errors.CancelledError`.  A
cancelled job reaches the terminal ``cancelled`` state, frees its
admission slot, journals partial progress (resumable via the service's
``journal_dir``), and never touches the result cache.

A cold run wires a :class:`~repro.obs.ledger.MemoryLedger` and a
callback-only :class:`~repro.obs.progress.ProgressReporter` into the
existing ``Sweep.run`` / ``DesignSpaceExplorer.explore`` machinery, so
the job's event stream *is* the ledger the batch tooling already
emits.  The result document is serialized once, canonically; the cache
stores that text and the result endpoint returns it verbatim — warm
responses are byte-identical to cold ones by construction.

The evaluation-count probe: ``stats["evaluations"]`` counts actual
workload-function calls (via :class:`_CountingEvaluate`) and explored
points; tests assert a warm hit leaves it untouched.
"""

from __future__ import annotations

import itertools
import json
import re
import threading
import time
from concurrent.futures import ThreadPoolExecutor
from dataclasses import dataclass, field
from pathlib import Path

from repro.errors import CancelledError, ConfigurationError, ReproError
from repro.obs.ledger import MemoryLedger
from repro.obs.metrics import GLOBAL_METRICS, MetricsRegistry
from repro.obs.progress import ProgressReporter
from repro.obs.tracectx import TraceContext
from repro.serve.cache import ResultCache
from repro.serve.coalescer import RequestCoalescer
from repro.serve.resilience import (
    AdmissionController,
    CancelToken,
    CircuitBreaker,
    ResilienceConfig,
)
from repro.serve.protocol import (
    RequestError,
    SCHEMA_VERSION,
    canonical_json,
    error_envelope,
    ok_envelope,
    parse_job,
)

#: Longest the status endpoint's ``wait_s`` query may block.
MAX_WAIT_S = 60.0


def _metrics_document(metrics) -> dict:
    """A SolutionMetrics as a plain JSON-able dict."""
    import dataclasses

    return dataclasses.asdict(metrics)


class _CountingEvaluate:
    """Wraps a workload so every evaluation increments a shared count.

    The probe behind the cache-correctness acceptance criterion: a
    warm-cache response must leave the count unchanged, proving no
    point was re-evaluated.
    """

    def __init__(self, fn, counter) -> None:
        self._fn = fn
        self._counter = counter

    def __call__(self, **params):
        self._counter()
        return self._fn(**params)


@dataclass
class JobRecord:
    """One submitted job's full lifecycle state."""

    job_id: str
    spec: object
    fingerprint: str
    status: str = "queued"  # queued | running | done | failed | cancelled
    cached: bool = False
    coalesced_with: str | None = None
    result_text: str | None = None
    error: dict | None = None
    progress: dict | None = None
    events: list = field(default_factory=list)
    followers: list = field(default_factory=list)
    done_event: threading.Event = field(default_factory=threading.Event)
    cancel_token: CancelToken | None = None
    trace: TraceContext | None = None

    @property
    def finished(self) -> bool:
        return self.status in ("done", "failed", "cancelled")


class ExplorationService:
    """Executes validated jobs with caching and coalescing.

    Attributes:
        cache: Content-addressed result store (shared across clients,
            optionally persistent).
        coalescer: In-flight de-duplicator.
        stats: Counters — ``submitted``, ``executions`` (cold runs
            actually performed), ``cache_hits``, ``evaluations``
            (workload calls + explored points), ``shed`` (submissions
            rejected 429), ``cancelled`` (jobs reaching the cancelled
            terminal state), plus ``serve.coalesced`` via the
            coalescer.
        resilience: The :class:`ResilienceConfig` in force, or None
            when overload protection is disabled (``resilience=False``).
        admission: The :class:`AdmissionController` (None when
            disabled).
        breakers: The :class:`CircuitBreaker` registry (None when
            disabled).
        journal_dir: Directory for per-job sweep journals.  When set,
            cold sweep jobs checkpoint per-point results there; a
            cancelled job's journal is kept so a resubmission resumes
            from the completed prefix, a finished job's is deleted
            (the cache owns complete results).
    """

    def __init__(
        self,
        cache: ResultCache | None = None,
        max_workers: int = 4,
        max_wait_s: float = MAX_WAIT_S,
        resilience: ResilienceConfig | None | bool = None,
        journal_dir=None,
        tracing: bool = True,
    ) -> None:
        if max_workers < 1:
            raise ConfigurationError("max_workers must be >= 1")
        self.cache = cache if cache is not None else ResultCache()
        self.coalescer = RequestCoalescer()
        self.max_wait_s = max_wait_s
        if resilience is None or resilience is True:
            resilience = ResilienceConfig()
        elif resilience is False:
            resilience = None
        self.resilience = resilience
        self.admission = (
            AdmissionController(resilience) if resilience else None
        )
        self.breakers = CircuitBreaker(resilience) if resilience else None
        self.journal_dir = Path(journal_dir) if journal_dir else None
        self.tracing = bool(tracing)
        # Per-instance registry for service telemetry (job latency
        # histograms); always enabled — unlike GLOBAL_METRICS it never
        # sits on a hot evaluation path, only on job boundaries.
        self.metrics = MetricsRegistry(enabled=True)
        self._executor = ThreadPoolExecutor(
            max_workers=max_workers, thread_name_prefix="repro-serve"
        )
        self._lock = threading.Lock()
        self._jobs: dict = {}
        self._ids = itertools.count(1)
        self.stats = {
            "submitted": 0,
            "executions": 0,
            "cache_hits": 0,
            "evaluations": 0,
            "shed": 0,
            "cancelled": 0,
        }

    # -- lifecycle -----------------------------------------------------------

    def close(self) -> None:
        self._executor.shutdown(wait=True, cancel_futures=True)

    def __enter__(self) -> "ExplorationService":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    # -- submission ----------------------------------------------------------

    def submit(self, payload) -> dict:
        """Validate and admit one job; returns the submit response.

        Raises :class:`RequestError` 429 ``overloaded`` when admission
        is full and 503 ``circuit_open`` when the workload's breaker is
        open — both carry ``retry_after_s`` in the error envelope, and
        neither registers a job record.
        """
        spec = parse_job(payload)
        fingerprint = spec.fingerprint()
        with self._lock:
            job = JobRecord(
                job_id=f"job-{next(self._ids)}",
                spec=spec,
                fingerprint=fingerprint,
            )
            cached_text = self.cache.get(fingerprint)
            execute = False
            if cached_text is not None:
                self.stats["cache_hits"] += 1
                job.cached = True
                job.result_text = cached_text
                job.status = "done"
                job.events.append(
                    {"kind": "cache_hit", "fingerprint": fingerprint}
                )
                job.done_event.set()
            else:
                primary = self.coalescer.admit(fingerprint, job)
                if primary is not None:
                    job.coalesced_with = primary.job_id
                else:
                    try:
                        self._check_capacity(self._breaker_key(spec))
                    except RequestError:
                        self.coalescer.release(fingerprint, job)
                        raise
                    job.cancel_token = CancelToken(
                        deadline_s=spec.deadline_s
                    )
                    if self.tracing:
                        # Root of the distributed trace: every ledger
                        # event, work-queue chunk and simulator trace
                        # event this job fans out to carries this
                        # trace_id.  Identity only — never part of the
                        # fingerprint or the result document.
                        job.trace = TraceContext.root()
                    execute = True
            self._jobs[job.job_id] = job
            self.stats["submitted"] += 1
            if execute:
                self._executor.submit(self._execute, job)
        return ok_envelope(
            job_id=job.job_id,
            status=self.status_of(job),
            fingerprint=fingerprint,
            kind=spec.kind,
            cached=job.cached,
            coalesced_with=job.coalesced_with,
        )

    def status_of(self, job: JobRecord) -> str:
        if job.coalesced_with is not None and not job.finished:
            primary = self._jobs.get(job.coalesced_with)
            if primary is not None:
                return primary.status
        return job.status

    # -- overload protection -------------------------------------------------

    @staticmethod
    def _breaker_key(spec) -> str:
        """Admission/breaker bucket: the workload name, or ``explore``."""
        return spec.workload if spec.kind == "sweep" else "explore"

    def _check_capacity(self, key: str) -> None:
        """Claim an admission slot for ``key`` or raise 429/503.

        Admission is claimed *before* the breaker is consulted so a
        half-open probe admitted by the breaker can never be shed
        afterwards (which would strand the breaker half-open with no
        probe in flight); a breaker rejection releases the slot again.
        """
        if self.admission is not None:
            if not self.admission.try_admit(key):
                self.stats["shed"] += 1
                if GLOBAL_METRICS.enabled:
                    GLOBAL_METRICS.counter("serve.shed").inc()
                raise RequestError(
                    f"service at capacity "
                    f"(depth {self.admission.depth}/"
                    f"{self.resilience.max_depth}); retry later",
                    code="overloaded",
                    http_status=429,
                    extra={
                        "retry_after_s": self.resilience.shed_retry_after_s
                    },
                )
            if GLOBAL_METRICS.enabled:
                GLOBAL_METRICS.gauge("serve.queue_depth").set(
                    self.admission.depth
                )
        if self.breakers is not None:
            allowed, retry_after_s = self.breakers.allow(key)
            if not allowed:
                if self.admission is not None:
                    self.admission.release(key)
                if GLOBAL_METRICS.enabled:
                    GLOBAL_METRICS.counter("serve.breaker_rejected").inc()
                raise RequestError(
                    f"circuit breaker open for workload {key!r}; "
                    f"retry later",
                    code="circuit_open",
                    http_status=503,
                    extra={"retry_after_s": round(retry_after_s, 3)},
                )

    def cancel_job(self, job_id: str, reason: str = "client_cancel") -> dict:
        """Request cooperative cancellation of a job (idempotent).

        A coalesced follower is detached immediately (the primary and
        its other followers keep running); a cold primary has its
        token flipped and unwinds at the next chunk/watchdog boundary.
        A finished job reports ``cancelled: false`` with its terminal
        status.
        """
        with self._lock:
            job = self._job(job_id)
            if job.finished:
                return ok_envelope(
                    job_id=job.job_id,
                    status=self.status_of(job),
                    cancelled=False,
                )
            if job.coalesced_with is not None:
                job.status = "cancelled"
                job.error = {
                    "code": "cancelled",
                    "message": f"job cancelled ({reason})",
                }
                job.done_event.set()
                self.stats["cancelled"] += 1
                return ok_envelope(
                    job_id=job.job_id, status="cancelled", cancelled=True
                )
            token = job.cancel_token
        if token is None:
            return ok_envelope(
                job_id=job.job_id,
                status=self.status_of(job),
                cancelled=False,
            )
        token.cancel(reason)
        return ok_envelope(
            job_id=job.job_id, status=self.status_of(job), cancelled=True
        )

    def readyz_document(self) -> tuple:
        """``(http_status, payload)`` for ``GET /v1/readyz``.

        503 once the admission queue is full — load balancers should
        stop routing here; 200 otherwise.  The payload carries the
        admission and breaker snapshots either way.
        """
        admission = (
            self.admission.snapshot() if self.admission is not None else None
        )
        breakers = (
            self.breakers.snapshot() if self.breakers is not None else None
        )
        ready = True
        if admission is not None and admission["depth"] >= admission[
            "max_depth"
        ]:
            ready = False
        payload = ok_envelope(
            ready=ready,
            admission=admission,
            breakers=breakers,
            in_flight=self.coalescer.in_flight,
            shed=self.stats["shed"],
            cancelled=self.stats["cancelled"],
        )
        return (200 if ready else 503), payload

    # -- execution -----------------------------------------------------------

    def _count_evaluations(self, n: int = 1) -> None:
        with self._lock:
            self.stats["evaluations"] += n

    def _execute(self, job: JobRecord) -> None:
        key = self._breaker_key(job.spec)
        token = job.cancel_token
        started = None
        try:
            if token is not None and token.cancelled:
                # Cancelled (or deadline-expired) while queued behind
                # other jobs — never start the run.
                self._resolve_cancelled(job)
                return
            job.status = "running"
            started = time.perf_counter()
            tap = MemoryLedger(run_id=job.job_id, trace=job.trace)
            job.events = tap.events
            try:
                document = self._run_spec(job, tap)
                text = canonical_json(document)
            except CancelledError:
                self._resolve_cancelled(job)
                return
            except ReproError as error:
                if self.breakers is not None:
                    self.breakers.record_failure(key)
                self._resolve(job, error={
                    "code": "evaluation_failed",
                    "message": f"{type(error).__name__}: {error}",
                })
                return
            except Exception as error:  # noqa: BLE001 - jobs must not kill workers
                if self.breakers is not None:
                    self.breakers.record_failure(key)
                self._resolve(job, error={
                    "code": "internal_error",
                    "message": f"{type(error).__name__}: {error}",
                })
                return
            if self.breakers is not None:
                self.breakers.record_success(key)
            self.cache.put(job.fingerprint, text)
            with self._lock:
                self.stats["executions"] += 1
            self._resolve(job, text=text)
        finally:
            if started is not None:
                self.metrics.histogram(f"serve.job_ms.{key}").record(
                    (time.perf_counter() - started) * 1e3
                )
            if self.admission is not None:
                self.admission.release(key)
                if GLOBAL_METRICS.enabled:
                    GLOBAL_METRICS.gauge("serve.queue_depth").set(
                        self.admission.depth
                    )

    def _resolve_cancelled(self, job: JobRecord) -> None:
        """Move a cold primary (and its followers) to ``cancelled``.

        Not a breaker failure (the workload did nothing wrong) — but a
        cancelled half-open probe re-opens the breaker so it is not
        stranded waiting for a probe verdict that will never come.
        The result cache is never touched; a journaled partial stays
        on disk for resumption.
        """
        token = job.cancel_token
        reason = (token.reason if token is not None else None) or "cancelled"
        if self.breakers is not None:
            self.breakers.record_cancelled(self._breaker_key(job.spec))
        if GLOBAL_METRICS.enabled:
            GLOBAL_METRICS.counter("serve.cancelled").inc()
        job.events.append(
            {"kind": "cancelled", "reason": reason, "partial": job.progress}
        )
        with self._lock:
            self.stats["cancelled"] += 1
        self._resolve(
            job,
            error={
                "code": "cancelled",
                "message": f"job cancelled ({reason})",
            },
            status="cancelled",
        )

    def _resolve(
        self,
        job: JobRecord,
        text: str | None = None,
        error=None,
        status: str | None = None,
    ) -> None:
        if status is None:
            status = "done" if error is None else "failed"
        followers = self.coalescer.release(job.fingerprint, job)
        for record in (job, *followers):
            if record.finished:
                continue
            record.result_text = text
            record.error = error
            record.status = status
            record.done_event.set()

    def _run_spec(self, job: JobRecord, tap: MemoryLedger) -> dict:
        spec = job.spec
        if spec.kind == "sweep":
            return self._run_sweep(job, spec, tap)
        return self._run_explore(spec, tap)

    def _run_sweep(self, job: JobRecord, spec, tap: MemoryLedger) -> dict:
        from repro.core.pareto import pareto_frontier
        from repro.core.sweep import Sweep
        from repro.serve.workloads import get_workload

        def on_progress(reporter: ProgressReporter) -> None:
            job.progress = {
                "done": reporter.done,
                "failed": reporter.failed,
                "total": reporter.total,
            }
            tap.event(
                "progress",
                done=reporter.done,
                failed=reporter.failed,
                total=reporter.total,
            )

        sweep = Sweep(axes=dict(spec.axes))
        workers = getattr(spec, "workers", 0)
        parallel = None
        if workers >= 2:
            # The `workers:` execution hint fans the sweep across a
            # local process pool.  The raw workload function goes to
            # the pool (it is module-level, hence picklable; the
            # counting wrapper holds service state and is not — it
            # would silently force the serial path), so the
            # evaluation-count probe is credited wholesale after the
            # run instead of per call.  `workers` is excluded from the
            # job fingerprint: the result document is byte-identical
            # to the serial run's, so both share one cache entry.
            from repro.core.parallel import ParallelConfig

            parallel = ParallelConfig(workers=workers)
            evaluate = get_workload(spec.workload)
        else:
            evaluate = _CountingEvaluate(
                get_workload(spec.workload), self._count_evaluations
            )
        reporter = ProgressReporter(
            total=sweep.n_points, enabled=False, callback=on_progress
        )
        journal = None
        if self.journal_dir is not None:
            # One journal per fingerprint: a cancelled job leaves its
            # completed prefix behind, and an identical resubmission
            # resumes from it instead of re-evaluating.
            self.journal_dir.mkdir(parents=True, exist_ok=True)
            journal = self.journal_dir / f"{job.fingerprint}.jsonl"
        outcome = sweep.run(
            evaluate,
            skip_errors=spec.skip_errors,
            ledger=tap,
            progress=reporter,
            parallel=parallel,
            journal=journal,
            cancel=job.cancel_token,
        )
        if journal is not None:
            # Complete: the cache owns the canonical result from here.
            try:
                journal.unlink()
            except OSError:
                pass
        if parallel is not None:
            self._count_evaluations(sweep.n_points)
        points = [
            {"parameters": point.parameters, "result": point.result}
            for point in outcome.points
        ]
        document = {
            "kind": "sweep",
            "schema_version": SCHEMA_VERSION,
            "workload": spec.workload,
            "n_points": sweep.n_points,
            "n_ok": len(outcome.points),
            "n_failed": len(outcome.failures),
            "points": points,
            "failures": [
                {
                    "parameters": failure.parameters,
                    "error": str(failure.error),
                }
                for failure in outcome.failures
            ],
        }
        # Workloads that publish an `objectives` vector get the Pareto
        # pass for free: the frontier over successful points, returned
        # as indices into `points`.
        if points and all(
            isinstance(p["result"], dict) and "objectives" in p["result"]
            for p in points
        ):
            indexed = list(enumerate(points))
            frontier = pareto_frontier(
                indexed,
                objectives=lambda pair: pair[1]["result"]["objectives"],
            )
            document["frontier_indices"] = sorted(
                index for index, _ in frontier
            )
        return document

    def _run_explore(self, spec, tap: MemoryLedger) -> dict:
        from repro.core.explorer import DesignSpaceExplorer

        kwargs = {"batch": spec.backend == "batched"}
        if spec.widths is not None:
            kwargs["widths"] = spec.widths
        if spec.bank_options is not None:
            kwargs["bank_options"] = spec.bank_options
        explorer = DesignSpaceExplorer(**kwargs)
        result = explorer.explore(spec.to_requirements(), ledger=tap)
        self._count_evaluations(result.n_explored)
        return {
            "kind": "explore",
            "schema_version": SCHEMA_VERSION,
            "application": result.requirements.name,
            "backend": spec.backend,
            "n_explored": result.n_explored,
            "n_feasible": len(result.feasible),
            "frontier": [
                _metrics_document(metrics) for metrics in result.frontier
            ],
            "discrete_baseline": (
                _metrics_document(result.discrete_baseline)
                if result.discrete_baseline is not None
                else None
            ),
            "best": (
                {
                    "min_power": result.min_power.label,
                    "min_area": result.min_area.label,
                    "min_cost": result.min_cost.label,
                }
                if result.feasible
                else None
            ),
        }

    # -- queries -------------------------------------------------------------

    def _job(self, job_id: str) -> JobRecord:
        job = self._jobs.get(job_id)
        if job is None:
            raise RequestError(
                f"no such job {job_id!r}", code="not_found", http_status=404
            )
        return job

    def wait(self, job_id: str, timeout_s: float | None = None) -> bool:
        """Block until the job finishes (True) or the timeout lapses."""
        return self._job(job_id).done_event.wait(timeout_s)

    def status(self, job_id: str) -> dict:
        job = self._job(job_id)
        return ok_envelope(
            job_id=job.job_id,
            kind=job.spec.kind,
            status=self.status_of(job),
            fingerprint=job.fingerprint,
            cached=job.cached,
            coalesced_with=job.coalesced_with,
            progress=job.progress,
            error=job.error,
        )

    def result_text(self, job_id: str) -> str:
        """The canonical result document text (exact cached bytes)."""
        job = self._job(job_id)
        if not job.finished:
            raise RequestError(
                f"job {job_id} is {self.status_of(job)}; result not ready",
                code="not_ready",
                http_status=409,
            )
        if job.status == "cancelled":
            error = job.error or {}
            raise RequestError(
                error.get("message", "job cancelled"),
                code="cancelled",
                http_status=409,
            )
        if job.status == "failed":
            error = job.error or {}
            raise RequestError(
                error.get("message", "job failed"),
                code=error.get("code", "job_failed"),
                http_status=500,
            )
        return job.result_text

    def result(self, job_id: str) -> dict:
        # The envelope contains nothing job-specific beyond the
        # fingerprint, so identical jobs — cold, warm or coalesced —
        # serialize to identical bytes.
        job = self._job(job_id)
        return ok_envelope(
            fingerprint=job.fingerprint,
            result=json.loads(self.result_text(job_id)),
        )

    def report(self, job_id: str, top: int = 10) -> dict:
        from repro.reporting.runreport import job_report_markdown

        job = self._job(job_id)
        if not job.finished:
            raise RequestError(
                f"job {job_id} is {self.status_of(job)}; report not ready",
                code="not_ready",
                http_status=409,
            )
        events = self.job_events(job)
        trace = job.trace
        if trace is None and job.coalesced_with is not None:
            primary = self._jobs.get(job.coalesced_with)
            if primary is not None:
                trace = primary.trace
        return ok_envelope(
            job_id=job.job_id,
            status=job.status,
            cached=job.cached,
            trace_id=trace.trace_id if trace is not None else None,
            markdown=job_report_markdown(events, top=top),
        )

    def job_events(self, job: JobRecord) -> list:
        """The job's event list (a follower reads its primary's)."""
        if job.coalesced_with is not None:
            primary = self._jobs.get(job.coalesced_with)
            if primary is not None:
                return primary.events
        return job.events

    def events_since(self, job_id: str, cursor: int) -> tuple:
        """``(new events, finished)`` for SSE polling from ``cursor``."""
        job = self._job(job_id)
        events = self.job_events(job)
        return events[cursor:], job.finished

    def stats_document(self) -> dict:
        with self._lock:
            counters = dict(self.stats)
        return ok_envelope(
            jobs=len(self._jobs),
            in_flight=self.coalescer.in_flight,
            coalesced=self.coalescer.coalesced,
            cache=self.cache.stats(),
            admission=(
                self.admission.snapshot()
                if self.admission is not None
                else None
            ),
            breakers=(
                self.breakers.snapshot()
                if self.breakers is not None
                else None
            ),
            **counters,
        )

    def metrics_text(self) -> str:
        """Prometheus exposition of the full service telemetry surface.

        Scrape-time assembly: the per-instance registry contributes the
        job-latency histograms; everything else (queue depth, breaker
        states, cache ratio, job counts) is sampled from the live
        snapshots so the gauges can never drift from the actual state.
        Served at ``GET /v1/metrics`` and by ``repro metrics``.
        """
        from repro.obs.expo import render_prometheus

        with self._lock:
            counters = dict(self.stats)
            jobs_by_status: dict = {}
            workload_keys = set()
            for job in self._jobs.values():
                status = job.status
                jobs_by_status[status] = jobs_by_status.get(status, 0) + 1
                workload_keys.add(self._breaker_key(job.spec))
        extra = [
            {
                "name": f"serve.{name}",
                "value": counters[name],
                "type": "counter",
            }
            for name in sorted(counters)
        ]
        for status in sorted(jobs_by_status):
            extra.append(
                {
                    "name": "serve.jobs",
                    "value": jobs_by_status[status],
                    "labels": {"status": status},
                }
            )
        extra.append(
            {"name": "serve.in_flight", "value": self.coalescer.in_flight}
        )
        extra.append(
            {
                "name": "serve.coalesced",
                "value": self.coalescer.coalesced,
                "type": "counter",
            }
        )
        cache = self.cache.stats()
        lookups = cache["hits"] + cache["misses"]
        extra.append(
            {"name": "serve.cache_entries", "value": cache["entries"]}
        )
        extra.append(
            {
                "name": "serve.cache_hit_ratio",
                "value": (cache["hits"] / lookups) if lookups else 0.0,
            }
        )
        if self.admission is not None:
            snapshot = self.admission.snapshot()
            extra.append(
                {"name": "serve.queue_depth", "value": snapshot["depth"]}
            )
            extra.append(
                {
                    "name": "serve.queue_depth_limit",
                    "value": snapshot["max_depth"],
                }
            )
            for key in sorted(snapshot["per_workload"]):
                extra.append(
                    {
                        "name": "serve.workload_depth",
                        "value": snapshot["per_workload"][key],
                        "labels": {"workload": key},
                    }
                )
        if self.breakers is not None:
            snapshot = self.breakers.snapshot()
            extra.append(
                {
                    "name": "serve.breaker_opened",
                    "value": snapshot["opened"],
                    "type": "counter",
                }
            )
            extra.append(
                {
                    "name": "serve.breaker_rejected",
                    "value": snapshot["rejected"],
                    "type": "counter",
                }
            )
            # The snapshot only lists workloads with failure history;
            # every workload the service has seen still gets a series
            # (healthy reads as closed=1).
            for key in sorted(workload_keys | set(snapshot["states"])):
                # One-hot per state so dashboards can sum/alert without
                # decoding an enum value.
                state = snapshot["states"].get(key, "closed")
                for candidate in ("closed", "open", "half_open"):
                    extra.append(
                        {
                            "name": "serve.breaker_state",
                            "value": 1 if state == candidate else 0,
                            "labels": {"workload": key, "state": candidate},
                        }
                    )
        return render_prometheus(
            self.metrics.snapshot(),
            extra=extra,
            labels_from={"serve.job_ms": "workload"},
        )


# -- routing -----------------------------------------------------------------

_JOB_PATH = re.compile(
    r"^/v1/jobs/(?P<job_id>[A-Za-z0-9_-]+)"
    r"(?:/(?P<leaf>result|report|events|cancel))?$"
)

#: Paths that exist (for 405-vs-404 discrimination).
_KNOWN_FIXED_PATHS = {
    "/v1/jobs",
    "/v1/healthz",
    "/v1/readyz",
    "/v1/stats",
    "/v1/metrics",
}


def parse_wait_s(query: str) -> float | None:
    """``wait_s`` from a query string, validated and capped."""
    if not query:
        return None
    for part in query.split("&"):
        key, _, raw = part.partition("=")
        if key != "wait_s":
            continue
        try:
            wait_s = float(raw)
        except ValueError:
            raise RequestError(
                f"wait_s must be a number, got {raw!r}"
            ) from None
        if wait_s < 0:
            raise RequestError("wait_s must be >= 0")
        return min(wait_s, MAX_WAIT_S)
    return None


def route(service: ExplorationService, method: str, path: str, body=None):
    """Dispatch one request; returns ``(http_status, payload dict)``.

    The single entry point shared by the socket server and the
    in-process test client.  ``body`` is the decoded JSON payload (or
    None); JSON decoding errors belong to the transport layer.
    """
    try:
        return _route(service, method, path, body)
    except RequestError as error:
        return error.http_status, error_envelope(
            error.code, str(error), **error.extra
        )


def _route(service, method, path, body):
    path, _, query = path.partition("?")
    if path == "/v1/jobs":
        if method != "POST":
            raise _method_not_allowed(method, path)
        return 200, service.submit(body)
    match = _JOB_PATH.match(path)
    if match is not None:
        job_id = match.group("job_id")
        leaf = match.group("leaf")
        if leaf == "cancel":
            if method != "POST":
                raise _method_not_allowed(method, path)
            return 200, service.cancel_job(job_id)
        if method != "GET":
            raise _method_not_allowed(method, path)
        if leaf is None:
            wait_s = parse_wait_s(query)
            if wait_s is not None:
                service.wait(job_id, wait_s)
            return 200, service.status(job_id)
        if leaf == "result":
            return 200, service.result(job_id)
        if leaf == "report":
            return 200, service.report(job_id)
        # SSE is transport-level; the in-process client polls instead.
        events, finished = service.events_since(job_id, 0)
        return 200, ok_envelope(
            job_id=job_id, events=events, finished=finished
        )
    if path == "/v1/healthz":
        if method != "GET":
            raise _method_not_allowed(method, path)
        return 200, ok_envelope(status="healthy", jobs=len(service._jobs))
    if path == "/v1/readyz":
        if method != "GET":
            raise _method_not_allowed(method, path)
        return service.readyz_document()
    if path == "/v1/stats":
        if method != "GET":
            raise _method_not_allowed(method, path)
        return 200, service.stats_document()
    raise RequestError(
        f"no such endpoint {path!r}", code="not_found", http_status=404
    )


def _method_not_allowed(method: str, path: str) -> RequestError:
    return RequestError(
        f"method {method} not allowed on {path}",
        code="method_not_allowed",
        http_status=405,
    )
