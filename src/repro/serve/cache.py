"""Content-addressed result store: memory LRU + optional JSONL spill.

The store maps a job fingerprint (sha256 of the canonical job document,
:mod:`repro.serve.protocol`) to the *canonical result text* — the exact
bytes a cold execution serialized.  Storing text rather than objects is
what makes the cache-correctness contract checkable: a warm response is
byte-identical to the cold one because it literally is the same string,
not a re-serialization that might reorder keys or reformat floats.

Persistence is a dumb append-only JSONL file (one ``{"fingerprint",
"result"}`` record per line): crash-safe by construction, merged on
open with last-record-wins, shared between server restarts.  Eviction
only trims the in-memory map; the spill file keeps everything (it is a
cache of pure functions — entries never become wrong, only cold).
"""

from __future__ import annotations

import json
import threading
from collections import OrderedDict
from pathlib import Path

from repro.errors import ConfigurationError


class ResultCache:
    """Thread-safe LRU of fingerprint -> canonical result text.

    Attributes:
        maxsize: In-memory entry cap (LRU eviction beyond it).
        path: Optional JSONL spill file (loaded on construction,
            appended on every store).
        hits / misses / evictions: Running counters, surfaced by the
            service's ``/v1/stats`` endpoint.
    """

    def __init__(self, maxsize: int = 256, path=None) -> None:
        if maxsize < 1:
            raise ConfigurationError("cache maxsize must be >= 1")
        self.maxsize = maxsize
        self.path = Path(path) if path is not None else None
        self.hits = 0
        self.misses = 0
        self.evictions = 0
        self._lock = threading.Lock()
        self._entries: OrderedDict = OrderedDict()
        if self.path is not None and self.path.exists():
            self._load()

    def _load(self) -> None:
        with open(self.path, "r", encoding="utf-8") as handle:
            for line in handle:
                if not line.strip():
                    continue
                try:
                    record = json.loads(line)
                except json.JSONDecodeError:
                    continue  # torn tail from an interrupted append
                fingerprint = record.get("fingerprint")
                result = record.get("result")
                if isinstance(fingerprint, str) and isinstance(result, str):
                    self._insert(fingerprint, result)

    def _insert(self, fingerprint: str, text: str) -> None:
        self._entries[fingerprint] = text
        self._entries.move_to_end(fingerprint)
        while len(self._entries) > self.maxsize:
            self._entries.popitem(last=False)
            self.evictions += 1

    def get(self, fingerprint: str):
        """The stored result text, or None; refreshes LRU recency."""
        with self._lock:
            text = self._entries.get(fingerprint)
            if text is None:
                self.misses += 1
                return None
            self._entries.move_to_end(fingerprint)
            self.hits += 1
            return text

    def put(self, fingerprint: str, text: str) -> None:
        """Store a result; appends to the spill file when configured."""
        if not isinstance(text, str):
            raise ConfigurationError("cache stores canonical text only")
        with self._lock:
            self._insert(fingerprint, text)
            if self.path is not None:
                record = {"fingerprint": fingerprint, "result": text}
                with open(self.path, "a", encoding="utf-8") as handle:
                    handle.write(json.dumps(record) + "\n")

    def __len__(self) -> int:
        with self._lock:
            return len(self._entries)

    def __contains__(self, fingerprint: str) -> bool:
        with self._lock:
            return fingerprint in self._entries

    def stats(self) -> dict:
        with self._lock:
            return {
                "entries": len(self._entries),
                "maxsize": self.maxsize,
                "hits": self.hits,
                "misses": self.misses,
                "evictions": self.evictions,
                "persistent": self.path is not None,
            }
