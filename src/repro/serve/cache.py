"""Content-addressed result cache for the exploration service.

The cache maps a job fingerprint (sha256 of the canonical job document,
:mod:`repro.serve.protocol`) to the *canonical result text* — the exact
bytes a cold execution serialized.  Storing text rather than objects is
what makes the cache-correctness contract checkable: a warm response is
byte-identical to the cold one because it literally is the same string,
not a re-serialization that might reorder keys or reformat floats.

Since PR 8 the implementation is the durable, content-addressed
:class:`~repro.core.store.ResultStore` with an LRU bound: the JSONL
spill is loaded on open (last record wins, torn tails skipped) and
**compacted** — rewritten through a temp file and ``os.replace`` — when
dead records (superseded duplicates, LRU-evicted entries) dominate.
The old append-only spill grew without bound and resurrected evicted
keys on restart; now the spill always converges back to the live LRU
set, in recency order, so a restart reconstructs exactly the entries
the cache would have kept in memory.
"""

from __future__ import annotations

from repro.core.store import ResultStore
from repro.errors import ConfigurationError


class ResultCache(ResultStore):
    """Thread-safe LRU of fingerprint -> canonical result text.

    Attributes:
        maxsize: In-memory entry cap (LRU eviction beyond it; the
            spill is compacted to match, so eviction is durable).
        path: Optional JSONL spill file (loaded on construction,
            appended on every store, compacted when dead records
            accumulate).
        hits / misses / evictions: Running counters, surfaced by the
            service's ``/v1/stats`` endpoint.
    """

    def __init__(self, maxsize: int = 256, path=None) -> None:
        if maxsize < 1:
            raise ConfigurationError("cache maxsize must be >= 1")
        super().__init__(path=path, maxsize=maxsize)
