"""Clients for the exploration service: HTTP and in-process.

:class:`ServeClient` speaks to a live socket server over
``http.client`` (stdlib, blocking — matches the CLI's needs).
:class:`InProcessClient` presents the identical interface but calls
:func:`repro.serve.handlers.route` directly against a service instance:
the contract-test fixture, the fuzz harness and the benchmark all use
it to exercise the exact wire-dispatch path without a socket.

Both expose the raw ``request`` primitive — returning ``(status,
payload)`` without raising on 4xx/5xx, which contract tests need — and
convenience wrappers (``submit``/``wait``/``result``/…) that raise
:class:`ServeClientError` on any non-2xx, which scripts want.
"""

from __future__ import annotations

import http.client
import json
import random
import time
import urllib.parse

from repro.errors import ReproError
from repro.serve.handlers import route


class ServeClientError(ReproError):
    """A service call returned a non-2xx response.

    Attributes:
        status: HTTP status code.
        payload: Decoded error envelope (when the body was JSON).
    """

    def __init__(self, status: int, payload) -> None:
        error = (payload or {}).get("error", {})
        message = error.get("message", "request failed")
        code = error.get("code", "error")
        super().__init__(f"[{status} {code}] {message}")
        self.status = status
        self.payload = payload


class _ClientCore:
    """Shared convenience layer over a ``request`` primitive."""

    def request(self, method: str, path: str, payload=None) -> tuple:
        raise NotImplementedError

    def _call(self, method: str, path: str, payload=None) -> dict:
        status, response = self.request(method, path, payload)
        if status != 200:
            raise ServeClientError(status, response)
        return response

    def submit(self, job: dict) -> dict:
        return self._call("POST", "/v1/jobs", job)

    def status(self, job_id: str, wait_s: float | None = None) -> dict:
        path = f"/v1/jobs/{job_id}"
        if wait_s is not None:
            path += f"?wait_s={wait_s}"
        return self._call("GET", path)

    def result(self, job_id: str) -> dict:
        return self._call("GET", f"/v1/jobs/{job_id}/result")

    def report(self, job_id: str) -> dict:
        return self._call("GET", f"/v1/jobs/{job_id}/report")

    def stats(self) -> dict:
        return self._call("GET", "/v1/stats")

    def healthz(self) -> dict:
        return self._call("GET", "/v1/healthz")

    def readyz(self) -> dict:
        """Readiness snapshot; a 503 (over capacity) still returns the
        document — not-ready is an answer, not a failure."""
        status, payload = self.request("GET", "/v1/readyz")
        if status not in (200, 503):
            raise ServeClientError(status, payload)
        return payload

    def cancel(self, job_id: str) -> dict:
        """Request cooperative cancellation of a running job."""
        return self._call("POST", f"/v1/jobs/{job_id}/cancel")

    def wait(
        self, job_id: str, timeout_s: float = 60.0, poll_s: float = 0.05
    ) -> dict:
        """Block until the job finishes; returns its final status.

        Polls with exponential backoff (``poll_s`` doubling to at most
        1 s, jittered) on top of the server's long-poll ``wait_s`` —
        a long-running job costs a bounded handful of requests, and a
        thundering herd of waiters decorrelates instead of beating on
        the service in lockstep.
        """
        deadline = time.monotonic() + timeout_s
        delay = max(poll_s, 1e-4)
        while True:
            remaining = deadline - time.monotonic()
            if remaining <= 0:
                raise ServeClientError(
                    409,
                    {
                        "error": {
                            "code": "timeout",
                            "message": f"job {job_id} still running "
                            f"after {timeout_s}s",
                        }
                    },
                )
            status = self.status(job_id, wait_s=min(remaining, 5.0))
            if status["status"] in ("done", "failed", "cancelled"):
                return status
            time.sleep(min(remaining, delay * random.uniform(0.5, 1.0)))
            delay = min(delay * 2.0, 1.0)

    def run(self, job: dict, timeout_s: float = 60.0) -> dict:
        """Submit, wait, and return the result envelope.

        A 429 ``overloaded`` rejection is retried until ``timeout_s``
        runs out, sleeping the server-suggested ``retry_after_s``
        (jittered upward) between attempts; 503 ``circuit_open`` and
        every other error propagate immediately.
        """
        deadline = time.monotonic() + timeout_s
        while True:
            try:
                submitted = self.submit(job)
                break
            except ServeClientError as error:
                if error.status != 429:
                    raise
                retry_after = float(
                    ((error.payload or {}).get("error") or {}).get(
                        "retry_after_s", 0.05
                    )
                )
                pause = retry_after * random.uniform(1.0, 1.5)
                if time.monotonic() + pause >= deadline:
                    raise
                time.sleep(pause)
        job_id = submitted["job_id"]
        final = self.wait(
            job_id, timeout_s=max(0.0, deadline - time.monotonic())
        )
        if final["status"] == "failed":
            raise ServeClientError(500, final)
        if final["status"] == "cancelled":
            raise ServeClientError(409, final)
        return self.result(job_id)


class InProcessClient(_ClientCore):
    """Socketless client bound to an :class:`ExplorationService`."""

    def __init__(self, service) -> None:
        self.service = service

    def request(self, method: str, path: str, payload=None) -> tuple:
        return route(self.service, method, path, payload)

    def events(self, job_id: str, timeout_s: float = 60.0):
        """Yield the job's events, polling until it finishes."""
        deadline = time.monotonic() + timeout_s
        cursor = 0
        while time.monotonic() < deadline:
            events, finished = self.service.events_since(job_id, cursor)
            yield from events
            cursor += len(events)
            if finished and not events:
                return
            time.sleep(0.01)

    def metrics_text(self) -> str:
        """The Prometheus exposition text (no transport involved)."""
        return self.service.metrics_text()


class ServeClient(_ClientCore):
    """HTTP client for a live ``repro serve`` instance."""

    def __init__(self, base_url: str, timeout_s: float = 30.0) -> None:
        parsed = urllib.parse.urlsplit(base_url)
        if parsed.scheme not in ("http", ""):
            raise ServeClientError(
                400,
                {
                    "error": {
                        "code": "bad_url",
                        "message": f"only http:// supported, got {base_url!r}",
                    }
                },
            )
        self.host = parsed.hostname or "127.0.0.1"
        self.port = parsed.port or 8765
        self.timeout_s = timeout_s

    def request(self, method: str, path: str, payload=None) -> tuple:
        connection = http.client.HTTPConnection(
            self.host, self.port, timeout=self.timeout_s
        )
        try:
            body = None
            headers = {}
            if payload is not None:
                body = json.dumps(payload).encode("utf-8")
                headers["Content-Type"] = "application/json"
            connection.request(method, path, body=body, headers=headers)
            response = connection.getresponse()
            raw = response.read()
            try:
                decoded = json.loads(raw) if raw else None
            except json.JSONDecodeError:
                decoded = {"raw": raw.decode("utf-8", "replace")}
            return response.status, decoded
        finally:
            connection.close()

    def metrics_text(self) -> str:
        """Raw body of ``GET /v1/metrics`` (Prometheus text format)."""
        connection = http.client.HTTPConnection(
            self.host, self.port, timeout=self.timeout_s
        )
        try:
            connection.request("GET", "/v1/metrics")
            response = connection.getresponse()
            raw = response.read()
            if response.status != 200:
                raise ServeClientError(
                    response.status, json.loads(raw or b"{}")
                )
            return raw.decode("utf-8")
        finally:
            connection.close()

    def result_bytes(self, job_id: str) -> bytes:
        """The result endpoint's exact response body (byte-identity
        checks compare these across cold and warm requests)."""
        connection = http.client.HTTPConnection(
            self.host, self.port, timeout=self.timeout_s
        )
        try:
            connection.request("GET", f"/v1/jobs/{job_id}/result")
            response = connection.getresponse()
            raw = response.read()
            if response.status != 200:
                raise ServeClientError(
                    response.status, json.loads(raw or b"{}")
                )
            return raw
        finally:
            connection.close()

    def events(self, job_id: str, timeout_s: float = 60.0):
        """Yield decoded SSE events until the server's ``end`` frame."""
        connection = http.client.HTTPConnection(
            self.host, self.port, timeout=timeout_s
        )
        try:
            connection.request("GET", f"/v1/jobs/{job_id}/events")
            response = connection.getresponse()
            if response.status != 200:
                raise ServeClientError(
                    response.status, json.loads(response.read() or b"{}")
                )
            kind = None
            for raw_line in response:
                line = raw_line.decode("utf-8").rstrip("\n").rstrip("\r")
                if line.startswith("event: "):
                    kind = line[len("event: "):]
                elif line.startswith("data: "):
                    if kind == "end":
                        return
                    yield json.loads(line[len("data: "):])
        finally:
            connection.close()
