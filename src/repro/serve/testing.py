"""Test harness for the service: in-process fixtures, live servers.

Two levels of fidelity, both cheap:

* :func:`in_process_service` — a bare :class:`ExplorationService` plus
  :class:`InProcessClient`; contract/cache/concurrency tests live here
  because they exercise the same :func:`~repro.serve.handlers.route`
  dispatch the socket server uses, minus the socket.
* :func:`running_server` — a real asyncio server on an ephemeral port,
  driven from a background thread; socket-level tests (SSE framing, N
  HTTP clients hammering one server, the chaos test) use this.

Both are context managers so a failing test can never leak a thread or
an executor into the rest of the suite.
"""

from __future__ import annotations

import asyncio
import threading
from contextlib import contextmanager

from repro.errors import ConfigurationError
from repro.serve.client import InProcessClient, ServeClient
from repro.serve.handlers import ExplorationService
from repro.serve.server import ReproServer


@contextmanager
def in_process_service(
    cache=None,
    max_workers: int = 4,
    resilience=None,
    journal_dir=None,
    tracing: bool = True,
):
    """Yields ``(service, client)`` with guaranteed teardown.

    ``resilience`` and ``journal_dir`` forward to
    :class:`ExplorationService` — pass a
    :class:`~repro.serve.resilience.ResilienceConfig` to shrink
    admission capacity or speed up breaker cooldowns for a test.
    ``tracing=False`` disables trace-context minting, for pinning the
    off-by-default byte-identity contract.
    """
    service = ExplorationService(
        cache=cache,
        max_workers=max_workers,
        resilience=resilience,
        journal_dir=journal_dir,
        tracing=tracing,
    )
    try:
        yield service, InProcessClient(service)
    finally:
        service.close()


@contextmanager
def running_server(
    service: ExplorationService | None = None,
    startup_timeout_s: float = 10.0,
):
    """Boots a real server on port 0; yields ``(server, ServeClient)``.

    The event loop runs in a daemon thread; teardown stops the loop and
    joins the thread, closing the service (and its worker pool) with
    it.
    """
    server = ReproServer(service=service, host="127.0.0.1", port=0)
    started = threading.Event()
    failure: list = []
    loop_holder: list = []

    async def main() -> None:
        await server.start()
        loop_holder.append(asyncio.get_running_loop())
        started.set()
        try:
            await server.serve_forever()
        except asyncio.CancelledError:
            pass
        finally:
            await server.aclose()

    def runner() -> None:
        try:
            asyncio.run(main())
        except Exception as error:  # pragma: no cover - startup failures
            failure.append(error)
            started.set()

    thread = threading.Thread(
        target=runner, name="repro-serve-test", daemon=True
    )
    thread.start()
    if not started.wait(startup_timeout_s):
        raise ConfigurationError("server did not start in time")
    if failure:
        raise failure[0]
    host, port = server.address
    try:
        yield server, ServeClient(f"http://{host}:{port}")
    finally:
        loop = loop_holder[0]
        loop.call_soon_threadsafe(
            lambda: [task.cancel() for task in asyncio.all_tasks(loop)]
        )
        thread.join(timeout=10.0)
