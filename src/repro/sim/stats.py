"""Simulation statistics containers.

:class:`LatencyStats` is fully streaming: count, sum, min and max are
tracked exactly, percentiles come from a
:class:`~repro.obs.metrics.BoundedHistogram`, and an order-sensitive
rolling checksum stands in for the raw sample list in the differential
oracles.  Memory is therefore bounded no matter how many samples a
long-running simulation records (the seed implementation kept every
sample in a Python list and re-sorted it on each ``percentile`` call).

Percentile accuracy: exact (``np.percentile`` linear interpolation
semantics) while every sample is below the histogram's 4096-cycle exact
region; at most ~6.25% relative error for larger latencies.  Mean, min,
max and count are always exact.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.errors import ConfigurationError
from repro.obs.metrics import BoundedHistogram

#: 64-bit rolling-hash modulus/multiplier for the order-sensitive
#: sample checksum (the classic string-hash constants).
_CHECKSUM_MULTIPLIER = 1_000_003
_CHECKSUM_MASK = (1 << 64) - 1


@dataclass
class LatencyStats:
    """Streaming latency statistics (cycles)."""

    _hist: BoundedHistogram = field(
        default_factory=BoundedHistogram, init=False, repr=False
    )
    _checksum: int = field(default=0, init=False)

    def record(self, latency_cycles: int) -> None:
        if latency_cycles < 0:
            raise ConfigurationError(
                f"latency must be >= 0, got {latency_cycles}"
            )
        self._hist.record(latency_cycles)
        self._checksum = (
            self._checksum * _CHECKSUM_MULTIPLIER + latency_cycles + 1
        ) & _CHECKSUM_MASK

    @property
    def count(self) -> int:
        return self._hist.count

    @property
    def mean(self) -> float:
        return self._hist.mean

    @property
    def maximum(self) -> int:
        return self._hist.maximum if self._hist.count else 0

    @property
    def minimum(self) -> int:
        return self._hist.minimum if self._hist.count else 0

    def percentile(self, q: float) -> float:
        if not 0 <= q <= 100:
            raise ConfigurationError(f"percentile must be in [0, 100]: {q}")
        if self._hist.count == 0:
            return 0.0
        return self._hist.percentile(q)

    def digest(self) -> tuple:
        """Order-sensitive equality surface for differential checks.

        Two stats objects fed the same samples in the same order have
        equal digests; any reordering, dropped or altered sample changes
        the checksum.  This replaces comparing raw sample lists (which
        no longer exist) in :mod:`repro.verify.differential`.
        """
        return (
            self._hist.count,
            self._hist.total,
            self.minimum,
            self.maximum,
            self._checksum,
        )

    def histogram_snapshot(self) -> dict:
        """JSON-able histogram dump (see ``BoundedHistogram.to_dict``)."""
        return self._hist.to_dict()


@dataclass(frozen=True)
class SimulationResult:
    """Outcome of one simulation run.

    Attributes:
        cycles: Simulated cycles (after warm-up).
        clock_hz: Interface clock.
        word_bits: Interface word width.
        requests_completed: Retired requests.
        data_bits_transferred: Payload bits moved.
        peak_bandwidth_bits_per_s: Device peak.
        latency: Overall latency statistics (cycles).
        latency_by_client: Per-client latency statistics.
        row_hit_rate: Fraction of accesses hitting an open row.
        fifo_high_water: Per-client FIFO high-water marks.
        fifo_stall_cycles: Per-client stall (back-pressure) cycles.
        commands: Command counts by type name.
        refreshes: Refresh commands issued.
        bank_activations: Per-bank activation counts — the load-balance
            view the allocation problem (Section 3) optimizes.
        truncated: The watchdog stopped the run early
            (``SimulationConfig.max_cycles`` / ``max_wall_s``); the
            statistics cover only the cycles actually simulated and are
            valid for that shorter window.  Deliberately *not* part of
            :func:`~repro.verify.differential.result_fingerprint` —
            wall-clock truncation is nondeterministic by nature.
        truncation_reason: ``"max_cycles"`` or ``"max_wall_s"``
            (None when not truncated).
        truncated_at_cycle: Total cycle count actually simulated
            (warm-up included; None when not truncated).
    """

    cycles: int
    clock_hz: float
    word_bits: int
    requests_completed: int
    data_bits_transferred: int
    peak_bandwidth_bits_per_s: float
    latency: LatencyStats
    latency_by_client: dict
    row_hit_rate: float
    fifo_high_water: dict
    fifo_stall_cycles: dict
    commands: dict
    refreshes: int
    bank_activations: tuple = ()
    truncated: bool = False
    truncation_reason: str | None = None
    truncated_at_cycle: int | None = None

    def __post_init__(self) -> None:
        # Degenerate-config validation: every derived property divides
        # by the clock, so a non-positive clock is rejected up front
        # rather than surfacing as a ZeroDivisionError later.
        if self.clock_hz <= 0:
            raise ConfigurationError(
                f"clock_hz must be positive, got {self.clock_hz}"
            )
        if self.cycles < 0:
            raise ConfigurationError(
                f"cycles must be >= 0, got {self.cycles}"
            )
        if self.peak_bandwidth_bits_per_s < 0:
            raise ConfigurationError("peak bandwidth must be >= 0")

    @property
    def sustained_bandwidth_bits_per_s(self) -> float:
        if self.cycles == 0:
            return 0.0
        elapsed_s = self.cycles / self.clock_hz
        return self.data_bits_transferred / elapsed_s

    @property
    def bandwidth_efficiency(self) -> float:
        """Sustainable / peak — the Section 4 headline ratio."""
        if self.peak_bandwidth_bits_per_s == 0:
            return 0.0
        return (
            self.sustained_bandwidth_bits_per_s
            / self.peak_bandwidth_bits_per_s
        )

    @property
    def mean_latency_ns(self) -> float:
        """Mean latency in wall time (0.0 when nothing retired)."""
        return self.latency.mean / self.clock_hz * 1e9

    def bank_imbalance(self) -> float:
        """Max/mean activation ratio across banks (1.0 = perfectly
        balanced; large values mean hot banks a better data mapping
        could spread)."""
        if not self.bank_activations:
            return 1.0
        total = sum(self.bank_activations)
        if total == 0:
            return 1.0
        mean = total / len(self.bank_activations)
        return max(self.bank_activations) / mean

    def summary(self) -> str:
        """One-paragraph human-readable summary."""
        return (
            f"{self.requests_completed} requests over {self.cycles} cycles: "
            f"sustained {self.sustained_bandwidth_bits_per_s / 8e9:.2f} GB/s "
            f"of {self.peak_bandwidth_bits_per_s / 8e9:.2f} GB/s peak "
            f"({self.bandwidth_efficiency:.0%}), row-hit rate "
            f"{self.row_hit_rate:.0%}, mean latency {self.latency.mean:.1f} "
            f"cycles ({self.mean_latency_ns:.0f} ns)"
        )
