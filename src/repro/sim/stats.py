"""Simulation statistics containers."""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.errors import ConfigurationError


@dataclass
class LatencyStats:
    """Streaming latency statistics (cycles)."""

    _samples: list = field(default_factory=list, init=False)

    def record(self, latency_cycles: int) -> None:
        if latency_cycles < 0:
            raise ConfigurationError(
                f"latency must be >= 0, got {latency_cycles}"
            )
        self._samples.append(latency_cycles)

    @property
    def count(self) -> int:
        return len(self._samples)

    @property
    def mean(self) -> float:
        return float(np.mean(self._samples)) if self._samples else 0.0

    @property
    def maximum(self) -> int:
        return max(self._samples) if self._samples else 0

    @property
    def minimum(self) -> int:
        return min(self._samples) if self._samples else 0

    def percentile(self, q: float) -> float:
        if not 0 <= q <= 100:
            raise ConfigurationError(f"percentile must be in [0, 100]: {q}")
        if not self._samples:
            return 0.0
        return float(np.percentile(self._samples, q))


@dataclass(frozen=True)
class SimulationResult:
    """Outcome of one simulation run.

    Attributes:
        cycles: Simulated cycles (after warm-up).
        clock_hz: Interface clock.
        word_bits: Interface word width.
        requests_completed: Retired requests.
        data_bits_transferred: Payload bits moved.
        peak_bandwidth_bits_per_s: Device peak.
        latency: Overall latency statistics (cycles).
        latency_by_client: Per-client latency statistics.
        row_hit_rate: Fraction of accesses hitting an open row.
        fifo_high_water: Per-client FIFO high-water marks.
        fifo_stall_cycles: Per-client stall (back-pressure) cycles.
        commands: Command counts by type name.
        refreshes: Refresh commands issued.
        bank_activations: Per-bank activation counts — the load-balance
            view the allocation problem (Section 3) optimizes.
    """

    cycles: int
    clock_hz: float
    word_bits: int
    requests_completed: int
    data_bits_transferred: int
    peak_bandwidth_bits_per_s: float
    latency: LatencyStats
    latency_by_client: dict
    row_hit_rate: float
    fifo_high_water: dict
    fifo_stall_cycles: dict
    commands: dict
    refreshes: int
    bank_activations: tuple = ()

    @property
    def sustained_bandwidth_bits_per_s(self) -> float:
        if self.cycles == 0:
            return 0.0
        elapsed_s = self.cycles / self.clock_hz
        return self.data_bits_transferred / elapsed_s

    @property
    def bandwidth_efficiency(self) -> float:
        """Sustainable / peak — the Section 4 headline ratio."""
        if self.peak_bandwidth_bits_per_s == 0:
            return 0.0
        return (
            self.sustained_bandwidth_bits_per_s
            / self.peak_bandwidth_bits_per_s
        )

    @property
    def mean_latency_ns(self) -> float:
        return self.latency.mean / self.clock_hz * 1e9

    def bank_imbalance(self) -> float:
        """Max/mean activation ratio across banks (1.0 = perfectly
        balanced; large values mean hot banks a better data mapping
        could spread)."""
        if not self.bank_activations:
            return 1.0
        total = sum(self.bank_activations)
        if total == 0:
            return 1.0
        mean = total / len(self.bank_activations)
        return max(self.bank_activations) / mean

    def summary(self) -> str:
        """One-paragraph human-readable summary."""
        return (
            f"{self.requests_completed} requests over {self.cycles} cycles: "
            f"sustained {self.sustained_bandwidth_bits_per_s / 8e9:.2f} GB/s "
            f"of {self.peak_bandwidth_bits_per_s / 8e9:.2f} GB/s peak "
            f"({self.bandwidth_efficiency:.0%}), row-hit rate "
            f"{self.row_hit_rate:.0%}, mean latency {self.latency.mean:.1f} "
            f"cycles ({self.mean_latency_ns:.0f} ns)"
        )
