"""Cycle-level simulation driver and statistics.

Couples :mod:`repro.traffic` clients to a :mod:`repro.controller`
controller over a :mod:`repro.dram` device and measures what the paper's
Section 4 is about: sustainable bandwidth versus peak, client-observed
latency distributions, row-hit rates, and the FIFO depths the access
scheme implies.
"""

from repro.sim.stats import LatencyStats, SimulationResult
from repro.sim.simulator import MemorySystemSimulator, SimulationConfig
from repro.sim.event_engine import EventEngine, event_fallback_reason

__all__ = [
    "LatencyStats",
    "SimulationResult",
    "MemorySystemSimulator",
    "SimulationConfig",
    "EventEngine",
    "event_fallback_reason",
]
