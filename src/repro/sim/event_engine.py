"""Event-driven simulator backend: advance between state changes.

The cycle backend steps every cycle, and its fast-forward path can only
skip *fully quiescent* spans (empty window, empty FIFOs) — so at high
load it degenerates to the naive loop.  This engine generalizes the
skip analysis: a span of cycles may be jumped whenever stepping each of
them would provably change nothing observable, even while the window is
full of requests and clients are back-pressured.  What remains is a
timestamp-ordered walk over the cycles where something *can* happen:

* a client's token bucket reaches issue threshold
  (:meth:`~repro.traffic.client.MemoryClient.cycles_until_wants`);
* a queued request's next DRAM command becomes legal (bank ready
  cycles, tRRD, shared-data-bus availability — the same rules the
  device model enforces);
* a committed page-policy precharge becomes legal (tRAS expiry);
* the refresh scheduler's next deadline;
* the warm-up reset and the final cycle (always stepped).

Between those timestamps the engine batch-accrues exactly what the
naive loop would have accrued: token-bucket credit for idle clients
(bit-identical iterated accrual via ``tick_many``), stall cycles for
back-pressured clients, and FIFO occupancy statistics.  Cost therefore
scales with commands issued, not cycles elapsed.

On stepped cycles the controller's phases run individually so the
scheduler's candidate scan — the dominant per-cycle cost at realistic
window sizes — only executes on cycles where a command can actually
issue.  The cached next-command time is maintained incrementally: an
accepted request min-updates it in O(1); any issued command (request,
refresh or policy precharge) invalidates it for lazy recomputation.

Safety argument, pinned by ``tests/test_sim_event_backend.py`` and the
``diff_backend`` oracle: command legality is monotone in the cycle for
fixed bank/device state, the scheduler's candidate ranking depends on
bank state only through ``_open_row`` (which changes only when commands
issue), and all three stock arbiters are state-neutral on cycles where
no request can be accepted (window full or all FIFOs empty).  Every
skip event is computed conservatively — stepping a cycle where nothing
happens is always exact; only a *late* event could diverge, and the
differential fuzz corpus exists to catch exactly that.

Configurations outside the analyzed envelope (observability attached,
live invariant checking, controller subclasses, unknown scheduler or
arbiter types) transparently fall back to the cycle backend;
``MemorySystemSimulator.backend_fallback_reason`` records why.
"""

from __future__ import annotations

import time

from repro.controller.arbiter import (
    PriorityArbiter,
    RoundRobinArbiter,
    TDMArbiter,
)
from repro.controller.controller import MemoryController
from repro.controller.scheduler import FCFSScheduler, FRFCFSScheduler
from repro.dram.device import DRAMDevice
from repro.sim.stats import SimulationResult

#: Sentinel "never" timestamp for blocked candidates.
_NEVER = 1 << 62

_SCHEDULERS = (FCFSScheduler, FRFCFSScheduler)
_ARBITERS = (RoundRobinArbiter, PriorityArbiter, TDMArbiter)


def event_fallback_reason(simulator) -> str | None:
    """Why ``simulator`` cannot run on the event engine (None = it can).

    The engine's skip analysis is proven against the stock controller,
    schedulers and arbiters; anything it has not been analyzed for runs
    on the cycle backend instead of risking silent divergence.
    """
    if simulator.obs is not None:
        return "observability requires per-cycle events"
    if simulator.config.check_invariants != "off":
        return "live invariant checking requires stepped cycles"
    controller = simulator.controller
    if type(controller) is not MemoryController:
        return (
            f"controller subclass {type(controller).__name__} "
            "not analyzed for event skipping"
        )
    if type(simulator.device) is not DRAMDevice:
        return (
            f"device subclass {type(simulator.device).__name__} "
            "not analyzed for event skipping"
        )
    if not isinstance(controller.scheduler, _SCHEDULERS):
        return (
            f"scheduler {type(controller.scheduler).__name__} "
            "has no next-command-time model"
        )
    if not isinstance(controller.arbiter, _ARBITERS):
        return (
            f"arbiter {type(controller.arbiter).__name__} "
            "not proven state-neutral across skips"
        )
    return None


class EventEngine:
    """One event-driven run over a :class:`MemorySystemSimulator`.

    Stateless between runs; construct a fresh engine per ``run()``.
    """

    def __init__(self, simulator) -> None:
        self.sim = simulator
        self.controller = simulator.controller
        self.device = simulator.device
        #: Earliest cycle at which the candidate scan can issue a
        #: command, given current window/bank/bus state; None = stale.
        self._next_cmd_time: int | None = None

    # -- main loop -----------------------------------------------------------

    def run(self) -> SimulationResult:
        sim = self.sim
        controller = self.controller
        hard_total, budget_reason = sim._budget()
        deadline = sim._deadline()
        cancel = sim.config.cancel
        warmup_barrier = sim.config.warmup_cycles - 1
        clients = sim.clients
        pending = sim._pending
        fifos = controller.fifos
        cycle = 0
        while cycle < hard_total:
            self._step(cycle)
            if cycle == warmup_barrier:
                sim._reset_measurement()
            cycle += 1
            if (
                deadline is not None
                and cycle < hard_total
                and time.perf_counter() > deadline
            ):
                return sim._collect(
                    cycle, truncation=("max_wall_s", cycle)
                )
            if (
                cancel is not None
                and cycle < hard_total
                and cancel.cancelled
            ):
                return sim._collect(cycle, truncation=("cancelled", cycle))
            if cycle >= hard_total:
                break
            target = self._skip_target(cycle, hard_total, warmup_barrier)
            if target > cycle:
                skipped = target - cycle
                for client in clients:
                    if client.name in pending:
                        # The naive loop re-offers the held request
                        # every cycle; each refusal is one recorded
                        # stall and the client's credit stays frozen.
                        fifos[client.name].stall_cycles += skipped
                    else:
                        client.tick_many(skipped)
                controller.skip_idle_cycles(skipped)
                sim.cycles_fast_forwarded += skipped
                cycle = target
        if budget_reason is not None:
            return sim._collect(
                hard_total, truncation=(budget_reason, hard_total)
            )
        return sim._collect(hard_total)

    # -- one stepped cycle ----------------------------------------------------

    def _step(self, cycle: int) -> None:
        """One full simulated cycle, phase-decomposed.

        Identical effects to ``sim._drive_clients(cycle)`` followed by
        ``controller.step(cycle)``, except that the scheduler's
        candidate scan only runs on cycles where the cached
        next-command time says a command can issue.
        """
        self.sim._drive_clients(cycle)
        controller = self.controller
        controller._retire(cycle)
        window = controller.window
        accepted = len(window)
        controller._accept(cycle)
        if len(window) != accepted and self._next_cmd_time is not None:
            earliest = self._earliest_for(window[-1])
            if earliest < self._next_cmd_time:
                self._next_cmd_time = earliest
        if controller._service_refresh(cycle):
            # A drain precharge or REFRESH may have changed bank state.
            self._next_cmd_time = None
            controller._observe(cycle)
            return
        if controller._close_wanted:
            before = len(controller._close_wanted)
            if controller._issue_policy_precharge(cycle):
                self._next_cmd_time = None
                controller._observe(cycle)
                return
            if len(controller._close_wanted) != before:
                # Stale entries were purged; previously blocked
                # candidates may have become schedulable.
                self._next_cmd_time = None
        if window:
            when = self._next_cmd_time
            if when is None:
                when = self._compute_next_cmd_time(cycle)
                self._next_cmd_time = when
            if when <= cycle:
                controller._issue_request_command(cycle)
                self._next_cmd_time = None
        controller._observe(cycle)

    # -- next-command-time model ----------------------------------------------

    def _earliest_for(self, request) -> int:
        """Earliest cycle the controller could issue for ``request``.

        Mirrors ``MemoryController._next_command`` +
        ``DRAMDevice.can_issue`` legality, inverted from "is cycle C
        legal?" to "what is the first legal C?".  Exact for fixed
        bank/device state (legality is monotone in the cycle), and any
        issued command invalidates the cache before state changes.
        """
        decoded = request.decoded
        controller = self.controller
        if decoded.bank in controller._close_wanted:
            return _NEVER  # blocked until the policy precharge lands
        device = self.device
        bank = device.banks[decoded.bank]
        open_row = bank._open_row  # _settle() never changes _open_row
        timing = device.timing
        if open_row == decoded.row:
            earliest_bus = device.data_bus_free_cycle
            is_read = request.is_read
            last_read = device.last_data_was_read
            if last_read is not None and last_read != is_read:
                earliest_bus += timing.t_turnaround
            data_lead = timing.t_cas if is_read else 1
            return max(bank.earliest_column(), earliest_bus - data_lead)
        if open_row is not None:
            return bank.earliest_precharge()
        return max(
            bank.earliest_activate(),
            device.last_activate_cycle + timing.t_rrd,
        )

    def _compute_next_cmd_time(self, cycle: int) -> int:
        """Min over the candidate ranking of per-request issue times.

        Specialized to one flat pass over the window rather than
        materializing the scheduler's ranking: a request's earliest
        issue time depends only on its (bank, direction, hit-or-miss)
        class, so each class is computed once.  FR-FCFS candidates are
        exactly the row hits plus the oldest non-hit request per bank;
        FCFS only ever advances the head request.
        """
        controller = self.controller
        window = controller.window
        if type(controller.scheduler) is FCFSScheduler:
            return self._earliest_for(window[0]) if window else _NEVER
        device = self.device
        banks = device.banks
        timing = device.timing
        close_wanted = controller._close_wanted
        bus_free = device.data_bus_free_cycle
        last_read = device.last_data_was_read
        activate_floor = device.last_activate_cycle + timing.t_rrd
        t_cas = timing.t_cas
        t_turnaround = timing.t_turnaround
        earliest = _NEVER
        seen_banks: set[int] = set()
        seen_hits: set[tuple[int, bool]] = set()
        for request in window:
            decoded = request.decoded
            index = decoded.bank
            oldest = index not in seen_banks
            if oldest:
                seen_banks.add(index)
            if index in close_wanted:
                continue
            bank = banks[index]
            open_row = bank._open_row
            if open_row == decoded.row:
                is_read = request.is_read
                key = (index, is_read)
                if key in seen_hits:
                    continue
                seen_hits.add(key)
                bus = bus_free
                if last_read is not None and last_read != is_read:
                    bus += t_turnaround
                when = bank._ready_column
                data_start = bus - (t_cas if is_read else 1)
                if data_start > when:
                    when = data_start
            elif oldest:
                if open_row is not None:
                    when = bank._ready_precharge
                else:
                    when = bank._ready_activate
                    if activate_floor > when:
                        when = activate_floor
            else:
                continue
            if when < earliest:
                earliest = when
                if earliest <= cycle:
                    break
        return earliest

    # -- skip analysis --------------------------------------------------------

    def _skip_target(
        self, next_cycle: int, hard_total: int, warmup_barrier: int
    ) -> int:
        """Furthest cycle such that ``[next_cycle, target)`` is inert.

        Returns ``next_cycle`` itself when the next cycle must be
        stepped.  A span is inert when: refresh is neither draining nor
        due within it, no committed policy precharge can land in it, no
        request can be accepted on any of its cycles (window full or
        all FIFOs empty — the stock arbiters are state-neutral then),
        no queued request's command becomes legal, and no idle client's
        token bucket reaches threshold.  Retirement is deliberately not
        an event: completed bursts retire with their recorded end cycle
        whenever the next step happens, and nothing can observe the
        delay (the warm-up reset and final cycle are always stepped).
        """
        controller = self.controller
        if controller._refresh_draining:
            return next_cycle
        target = hard_total - 1
        if next_cycle <= warmup_barrier < target:
            target = warmup_barrier
        refresh = controller._refresh
        if refresh is not None:
            due = refresh.quiescent_until(next_cycle)
            if due < target:
                target = due
            if target <= next_cycle:
                return next_cycle
        device = self.device
        for bank_index in controller._close_wanted:
            bank = device.banks[bank_index]
            if bank._open_row is None:
                return next_cycle  # stale entry: purge by stepping
            ready = bank.earliest_precharge()
            if ready < target:
                target = ready
            if target <= next_cycle:
                return next_cycle
        window = controller.window
        if len(window) < controller.config.window_size:
            for fifo in controller._fifo_list:
                if len(fifo):
                    return next_cycle  # an accept would happen
        if window:
            when = self._next_cmd_time
            if when is None:
                when = self._compute_next_cmd_time(next_cycle)
                self._next_cmd_time = when
            if when < target:
                target = when
            if target <= next_cycle:
                return next_cycle
        pending = self.sim._pending
        for name in pending:
            # An accept this cycle may have freed space after the
            # drive phase ran; the held request would then land on the
            # very next re-offer.
            if not controller.fifos[name].full:
                return next_cycle
        for client in self.sim.clients:
            if client.name in pending:
                continue  # frozen: neither ticks nor polls
            ticks = client.cycles_until_wants(target - next_cycle)
            if ticks == 0:
                return next_cycle
            if next_cycle + ticks < target:
                target = next_cycle + ticks
        return target
