"""The memory-system simulator: clients -> controller -> device.

Drives the whole stack cycle by cycle.  Client address streams are
burst-aligned (one request = one burst), pacing is token-bucket per
client, and a warm-up period is excluded from the statistics so steady-
state sustainable bandwidth is measured rather than cold-start behaviour.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field

from repro.errors import ConfigurationError, SimulationError
from repro.dram.device import DRAMDevice
from repro.dram.organizations import AddressMapping
from repro.controller.controller import ControllerConfig, MemoryController
from repro.controller.request import Request
from repro.traffic.client import MemoryClient
from repro.sim.stats import LatencyStats, SimulationResult


@dataclass(frozen=True)
class SimulationConfig:
    """Run-length and measurement settings.

    Attributes:
        cycles: Measured cycles.
        warmup_cycles: Cycles simulated before measurement starts.
        align_to_burst: Align client addresses down to burst boundaries
            (one request = one full burst; realistic for streaming DMA
            engines and the right granularity for bandwidth accounting).
        fast_forward: Skip provably idle cycles (no client can issue, the
            controller is quiescent) in one jump instead of stepping them
            one by one.  Results are bit-identical to the per-cycle loop;
            set False to force the naive reference loop.
        check_invariants: Live verification mode (:mod:`repro.verify`).
            ``"off"`` (default) adds no machinery; ``"collect"`` streams
            every issued command through an independent protocol oracle
            and checks simulator-state invariants each stepped cycle,
            gathering violations into ``simulator.invariant_report``;
            ``"raise"`` does the same but raises
            :class:`~repro.errors.VerificationError` at the first
            violation.
        max_cycles: Watchdog cap on *total* simulated cycles (warm-up
            included).  A run hitting the cap stops there and returns a
            truncated-but-valid result (``result.truncated`` set,
            ``truncation_reason == "max_cycles"``); statistics cover
            the cycles actually simulated.  Deterministic: the naive
            and fast-forward loops truncate at the same cycle.  None
            (default) means no cap.
        max_wall_s: Watchdog wall-clock deadline.  Checked every 512
            stepped cycles (naive loop) or every event (fast loop); on
            expiry the run stops and returns a truncated-but-valid
            result with ``truncation_reason == "max_wall_s"``.
            Inherently nondeterministic — use for hang protection in
            sweeps, not for reproducible experiments.  None (default)
            means no deadline.
        cancel: Cooperative cancellation token — any object with a
            boolean ``cancelled`` attribute, typically a
            :class:`~repro.serve.resilience.CancelToken`.  Checked at
            the same watchdog cadence as ``max_wall_s``; when it fires
            the run stops and returns a truncated-but-valid result
            with ``truncation_reason == "cancelled"``.  None (default)
            adds no per-cycle work.
        backend: Execution core.  ``"cycle"`` (default) is the stepped
            loop (naive or fast-forward per ``fast_forward``);
            ``"event"`` selects the event-driven engine
            (:mod:`repro.sim.event_engine`), which advances directly
            between state-changing timestamps so cost scales with
            commands issued rather than cycles elapsed.  Results are
            bit-identical to the cycle backend; configurations the
            event engine does not support (observability attached,
            live invariant checking, controller subclasses, custom
            schedulers/arbiters) fall back to the cycle backend and
            record why in ``simulator.backend_fallback_reason``.
    """

    cycles: int = 20_000
    warmup_cycles: int = 1_000
    align_to_burst: bool = True
    fast_forward: bool = True
    check_invariants: str = "off"
    max_cycles: int | None = None
    max_wall_s: float | None = None
    backend: str = "cycle"
    cancel: object = field(default=None, compare=False)
    #: Distributed trace context (a
    #: :class:`~repro.obs.tracectx.TraceContext` or its dict form)
    #: forwarded to an attached observability's trace recorder, so the
    #: simulator timeline joins the job's end-to-end trace.  Excluded
    #: from equality/fingerprints (``compare=False``) for the same
    #: reason as ``cancel``: where a run is traced must not change what
    #: it computes.
    trace: object = field(default=None, compare=False)

    def __post_init__(self) -> None:
        if self.cycles < 1:
            raise ConfigurationError("cycles must be >= 1")
        if self.warmup_cycles < 0:
            raise ConfigurationError("warmup must be >= 0")
        if self.backend not in ("cycle", "event"):
            raise ConfigurationError(
                f"backend must be 'cycle' or 'event', got {self.backend!r}"
            )
        if self.check_invariants not in ("off", "collect", "raise"):
            raise ConfigurationError(
                "check_invariants must be 'off', 'collect' or 'raise', "
                f"got {self.check_invariants!r}"
            )
        if self.max_cycles is not None and self.max_cycles < 1:
            raise ConfigurationError("max_cycles must be >= 1")
        if self.max_wall_s is not None and self.max_wall_s < 0:
            raise ConfigurationError("max_wall_s must be >= 0")


@dataclass
class MemorySystemSimulator:
    """End-to-end cycle simulator.

    Attributes:
        controller: The controller (owning the device and mapping).
        clients: Memory clients generating traffic.
        config: Run settings.
    """

    controller: MemoryController
    clients: list[MemoryClient]
    config: SimulationConfig = SimulationConfig()
    #: Optional :class:`~repro.obs.Observability` receiving command,
    #: retirement, FIFO and fast-forward events.  None (the default)
    #: costs nothing and results are bit-identical either way.
    obs: object = None

    _next_request_id: int = field(default=0, init=False)
    _pending: dict = field(default_factory=dict, init=False)
    #: Cycles the fast-forward path jumped over instead of stepping
    #: (diagnostic; 0 after a naive run).
    cycles_fast_forwarded: int = field(default=0, init=False)
    #: Live checker when ``config.check_invariants != "off"``.
    invariant_checker: object = field(default=None, init=False, repr=False)
    #: :class:`~repro.verify.invariants.InvariantReport` after a checked
    #: run; None when checking was off.
    invariant_report: object = field(default=None, init=False)
    #: Backend that actually executed the last :meth:`run` ("cycle" or
    #: "event"); None before the first run.
    backend_used: str | None = field(default=None, init=False)
    #: Why a requested event backend fell back to the cycle backend;
    #: None when no fallback happened.
    backend_fallback_reason: str | None = field(default=None, init=False)

    def __post_init__(self) -> None:
        if not self.clients:
            raise ConfigurationError("need at least one client")
        names = [client.name for client in self.clients]
        if len(set(names)) != len(names):
            raise ConfigurationError(f"duplicate client names: {names}")
        for client in self.clients:
            self.controller.register_client(client.name)
        if self.obs is not None:
            self.controller.obs = self.obs
            self.obs.bind(self)
            if self.config.trace is not None:
                recorder = getattr(self.obs, "trace", None)
                if recorder is not None:
                    recorder.set_context(self.config.trace)
        if self.config.check_invariants != "off":
            # Imported lazily: repro.verify depends on this module.
            from repro.verify.invariants import LiveInvariantChecker

            self.invariant_checker = LiveInvariantChecker(
                organization=self.device.organization,
                timing=self.device.timing,
            )
            self.controller.command_observer = (
                self.invariant_checker.observe_command
            )

    @property
    def device(self) -> DRAMDevice:
        return self.controller.device

    def _make_request(self, client: MemoryClient, cycle: int) -> Request:
        address, is_read = client.next_request()
        if self.config.align_to_burst:
            burst = self.device.timing.burst_length
            address = (address // burst) * burst
        address %= self.device.organization.total_words
        request = Request(
            request_id=self._next_request_id,
            client=client.name,
            address=address,
            is_read=is_read,
            created_cycle=cycle,
        )
        self._next_request_id += 1
        return request

    def _drive_clients(self, cycle: int) -> None:
        for client in self.clients:
            stalled_request = self._pending.get(client.name)
            if stalled_request is not None:
                if self.controller.offer(stalled_request):
                    del self._pending[client.name]
                continue
            if client.wants_to_issue(cycle):
                request = self._make_request(client, cycle)
                if not self.controller.offer(request):
                    # Hold the request; the client is back-pressured.
                    self._pending[client.name] = request
            else:
                client.tick()

    def run(self) -> SimulationResult:
        """Simulate warm-up plus measured cycles and gather statistics.

        With ``config.fast_forward`` (the default) idle spans — no
        client able to issue, no back-pressured request, controller
        quiescent — are jumped in one step; the result is bit-identical
        to the naive per-cycle loop (asserted by the equivalence grid in
        ``tests/test_sim_fastforward.py``).

        With ``config.backend == "event"`` the event-driven engine is
        used instead (bit-identical as well; see
        :mod:`repro.sim.event_engine`), falling back to the cycle
        backend for unsupported configurations.
        """
        self.backend_fallback_reason = None
        if self.config.backend == "event":
            from repro.sim.event_engine import (
                EventEngine,
                event_fallback_reason,
            )

            reason = event_fallback_reason(self)
            if reason is None:
                self.backend_used = "event"
                return EventEngine(self).run()
            self.backend_fallback_reason = reason
        self.backend_used = "cycle"
        if self.config.fast_forward:
            return self._run_fast()
        return self._run_naive()

    def _budget(self) -> tuple:
        """(hard cycle cap, truncation reason-if-capped)."""
        total = self.config.warmup_cycles + self.config.cycles
        max_cycles = self.config.max_cycles
        if max_cycles is not None and max_cycles < total:
            return max_cycles, "max_cycles"
        return total, None

    def _deadline(self) -> float | None:
        if self.config.max_wall_s is None:
            return None
        return time.perf_counter() + self.config.max_wall_s

    def _run_naive(self) -> SimulationResult:
        """Reference loop: every cycle stepped, no skipping."""
        hard_total, budget_reason = self._budget()
        deadline = self._deadline()
        cancel = self.config.cancel
        checker = self.invariant_checker
        for cycle in range(hard_total):
            self._drive_clients(cycle)
            self.controller.step(cycle)
            if checker is not None:
                checker.on_cycle(cycle, self)
                self._maybe_raise_violations(checker)
            if cycle == self.config.warmup_cycles - 1:
                self._reset_measurement()
            if (
                (deadline is not None or cancel is not None)
                and (cycle & 511) == 511
            ):
                if (
                    deadline is not None
                    and time.perf_counter() > deadline
                ):
                    return self._collect(
                        cycle + 1, truncation=("max_wall_s", cycle + 1)
                    )
                if cancel is not None and cancel.cancelled:
                    return self._collect(
                        cycle + 1, truncation=("cancelled", cycle + 1)
                    )
        if budget_reason is not None:
            return self._collect(
                hard_total, truncation=(budget_reason, hard_total)
            )
        return self._collect(hard_total)

    def _run_fast(self) -> SimulationResult:
        """Event-skipping loop: identical per-cycle processing, but
        provably dead cycles are replaced by batched credit/statistics
        accrual and one clock jump."""
        hard_total, budget_reason = self._budget()
        deadline = self._deadline()
        cancel = self.config.cancel
        warmup_barrier = self.config.warmup_cycles - 1
        clients = self.clients
        controller = self.controller
        checker = self.invariant_checker
        cycle = 0
        while cycle < hard_total:
            self._drive_clients(cycle)
            controller.step(cycle)
            if checker is not None:
                checker.on_cycle(cycle, self)
                self._maybe_raise_violations(checker)
            if cycle == warmup_barrier:
                self._reset_measurement()
            cycle += 1
            if (
                deadline is not None
                and cycle < hard_total
                and time.perf_counter() > deadline
            ):
                return self._collect(cycle, truncation=("max_wall_s", cycle))
            if (
                cancel is not None
                and cycle < hard_total
                and cancel.cancelled
            ):
                return self._collect(cycle, truncation=("cancelled", cycle))
            if cycle >= hard_total:
                break
            target = self._next_event_cycle(
                cycle, hard_total, warmup_barrier
            )
            if target > cycle:
                skipped = target - cycle
                for client in clients:
                    client.tick_many(skipped)
                controller.skip_idle_cycles(skipped)
                self.cycles_fast_forwarded += skipped
                if self.obs is not None:
                    self.obs.on_skip(cycle, skipped)
                if checker is not None:
                    checker.on_skip(cycle, skipped, self)
                    self._maybe_raise_violations(checker)
                cycle = target
        if budget_reason is not None:
            return self._collect(
                hard_total, truncation=(budget_reason, hard_total)
            )
        return self._collect(hard_total)

    def _maybe_raise_violations(self, checker) -> None:
        if self.config.check_invariants != "raise" or not checker.violations:
            return
        from repro.errors import VerificationError

        first = checker.violations[0]
        raise VerificationError(
            f"invariant violated at cycle {first.cycle}: "
            f"[{first.check}] {first.detail}"
        )

    def _next_event_cycle(
        self, cycle: int, total: int, warmup_barrier: int
    ) -> int:
        """Next cycle that must actually be stepped, starting at ``cycle``.

        A cycle may be skipped only when, on that cycle, every client
        would merely tick its token bucket and the controller step would
        be a no-op (plus statistics).  Two cycles are always barriers:
        the warm-up reset cycle (retirements must not leak across the
        measurement reset) and the final cycle (so every due burst
        retires before collection, as in the naive loop).
        """
        if self._pending:
            return cycle  # back-pressure retries and stall accounting
        quiescent = self.controller.quiescent_until(cycle)
        if quiescent is not None and quiescent <= cycle:
            return cycle
        target = total - 1
        if cycle <= warmup_barrier:
            target = min(target, warmup_barrier)
        if quiescent is not None:
            target = min(target, quiescent)
        for client in self.clients:
            ticks = client.cycles_until_wants(target - cycle)
            if ticks == 0:
                return cycle
            if cycle + ticks < target:
                target = cycle + ticks
        return target

    def _reset_measurement(self) -> None:
        """Discard warm-up statistics."""
        if self.obs is not None:
            self.obs.on_measurement_reset(self.config.warmup_cycles - 1)
        if self.invariant_checker is not None:
            self.invariant_checker.on_measurement_reset(
                len(self.controller.completed)
            )
        self.controller.completed.clear()
        self.controller.data_beats = 0
        self.controller.commands = {
            kind: 0 for kind in self.controller.commands
        }
        self.controller.refreshes_issued = 0
        for bank in self.device.banks:
            bank.row_hits = 0
            bank.row_misses = 0
            bank.activations = 0
        for fifo in self.controller.fifos.values():
            fifo.stall_cycles = 0
            fifo.high_water_mark = len(fifo)

    def _collect(
        self, total_cycles: int, truncation: tuple | None = None
    ) -> SimulationResult:
        if self.obs is not None:
            self.obs.on_run_end(total_cycles)
        if self.invariant_checker is not None:
            self.invariant_report = self.invariant_checker.report()
        measured = self.config.cycles
        truncation_reason = truncated_at = None
        if truncation is not None:
            truncation_reason, truncated_at = truncation
            warmup = self.config.warmup_cycles
            # Truncated before the measurement reset: statistics cover
            # the whole (short) run; after it: the post-warm-up window.
            measured = (
                truncated_at - warmup
                if truncated_at >= warmup
                else truncated_at
            )
            if self.obs is not None:
                self.obs.on_fault_event(
                    "run_truncated",
                    truncated_at,
                    reason=truncation_reason,
                )
        latency = LatencyStats()
        by_client: dict = {
            client.name: LatencyStats() for client in self.clients
        }
        word_bits = self.device.organization.word_bits
        burst = self.device.timing.burst_length
        data_bits = 0
        for request in self.controller.completed:
            latency.record(request.latency_cycles)
            by_client[request.client].record(request.latency_cycles)
            data_bits += burst * word_bits
        return SimulationResult(
            cycles=measured,
            clock_hz=self.device.timing.clock_hz,
            word_bits=word_bits,
            requests_completed=len(self.controller.completed),
            data_bits_transferred=data_bits,
            peak_bandwidth_bits_per_s=self.device.peak_bandwidth_bits_per_s,
            latency=latency,
            latency_by_client={
                name: stats for name, stats in by_client.items()
            },
            row_hit_rate=self.device.row_hit_rate(),
            fifo_high_water={
                name: fifo.high_water_mark
                for name, fifo in self.controller.fifos.items()
            },
            fifo_stall_cycles={
                name: fifo.stall_cycles
                for name, fifo in self.controller.fifos.items()
            },
            commands={
                kind.value: count
                for kind, count in self.controller.commands.items()
            },
            refreshes=self.controller.refreshes_issued,
            bank_activations=tuple(
                bank.activations for bank in self.device.banks
            ),
            truncated=truncation is not None,
            truncation_reason=truncation_reason,
            truncated_at_cycle=truncated_at,
        )
