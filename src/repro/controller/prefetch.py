"""Stream prefetching: one of the paper's bandwidth techniques.

Section 4 credits the DRAM bandwidth explosion to "exploiting the fact
that an active row can act as a cache ... using prefetching and
pipelining techniques".  This module adds a sequential-stream prefetcher
to the memory controller: when a client's reads advance burst-by-burst,
the controller speculatively fetches the next bursts into a small
prefetch buffer; a later read that matches completes immediately, hiding
the DRAM latency entirely.

Prefetch traffic occupies real command/data-bus slots (the device model
underneath is shared), so the cost side — wasted bandwidth on useless
prefetches — is measured, not assumed.
"""

from __future__ import annotations

from collections import OrderedDict
from dataclasses import dataclass, field

from repro.errors import ConfigurationError
from repro.controller.controller import MemoryController
from repro.controller.request import Request, RequestState


#: Request-id space for internal prefetch requests, far above any id the
#: simulator hands out.
_PREFETCH_ID_BASE = 1 << 40


@dataclass
class PrefetchingMemoryController(MemoryController):
    """Memory controller with a per-client sequential prefetcher.

    Attributes:
        prefetch_depth: Bursts fetched ahead of a detected stream.
        prefetch_buffer_capacity: Bursts held in the prefetch buffer
            (FIFO eviction).
    """

    prefetch_depth: int = 2
    prefetch_buffer_capacity: int = 16
    #: Consecutive sequential bursts a client must show before its
    #: stream is trusted enough to prefetch (throttles block-shaped
    #: traffic whose short runs would waste bandwidth).
    stream_threshold: int = 3

    _ready: OrderedDict = field(default_factory=OrderedDict, init=False)
    _run_length: dict = field(default_factory=dict, init=False)
    _pending_prefetch: set = field(default_factory=set, init=False)
    _active_prefetch: set = field(default_factory=set, init=False)
    _last_read: dict = field(default_factory=dict, init=False)
    _next_prefetch_id: int = field(default=_PREFETCH_ID_BASE, init=False)
    prefetch_issued: int = field(default=0, init=False)
    prefetch_hits: int = field(default=0, init=False)
    prefetch_evicted_unused: int = field(default=0, init=False)

    def __post_init__(self) -> None:
        super().__post_init__()
        if self.prefetch_depth < 1:
            raise ConfigurationError("prefetch depth must be >= 1")
        if self.prefetch_buffer_capacity < 1:
            raise ConfigurationError("prefetch buffer must hold >= 1")
        if self.stream_threshold < 1:
            raise ConfigurationError("stream threshold must be >= 1")

    # -- buffer helpers ---------------------------------------------------

    def _burst_base(self, address: int) -> int:
        burst = self.device.timing.burst_length
        return (address // burst) * burst

    def _buffer_insert(self, address: int) -> None:
        if address in self._ready:
            return
        while len(self._ready) >= self.prefetch_buffer_capacity:
            self._ready.popitem(last=False)
            self.prefetch_evicted_unused += 1
        self._ready[address] = True

    # -- overridden pipeline stages -----------------------------------------

    def _complete(self, request: Request, end_cycle: int) -> None:
        request.state = RequestState.COMPLETED
        request.completed_cycle = end_cycle
        if request.is_prefetch:
            self._active_prefetch.discard(request.address)
            self._buffer_insert(request.address)
        else:
            self.completed.append(request)

    def _accept(self, cycle: int) -> None:
        if len(self.window) >= self.config.window_size:
            return
        fifo = self.arbiter.select(self._fifo_list, cycle)
        if fifo is None:
            self._inject_prefetches(cycle)
            return
        request = fifo.pop()
        base = self._burst_base(request.address)
        if not request.is_read:
            # Writes invalidate any prefetched copy of the burst.
            self._ready.pop(base, None)
        elif base in self._ready:
            # Prefetch hit: the data is already on-chip; complete next
            # cycle with no DRAM traffic.
            del self._ready[base]
            self.prefetch_hits += 1
            request.state = RequestState.COMPLETED
            request.accepted_cycle = cycle
            request.issued_cycle = cycle
            request.completed_cycle = cycle + 1
            request.was_row_hit = True
            self.completed.append(request)
            self._observe_stream(request)
            self._inject_prefetches(cycle)
            return
        request.state = RequestState.ACCEPTED
        request.accepted_cycle = cycle
        request.decoded = self.mapping.decode(request.address)
        self.window.append(request)
        if request.is_read:
            self._observe_stream(request)
        self._inject_prefetches(cycle)

    # -- stream detection & injection --------------------------------------

    def _observe_stream(self, request: Request) -> None:
        burst = self.device.timing.burst_length
        base = self._burst_base(request.address)
        last = self._last_read.get(request.client)
        if last is not None and base == last:
            return  # repeat access within the same burst: no signal
        self._last_read[request.client] = base
        if last is None or base != last + burst:
            self._run_length[request.client] = 0
            return
        run = self._run_length.get(request.client, 0) + 1
        self._run_length[request.client] = run
        if run < self.stream_threshold:
            return
        total_words = self.device.organization.total_words
        for step in range(1, self.prefetch_depth + 1):
            target = base + step * burst
            if target + burst > total_words:
                break
            if (
                target in self._ready
                or target in self._pending_prefetch
                or target in self._active_prefetch
            ):
                continue
            self._pending_prefetch.add(target)

    def _inject_prefetches(self, cycle: int) -> None:
        """Move pending prefetch targets into the window when there is
        slack (never into the last free slot — client requests first)."""
        free = self.config.window_size - len(self.window)
        if free < 2:
            return
        for target in sorted(self._pending_prefetch):
            if free < 2:
                break
            self._pending_prefetch.discard(target)
            self._active_prefetch.add(target)
            request = Request(
                request_id=self._next_prefetch_id,
                client="__prefetch__",
                address=target,
                is_read=True,
                created_cycle=cycle,
                is_prefetch=True,
            )
            self._next_prefetch_id += 1
            request.state = RequestState.ACCEPTED
            request.accepted_cycle = cycle
            request.decoded = self.mapping.decode(target)
            self.window.append(request)
            self.prefetch_issued += 1
            free -= 1

    def quiescent_until(self, cycle: int) -> int | None:
        """Prefetch injection is idle work: queued prefetch targets get
        injected even when no client request arrives, so the controller
        is never quiescent while any are pending."""
        if self._pending_prefetch:
            return cycle
        return super().quiescent_until(cycle)

    def _candidate_order(self, cycle: int):
        """Demand requests first; prefetches only fill leftover slots."""
        demand = [
            request for request in self.window if not request.is_prefetch
        ]
        speculative = [
            request for request in self.window if request.is_prefetch
        ]
        ordered = self.scheduler.candidates(demand, self.device, cycle)
        if speculative:
            ordered = ordered + self.scheduler.candidates(
                speculative, self.device, cycle
            )
        return ordered

    # -- statistics -----------------------------------------------------------

    def prefetch_accuracy(self) -> float:
        """Hits per issued prefetch (1.0 = every prefetch was used)."""
        if self.prefetch_issued == 0:
            return 0.0
        return self.prefetch_hits / self.prefetch_issued
