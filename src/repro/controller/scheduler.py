"""Command schedulers: FCFS and FR-FCFS.

The scheduler ranks queued requests; the controller walks the ranking and
issues the first legal command.  FCFS serves strictly in arrival order —
simple, fair, and terrible for row locality under interleaved clients.
FR-FCFS (first-ready, first-come first-served) prefers requests whose row
is already open, which is the single biggest lever for pushing sustainable
bandwidth toward peak — the mechanism behind the paper's Section 4
discussion of why modern devices get away with slow cores.

To avoid bank thrashing (two requests alternately precharging each
other's rows), bank-preparation commands are only granted to the *oldest*
request targeting each bank; the rankings below respect that.
"""

from __future__ import annotations

import abc
from dataclasses import dataclass

from repro.controller.request import Request
from repro.dram.device import DRAMDevice


class Scheduler(abc.ABC):
    """Ranks the scheduling window each cycle."""

    name: str = "abstract"

    @abc.abstractmethod
    def candidates(
        self,
        window: list[Request],
        device: DRAMDevice,
        cycle: int,
    ) -> list[Request]:
        """Requests in the order the controller should try them.

        ``window`` is ordered by acceptance (oldest first) and every
        request in it has been decoded.  The controller issues the first
        candidate whose next command is legal this cycle.
        """
        raise NotImplementedError

    @staticmethod
    def _is_row_hit(request: Request, device: DRAMDevice, cycle: int) -> bool:
        assert request.decoded is not None
        bank = device.bank(request.decoded.bank)
        return bank.is_row_open(request.decoded.row, cycle)

    @staticmethod
    def _oldest_per_bank(window: list[Request]) -> list[Request]:
        seen: set[int] = set()
        oldest: list[Request] = []
        for request in window:
            assert request.decoded is not None
            if request.decoded.bank not in seen:
                seen.add(request.decoded.bank)
                oldest.append(request)
        return oldest


@dataclass(frozen=True)
class FCFSScheduler(Scheduler):
    """Strict arrival order: only the head request may advance."""

    name: str = "fcfs"

    def candidates(
        self, window: list[Request], device: DRAMDevice, cycle: int
    ) -> list[Request]:
        return window[:1]


@dataclass(frozen=True)
class FRFCFSScheduler(Scheduler):
    """First-ready FCFS: open-row hits (by age), then oldest-per-bank."""

    name: str = "fr-fcfs"

    def candidates(
        self, window: list[Request], device: DRAMDevice, cycle: int
    ) -> list[Request]:
        hits = [
            request
            for request in window
            if self._is_row_hit(request, device, cycle)
        ]
        hit_ids = {request.request_id for request in hits}
        preps = [
            request
            for request in self._oldest_per_bank(window)
            if request.request_id not in hit_ids
        ]
        return hits + preps
