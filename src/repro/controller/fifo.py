"""Bounded per-client request FIFOs with occupancy tracking.

"Optimizing the access scheme to minimize the latency for the memory
clients and thus minimize the necessary FIFO depth" (Section 3): the FIFO
depth a client needs is set by the worst-case service latency it sees, so
the simulator tracks the high-water mark of every FIFO — that observed
depth *is* the sizing answer.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass, field

from repro.errors import ConfigurationError
from repro.controller.request import Request


@dataclass
class ClientFifo:
    """A bounded FIFO between one client and the controller.

    Attributes:
        client: Owning client name.
        capacity: Maximum queued requests; a full FIFO back-pressures the
            client (stall cycles are counted).
    """

    client: str
    capacity: int = 8

    _queue: deque = field(default_factory=deque, init=False)
    high_water_mark: int = field(default=0, init=False)
    stall_cycles: int = field(default=0, init=False)
    total_enqueued: int = field(default=0, init=False)
    total_dequeued: int = field(default=0, init=False)
    _occupancy_cycles: int = field(default=0, init=False)
    _cycles_observed: int = field(default=0, init=False)

    def __post_init__(self) -> None:
        if self.capacity < 1:
            raise ConfigurationError(
                f"FIFO {self.client}: capacity must be >= 1"
            )

    def __len__(self) -> int:
        return len(self._queue)

    @property
    def full(self) -> bool:
        return len(self._queue) >= self.capacity

    @property
    def empty(self) -> bool:
        return not self._queue

    def push(self, request: Request) -> None:
        if self.full:
            raise ConfigurationError(
                f"FIFO {self.client} overflow (capacity {self.capacity})"
            )
        self._queue.append(request)
        self.total_enqueued += 1
        self.high_water_mark = max(self.high_water_mark, len(self._queue))

    def peek(self) -> Request | None:
        return self._queue[0] if self._queue else None

    def pop(self) -> Request:
        if not self._queue:
            raise ConfigurationError(f"FIFO {self.client} underflow")
        self.total_dequeued += 1
        return self._queue.popleft()

    def record_stall(self) -> None:
        """The client wanted to issue but the FIFO was full."""
        self.stall_cycles += 1

    def observe_cycle(self) -> None:
        """Accumulate occupancy statistics for one cycle."""
        self._occupancy_cycles += len(self._queue)
        self._cycles_observed += 1

    def observe_cycles(self, cycles: int) -> None:
        """Accumulate occupancy statistics for ``cycles`` cycles at once.

        Used by the fast-forward simulator for skipped idle spans, over
        which the occupancy is constant by construction.
        """
        if cycles < 0:
            raise ConfigurationError(
                f"FIFO {self.client}: cycles must be >= 0, got {cycles}"
            )
        self._occupancy_cycles += len(self._queue) * cycles
        self._cycles_observed += cycles

    @property
    def mean_occupancy(self) -> float:
        if self._cycles_observed == 0:
            return 0.0
        return self._occupancy_cycles / self._cycles_observed
