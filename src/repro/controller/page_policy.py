"""Row-buffer (page) management policies.

"Exploiting the fact that an active row can act as a cache" (Section 4)
is a policy decision:

* **open-page** keeps the row active after an access, betting the next
  access hits the same page (wins on streaming/locality-rich traffic);
* **closed-page** precharges immediately, betting it will not (wins on
  random traffic, where it hides tRP off the critical path);
* **adaptive** closes the row only when no queued request wants it — an
  oracle-ish middle ground realizable with a small amount of lookahead.
"""

from __future__ import annotations

import abc
from dataclasses import dataclass

from repro.controller.request import Request


class PagePolicy(abc.ABC):
    """Decides whether to precharge a bank after an access completes."""

    name: str = "abstract"

    @abc.abstractmethod
    def close_after_access(
        self,
        bank: int,
        row: int,
        pending: list[Request],
    ) -> bool:
        """True if the bank should be precharged right after the burst.

        Args:
            bank: Bank just accessed.
            row: Row just accessed.
            pending: Requests currently visible to the scheduler (decoded).
        """
        raise NotImplementedError


@dataclass(frozen=True)
class OpenPagePolicy(PagePolicy):
    """Always leave the row open."""

    name: str = "open-page"

    def close_after_access(
        self, bank: int, row: int, pending: list[Request]
    ) -> bool:
        del bank, row, pending
        return False


@dataclass(frozen=True)
class ClosedPagePolicy(PagePolicy):
    """Always precharge after the access (auto-precharge semantics)."""

    name: str = "closed-page"

    def close_after_access(
        self, bank: int, row: int, pending: list[Request]
    ) -> bool:
        del bank, row, pending
        return True


@dataclass(frozen=True)
class AdaptivePagePolicy(PagePolicy):
    """Close unless a visible pending request targets the same page."""

    name: str = "adaptive"

    def close_after_access(
        self, bank: int, row: int, pending: list[Request]
    ) -> bool:
        for request in pending:
            if request.decoded is None:
                continue
            if request.decoded.bank == bank and request.decoded.row == row:
                return False
        return True
