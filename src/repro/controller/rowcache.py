"""Device-side row caches.

Paper Section 4: "exploiting the fact that an active row can act as a
cache.  In some memory structures additional row caches are even
implemented on the memory device."  (Enhanced/Virtual-Channel SDRAM did
exactly this.)

The :class:`RowCacheController` keeps SRAM copies of the last N rows
*independently of the banks' open rows*: a request whose row is cached
is served from SRAM without touching the bank, even if the bank has
since activated a different row.  This decouples "row reuse" from "row
still open" — the win over a plain open-page policy shows up exactly
when interleaved clients would otherwise thrash each other's rows.

Writes write through to the array (and update the cached copy), so the
cache never holds dirty data and precharge/refresh need no flushes.
"""

from __future__ import annotations

from collections import OrderedDict
from dataclasses import dataclass, field

from repro.errors import ConfigurationError
from repro.controller.controller import MemoryController
from repro.controller.request import RequestState


@dataclass
class RowCacheController(MemoryController):
    """Memory controller fronted by a device row cache.

    Attributes:
        row_cache_entries: Rows held in the cache (LRU replacement).
        cache_hit_latency: Cycles to serve a cached access.
    """

    row_cache_entries: int = 4
    cache_hit_latency: int = 2

    _cache: OrderedDict = field(default_factory=OrderedDict, init=False)
    row_cache_hits: int = field(default=0, init=False)
    row_cache_fills: int = field(default=0, init=False)

    def __post_init__(self) -> None:
        super().__post_init__()
        if self.row_cache_entries < 1:
            raise ConfigurationError("row cache needs >= 1 entry")
        if self.cache_hit_latency < 1:
            raise ConfigurationError("cache hit latency must be >= 1")

    def _cache_key(self, bank: int, row: int) -> tuple:
        return (bank, row)

    def _cache_touch(self, key: tuple) -> None:
        self._cache.move_to_end(key)

    def _cache_fill(self, key: tuple) -> None:
        if key in self._cache:
            self._cache_touch(key)
            return
        while len(self._cache) >= self.row_cache_entries:
            self._cache.popitem(last=False)
        self._cache[key] = True
        self.row_cache_fills += 1

    def _accept(self, cycle: int) -> None:
        if len(self.window) >= self.config.window_size:
            return
        fifo = self.arbiter.select(self._fifo_list, cycle)
        if fifo is None:
            return
        request = fifo.pop()
        decoded = self.mapping.decode(request.address)
        request.decoded = decoded
        key = self._cache_key(decoded.bank, decoded.row)
        if request.is_read and key in self._cache:
            # Served from the device row cache: no bank traffic at all.
            self._cache_touch(key)
            self.row_cache_hits += 1
            request.state = RequestState.COMPLETED
            request.accepted_cycle = cycle
            request.issued_cycle = cycle
            request.completed_cycle = cycle + self.cache_hit_latency
            request.was_row_hit = True
            self.completed.append(request)
            return
        request.state = RequestState.ACCEPTED
        request.accepted_cycle = cycle
        self.window.append(request)

    def _commit_access(self, request, cycle: int, end: int) -> None:
        super()._commit_access(request, cycle, end)
        assert request.decoded is not None
        # Any array access (read fill or write-through) caches its row.
        self._cache_fill(
            self._cache_key(request.decoded.bank, request.decoded.row)
        )

    def row_cache_hit_rate(self) -> float:
        """Hits as a fraction of all row-cache lookfor opportunities
        (hits + array accesses that filled the cache)."""
        total = self.row_cache_hits + self.row_cache_fills
        if total == 0:
            return 0.0
        return self.row_cache_hits / total
