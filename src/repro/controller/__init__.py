"""Memory controller: queues, arbitration, scheduling, page policies.

Implements the system-level problems the paper lists in Section 3:
"optimizing the access scheme to minimize the latency for the memory
clients and thus minimize the necessary FIFO depth", and approaching peak
bandwidth through scheduling and mapping.  The controller issues one DRAM
command per cycle, chosen by a scheduler (FCFS or FR-FCFS) under a page
policy (open / closed / adaptive), with client requests arbitrated out of
per-client FIFOs (round-robin, priority, or TDM).
"""

from repro.controller.request import Request, RequestState
from repro.controller.fifo import ClientFifo
from repro.controller.arbiter import (
    Arbiter,
    RoundRobinArbiter,
    PriorityArbiter,
    TDMArbiter,
)
from repro.controller.page_policy import PagePolicy, OpenPagePolicy, ClosedPagePolicy, AdaptivePagePolicy
from repro.controller.scheduler import Scheduler, FCFSScheduler, FRFCFSScheduler
from repro.controller.controller import MemoryController, ControllerConfig
from repro.controller.prefetch import PrefetchingMemoryController
from repro.controller.rowcache import RowCacheController

__all__ = [
    "Request",
    "RequestState",
    "ClientFifo",
    "Arbiter",
    "RoundRobinArbiter",
    "PriorityArbiter",
    "TDMArbiter",
    "PagePolicy",
    "OpenPagePolicy",
    "ClosedPagePolicy",
    "AdaptivePagePolicy",
    "Scheduler",
    "FCFSScheduler",
    "FRFCFSScheduler",
    "MemoryController",
    "ControllerConfig",
    "PrefetchingMemoryController",
    "RowCacheController",
]
