"""The memory controller: ties FIFOs, arbiter, scheduler and device.

Each cycle the controller:

1. accepts up to one request from the client FIFOs (arbiter's choice)
   into its scheduling window,
2. services refresh when due (draining open banks first),
3. issues at most one DRAM command — a column command for a ready
   request, or a precharge/activate preparing the highest-ranked
   request's bank, or a page-policy precharge,
4. retires requests whose data burst completed.

The one-command-per-cycle limit models the single command bus; the
device model enforces all electrical/timing legality underneath, so a
controller bug surfaces as a :class:`~repro.errors.ProtocolError` rather
than silently optimistic numbers.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.errors import ConfigurationError, SimulationError
from repro.dram.commands import Command, CommandType
from repro.dram.device import DRAMDevice
from repro.dram.organizations import AddressMapping
from repro.dram.refresh import RefreshScheduler
from repro.controller.arbiter import Arbiter, RoundRobinArbiter
from repro.controller.fifo import ClientFifo
from repro.controller.page_policy import PagePolicy, OpenPagePolicy
from repro.controller.request import Request, RequestState
from repro.controller.scheduler import Scheduler, FRFCFSScheduler


@dataclass(frozen=True)
class ControllerConfig:
    """Static controller configuration.

    Attributes:
        window_size: Scheduling window (reorder depth).
        fifo_capacity: Per-client FIFO depth.
        refresh_enabled: Whether refresh is modeled.
        refresh_retention_s: Cell retention period handed to the
            refresh scheduler.  The 64 ms default matches commodity
            SDRAM; verification harnesses shorten it to force many
            refresh deadlines into short simulations.
        record_commands: Keep every issued command in
            ``MemoryController.command_log`` (for replay through
            :class:`~repro.dram.tracecheck.TraceChecker` or offline
            analysis).
    """

    window_size: int = 16
    fifo_capacity: int = 8
    refresh_enabled: bool = True
    refresh_retention_s: float = 64e-3
    record_commands: bool = False

    def __post_init__(self) -> None:
        if self.window_size < 1:
            raise ConfigurationError("window size must be >= 1")
        if self.fifo_capacity < 1:
            raise ConfigurationError("FIFO capacity must be >= 1")
        if self.refresh_retention_s <= 0:
            raise ConfigurationError("retention must be positive")


@dataclass
class MemoryController:
    """Cycle-driven memory controller.

    Attributes:
        device: The DRAM device/macro being controlled.
        mapping: Linear-address-to-physical mapping.
        scheduler: Request scheduler.
        arbiter: Client arbiter.
        page_policy: Row-buffer management policy.
        config: Static sizes and toggles.
    """

    device: DRAMDevice
    mapping: AddressMapping
    scheduler: Scheduler = field(default_factory=FRFCFSScheduler)
    arbiter: Arbiter = field(default_factory=RoundRobinArbiter)
    page_policy: PagePolicy = field(default_factory=OpenPagePolicy)
    config: ControllerConfig = ControllerConfig()

    fifos: dict[str, ClientFifo] = field(default_factory=dict, init=False)
    _fifo_list: list[ClientFifo] = field(default_factory=list, init=False)
    window: list[Request] = field(default_factory=list, init=False)
    completed: list[Request] = field(default_factory=list, init=False)
    _inflight: list[tuple[int, Request]] = field(default_factory=list, init=False)
    #: The shared data bus serializes bursts, so in-flight end cycles
    #: arrive in ascending order; tracked so retirement can early-exit
    #: (and fall back to a full scan if a subclass ever breaks it).
    _inflight_sorted: bool = field(default=True, init=False)
    _close_wanted: set = field(default_factory=set, init=False)
    _refresh: RefreshScheduler | None = field(default=None, init=False)
    _refresh_draining: bool = field(default=False, init=False)
    refreshes_issued: int = field(default=0, init=False)
    commands: dict = field(default_factory=dict, init=False)
    data_beats: int = field(default=0, init=False)
    command_log: list = field(default_factory=list, init=False)
    #: Optional callable invoked with every command the controller
    #: issues, at issue time.  The live verification layer
    #: (:mod:`repro.verify.invariants`) attaches here to stream the
    #: command sequence through an independent protocol oracle.
    command_observer: object = field(default=None, init=False, repr=False)
    #: Optional :class:`~repro.obs.Observability` receiving command,
    #: retirement, access and FIFO events (read-only; never alters
    #: scheduling).  Installed by the simulator when built with
    #: ``obs=``.
    obs: object = field(default=None, init=False, repr=False)

    def __post_init__(self) -> None:
        if self.mapping.organization != self.device.organization:
            raise ConfigurationError(
                "mapping organization does not match device organization"
            )
        if self.config.refresh_enabled:
            org = self.device.organization
            self._refresh = RefreshScheduler(
                timing=self.device.timing,
                n_rows_total=org.n_rows,
                retention_s=self.config.refresh_retention_s,
                rows_per_command=1,
            )
        self.commands = {kind: 0 for kind in CommandType}

    @property
    def refresh_scheduler(self) -> RefreshScheduler | None:
        """The refresh scheduler, or None when refresh is disabled."""
        return self._refresh

    # -- client side --------------------------------------------------------

    def register_client(self, name: str) -> ClientFifo:
        """Create (or return) the FIFO for a client."""
        if name not in self.fifos:
            fifo = ClientFifo(client=name, capacity=self.config.fifo_capacity)
            self.fifos[name] = fifo
            self._fifo_list.append(fifo)
        return self.fifos[name]

    def offer(self, request: Request) -> bool:
        """Client offers a request; False means back-pressure (FIFO full)."""
        fifo = self.register_client(request.client)
        if fifo.full:
            fifo.record_stall()
            if self.obs is not None:
                self.obs.on_fifo_stall(request.client, request.created_cycle)
            return False
        fifo.push(request)
        if self.obs is not None:
            self.obs.on_fifo_push(
                request.client, len(fifo), request.created_cycle
            )
        return True

    # -- main loop ----------------------------------------------------------

    def step(self, cycle: int) -> None:
        """Advance the controller by one cycle."""
        self._retire(cycle)
        self._accept(cycle)
        if self._service_refresh(cycle):
            self._observe(cycle)
            return
        if self._issue_policy_precharge(cycle):
            self._observe(cycle)
            return
        self._issue_request_command(cycle)
        self._observe(cycle)

    def _observe(self, cycle: int) -> None:
        del cycle
        for fifo in self._fifo_list:
            fifo.observe_cycle()

    # -- fast-forward support ------------------------------------------------

    def quiescent_until(self, cycle: int) -> int | None:
        """Earliest cycle >= ``cycle`` at which stepping may do work.

        Returns ``cycle`` itself when the controller is busy (so the
        caller must step every cycle), a future cycle when the only
        pending obligation is a scheduled refresh, or None when, absent
        new client requests, stepping can never do anything again.

        "Work" excludes request retirement on purpose: retiring an
        in-flight burst at a later cycle is observationally identical
        (``completed_cycle`` is the recorded burst-end cycle either
        way, and with an empty window/FIFOs nothing can react to the
        retirement earlier), so in-flight requests alone do not force
        per-cycle stepping.
        """
        if self.window or self._refresh_draining:
            return cycle
        for fifo in self._fifo_list:
            if len(fifo):
                return cycle
        for bank_index in self._close_wanted:
            # A committed policy precharge still waiting on an open row
            # resolves within tRAS; step it cycle by cycle.
            if self.device.bank(bank_index).open_row(cycle) is not None:
                return cycle
        if self._refresh is None:
            return None
        return self._refresh.quiescent_until(cycle)

    def skip_idle_cycles(self, cycles: int) -> None:
        """Account for ``cycles`` idle cycles the simulator skipped.

        Only per-cycle statistics accrue during a quiescent span (FIFO
        occupancy observation); command state is untouched, which is
        exactly what :meth:`quiescent_until` guarantees is safe.
        """
        for fifo in self._fifo_list:
            fifo.observe_cycles(cycles)

    def _retire(self, cycle: int) -> None:
        inflight = self._inflight
        if not inflight:
            return
        if self._inflight_sorted:
            if inflight[0][0] > cycle:
                return
            retired = 0
            for end_cycle, request in inflight:
                if end_cycle > cycle:
                    break
                self._complete(request, end_cycle)
                retired += 1
            del inflight[:retired]
            return
        still: list[tuple[int, Request]] = []
        for end_cycle, request in inflight:
            if end_cycle <= cycle:
                self._complete(request, end_cycle)
            else:
                still.append((end_cycle, request))
        self._inflight = still

    def _complete(self, request: Request, end_cycle: int) -> None:
        """Finish one request whose data burst has ended (override hook)."""
        request.state = RequestState.COMPLETED
        request.completed_cycle = end_cycle
        self.completed.append(request)
        if self.obs is not None:
            self.obs.on_retire(request)

    def _accept(self, cycle: int) -> None:
        if len(self.window) >= self.config.window_size:
            return
        fifo = self.arbiter.select(self._fifo_list, cycle)
        if fifo is None:
            return
        request = fifo.pop()
        request.state = RequestState.ACCEPTED
        request.accepted_cycle = cycle
        request.decoded = self._decode(request)
        self.window.append(request)

    def _decode(self, request: Request):
        """Address-translation hook (overridable for runtime remap)."""
        return self.mapping.decode(request.address)

    # -- refresh ------------------------------------------------------------

    def _service_refresh(self, cycle: int) -> bool:
        """Handle refresh; True when a command slot was consumed."""
        if self._refresh is None:
            return False
        if not self._refresh_draining and self._refresh.due(cycle):
            self._refresh_draining = True
        if not self._refresh_draining:
            return False
        # Drain: precharge open banks one per cycle, then refresh.
        for bank in self.device.banks:
            if bank.open_row(cycle) is not None:
                command = Command(
                    kind=CommandType.PRECHARGE, cycle=cycle, bank=bank.index
                )
                if self.device.can_issue(command):
                    self._issue(command)
                    self._close_wanted.discard(bank.index)
                return True  # slot consumed (or waiting on legality)
        refresh = Command(kind=CommandType.REFRESH, cycle=cycle)
        if self.device.can_issue(refresh):
            self._issue(refresh)
            self._refresh.mark_issued(cycle)
            self.refreshes_issued += 1
            self._refresh_draining = False
        return True

    # -- page policy precharges ----------------------------------------------

    def _issue_policy_precharge(self, cycle: int) -> bool:
        if not self._close_wanted:
            return False
        for bank_index in sorted(self._close_wanted):
            bank = self.device.bank(bank_index)
            if bank.open_row(cycle) is None:
                self._close_wanted.discard(bank_index)
                continue
            command = Command(
                kind=CommandType.PRECHARGE, cycle=cycle, bank=bank_index
            )
            if self.device.can_issue(command):
                self._issue(command)
                self._close_wanted.discard(bank_index)
                return True
        return False

    # -- request commands ------------------------------------------------------

    def _candidate_order(self, cycle: int) -> list:
        """Requests in issue-preference order (overridable hook)."""
        return self.scheduler.candidates(self.window, self.device, cycle)

    def _issue_request_command(self, cycle: int) -> None:
        if not self.window:
            return
        for request in self._candidate_order(cycle):
            command = self._next_command(request, cycle)
            if command is None:
                continue
            if not self.device.can_issue(command):
                continue
            end = self._issue(command)
            if command.kind in (CommandType.READ, CommandType.WRITE):
                self._commit_access(request, cycle, end)
            return

    def _next_command(self, request: Request, cycle: int) -> Command | None:
        assert request.decoded is not None
        decoded = request.decoded
        bank = self.device.bank(decoded.bank)
        open_row = bank.open_row(cycle)
        if decoded.bank in self._close_wanted:
            # The page policy committed to precharging this bank
            # (auto-precharge semantics): no new column commands may
            # reuse the dying row; wait for the precharge to land.
            return None
        if open_row == decoded.row:
            kind = CommandType.READ if request.is_read else CommandType.WRITE
            return Command(
                kind=kind,
                cycle=cycle,
                bank=decoded.bank,
                column=decoded.column,
                request_id=request.request_id,
            )
        if open_row is not None:
            # Bank holds another row: only precharge if no younger row-hit
            # request still wants the open row (the scheduler's candidate
            # ordering already preferred hits, so reaching here means the
            # open row has no ready customer).
            if decoded.bank in self._close_wanted:
                return None  # policy precharge will handle it
            return Command(
                kind=CommandType.PRECHARGE, cycle=cycle, bank=decoded.bank
            )
        return Command(
            kind=CommandType.ACTIVATE,
            cycle=cycle,
            bank=decoded.bank,
            row=decoded.row,
            request_id=request.request_id,
        )

    def _commit_access(self, request: Request, cycle: int, end: int) -> None:
        assert request.decoded is not None
        decoded = request.decoded
        bank = self.device.bank(decoded.bank)
        # Row-hit bookkeeping: a request that never needed an ACTIVATE of
        # its own (row already open when it was first considered) counts
        # as a hit; we approximate by whether the request's issued
        # ACTIVATE happened (tracked via was_row_hit set at ACT issue).
        if request.was_row_hit is None:
            request.was_row_hit = True
        bank.record_access_outcome(request.was_row_hit)
        if self.obs is not None:
            self.obs.on_access(decoded.bank, request.was_row_hit)
        request.state = RequestState.ISSUED
        request.issued_cycle = cycle
        if self._inflight and end < self._inflight[-1][0]:
            self._inflight_sorted = False
        self._inflight.append((end, request))
        self.window.remove(request)
        self.data_beats += self.device.timing.burst_length
        if self.page_policy.close_after_access(
            decoded.bank, decoded.row, self.window
        ):
            self._close_wanted.add(decoded.bank)

    def _issue(self, command: Command) -> int:
        end = self.device.issue(command)
        self.commands[command.kind] += 1
        if self.config.record_commands:
            self.command_log.append(command)
        if self.command_observer is not None:
            self.command_observer(command)
        if self.obs is not None:
            self.obs.on_command(command, end)
        if (
            command.kind is CommandType.ACTIVATE
            and command.request_id is not None
        ):
            for request in self.window:
                if request.request_id == command.request_id:
                    request.was_row_hit = False
                    break
        return end

    # -- statistics -----------------------------------------------------------

    @property
    def outstanding(self) -> int:
        """Requests accepted but not yet completed."""
        return len(self.window) + len(self._inflight)

    def queued_total(self) -> int:
        return sum(len(fifo) for fifo in self.fifos.values())

    def drained(self) -> bool:
        """True when no request is anywhere in the pipeline."""
        return self.outstanding == 0 and self.queued_total() == 0
