"""Multi-client arbitration policies.

The arbiter decides, each cycle, which client FIFO hands its head request
to the controller's scheduling window.  Three classic policies:

* round-robin — fair, work-conserving;
* static priority — latency-critical clients (e.g. display refresh, which
  must never starve) go first;
* TDM — fixed time slots, giving hard bandwidth guarantees at the cost of
  work conservation (an empty slot is wasted).
"""

from __future__ import annotations

import abc
from dataclasses import dataclass, field

from repro.errors import ConfigurationError
from repro.controller.fifo import ClientFifo


class Arbiter(abc.ABC):
    """Chooses which non-empty FIFO to serve this cycle."""

    @abc.abstractmethod
    def select(self, fifos: list[ClientFifo], cycle: int) -> ClientFifo | None:
        """Return the FIFO to pop from, or None if nothing eligible."""
        raise NotImplementedError


@dataclass
class RoundRobinArbiter(Arbiter):
    """Rotating fair arbitration among non-empty FIFOs."""

    _next: int = field(default=0, init=False)

    def select(self, fifos: list[ClientFifo], cycle: int) -> ClientFifo | None:
        del cycle
        if not fifos:
            return None
        n = len(fifos)
        for offset in range(n):
            fifo = fifos[(self._next + offset) % n]
            if not fifo.empty:
                self._next = (self._next + offset + 1) % n
                return fifo
        return None


@dataclass
class PriorityArbiter(Arbiter):
    """Static priority by client priority value (lower = more urgent).

    Attributes:
        priorities: Client name -> priority.  Unknown clients default to
            the lowest urgency.
    """

    priorities: dict[str, int]

    def __post_init__(self) -> None:
        if any(p < 0 for p in self.priorities.values()):
            raise ConfigurationError("priorities must be >= 0")

    def select(self, fifos: list[ClientFifo], cycle: int) -> ClientFifo | None:
        del cycle
        best: ClientFifo | None = None
        best_priority = 1 << 30
        for fifo in fifos:
            if fifo.empty:
                continue
            priority = self.priorities.get(fifo.client, 1 << 29)
            if priority < best_priority:
                best, best_priority = fifo, priority
        return best


@dataclass
class TDMArbiter(Arbiter):
    """Time-division multiplexing over a fixed slot schedule.

    Attributes:
        schedule: Client names, one per slot, repeated cyclically.
        work_conserving: If True, an idle slot is granted to any other
            non-empty FIFO (round-robin among them); if False the slot is
            wasted, preserving hard isolation.
    """

    schedule: list[str]
    work_conserving: bool = False

    _fallback: RoundRobinArbiter = field(
        default_factory=RoundRobinArbiter, init=False
    )

    def __post_init__(self) -> None:
        if not self.schedule:
            raise ConfigurationError("TDM schedule must be non-empty")

    def select(self, fifos: list[ClientFifo], cycle: int) -> ClientFifo | None:
        owner = self.schedule[cycle % len(self.schedule)]
        for fifo in fifos:
            if fifo.client == owner and not fifo.empty:
                return fifo
        if self.work_conserving:
            return self._fallback.select(fifos, cycle)
        return None
