"""Base process technology choices for merged DRAM/logic dies.

Section 3: "both a DRAM technology and a logic technology can serve as a
starting point for embedding DRAM.  Choosing a DRAM technology as the base
technology will result in high memory densities but suboptimal logic
performance.  On the other hand, starting from a logic technology will
result in poor memory densities, but fast logic. ... it is also possible to
develop a process that gives the best of both worlds, most likely at higher
expense."

Each :class:`BaseProcess` bundles the knobs the rest of the library needs:
memory density, logic density and speed, metal layers, mask count (which
drives wafer cost in :mod:`repro.cost`), and leakage class.  The three
quarter-micron instances are calibrated so that the paper's feasibility
claim (128 Mbit + 500 kgates, or 64 Mbit + 1 Mgates) holds exactly on the
DRAM-based process — see DESIGN.md Section 4.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass

from repro.errors import ConfigurationError
from repro.area.cell import CellTechnology, DRAM_1T1C, DRAM_1T1C_PLANAR


class ProcessKind(enum.Enum):
    """Which technology serves as the master process."""

    DRAM_BASED = "dram-based"
    LOGIC_BASED = "logic-based"
    MERGED = "merged"


@dataclass(frozen=True)
class BaseProcess:
    """A fabrication process option for an embedded DRAM project.

    Attributes:
        name: Identifier, e.g. ``"0.25um DRAM-based"``.
        kind: Master-process family.
        feature_size_um: Drawn feature size in micrometres.
        dram_cell: The DRAM cell this process can build.
        memory_density_mbit_per_mm2: Achievable *macro* density including
            periphery, for large modules (the Siemens concept quotes about
            1 Mbit/mm^2 in 0.24 um).
        logic_density_kgates_per_mm2: Routable logic density.  DRAM
            processes have fewer metal layers, so logic is much less dense.
        logic_speed_factor: Logic switching speed relative to a pure logic
            process (1.0).  DRAM transistors are optimized for low leakage,
            hence slower.
        metal_layers: Interconnect layers available.
        mask_count: Total mask steps; extra steps for merged processes make
            wafers more expensive.
        leakage_class: Qualitative leakage (``"low"`` for DRAM-optimized
            transistors, ``"high"`` for logic-optimized).
        relative_wafer_cost: Processed-wafer cost relative to the plain
            logic process (1.0).
    """

    name: str
    kind: ProcessKind
    feature_size_um: float
    dram_cell: CellTechnology
    memory_density_mbit_per_mm2: float
    logic_density_kgates_per_mm2: float
    logic_speed_factor: float
    metal_layers: int
    mask_count: int
    leakage_class: str
    relative_wafer_cost: float

    def __post_init__(self) -> None:
        if self.feature_size_um <= 0:
            raise ConfigurationError(
                f"{self.name}: feature size must be positive, got {self.feature_size_um}"
            )
        if self.memory_density_mbit_per_mm2 <= 0:
            raise ConfigurationError(
                f"{self.name}: memory density must be positive"
            )
        if self.logic_density_kgates_per_mm2 <= 0:
            raise ConfigurationError(
                f"{self.name}: logic density must be positive"
            )
        if not 0 < self.logic_speed_factor <= 1.5:
            raise ConfigurationError(
                f"{self.name}: logic_speed_factor out of range: {self.logic_speed_factor}"
            )
        if self.metal_layers < 1:
            raise ConfigurationError(
                f"{self.name}: metal_layers must be >= 1, got {self.metal_layers}"
            )
        if self.mask_count < 10:
            raise ConfigurationError(
                f"{self.name}: mask_count implausibly low: {self.mask_count}"
            )
        if self.relative_wafer_cost <= 0:
            raise ConfigurationError(
                f"{self.name}: relative_wafer_cost must be positive"
            )
        if self.leakage_class not in ("low", "medium", "high"):
            raise ConfigurationError(
                f"{self.name}: leakage_class must be low/medium/high, "
                f"got {self.leakage_class!r}"
            )

    def memory_area_mm2(self, bits: int) -> float:
        """Macro-level memory area (array + periphery) for ``bits``."""
        if bits < 0:
            raise ConfigurationError(f"bits must be non-negative, got {bits}")
        from repro.units import MBIT

        return (bits / MBIT) / self.memory_density_mbit_per_mm2

    def logic_area_mm2(self, gates: float) -> float:
        """Logic area for a gate count (2-input NAND equivalents)."""
        if gates < 0:
            raise ConfigurationError(f"gates must be non-negative, got {gates}")
        return (gates / 1e3) / self.logic_density_kgates_per_mm2


#: Quarter-micron DRAM-based process (the paper's feasibility numbers).
#: The logic density is calibrated so that 500 kgates occupy the same
#: area as 64 Mbit of macro (including periphery overheads): then
#: 128 Mbit + 500 kG and 64 Mbit + 1 MG both fill the same ~204 mm^2
#: die, which is the paper's Section 1 feasibility claim.
DRAM_BASED_025 = BaseProcess(
    name="0.25um DRAM-based",
    kind=ProcessKind.DRAM_BASED,
    feature_size_um=0.25,
    dram_cell=DRAM_1T1C,
    memory_density_mbit_per_mm2=1.0,
    logic_density_kgates_per_mm2=8.68,
    logic_speed_factor=0.6,
    metal_layers=2,
    mask_count=22,
    leakage_class="low",
    relative_wafer_cost=1.15,
)

#: Quarter-micron logic-based process: fast dense logic, poor DRAM cell.
LOGIC_BASED_025 = BaseProcess(
    name="0.25um logic-based",
    kind=ProcessKind.LOGIC_BASED,
    feature_size_um=0.25,
    dram_cell=DRAM_1T1C_PLANAR,
    memory_density_mbit_per_mm2=0.42,
    logic_density_kgates_per_mm2=40.0,
    logic_speed_factor=1.0,
    metal_layers=5,
    mask_count=20,
    leakage_class="high",
    relative_wafer_cost=1.0,
)

#: Merged process: best of both worlds at extra mask steps and cost
#: ("most likely at higher expense").
MERGED_025 = BaseProcess(
    name="0.25um merged DRAM+logic",
    kind=ProcessKind.MERGED,
    feature_size_um=0.25,
    dram_cell=DRAM_1T1C,
    memory_density_mbit_per_mm2=0.95,
    logic_density_kgates_per_mm2=36.0,
    logic_speed_factor=0.95,
    metal_layers=4,
    mask_count=27,
    leakage_class="medium",
    relative_wafer_cost=1.35,
)

#: All quarter-micron base-process options, for sweeps.
ALL_PROCESSES_025: tuple[BaseProcess, ...] = (
    DRAM_BASED_025,
    LOGIC_BASED_025,
    MERGED_025,
)
