"""Memory macro area model: cell array plus periphery.

The Siemens concept (paper Section 5) quotes "large memory modules, from
8-16 Mbit upwards, achieving an area efficiency of about 1 Mbit/mm^2".
Smaller modules are less efficient because sense amplifiers, row/column
decoders, the interface datapath, BIST logic and redundancy fuses amortize
over fewer bits.  This module makes that size-dependent efficiency explicit:

    area(module) = array_area / array_efficiency_large
                 + fixed_overhead_per_block * n_blocks
                 + interface_overhead(width)

calibrated so large modules converge to the process's quoted macro density
while a lone 256-Kbit block pays a visible premium.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import ConfigurationError
from repro.units import MBIT, KBIT, ceil_div
from repro.area.process import BaseProcess


@dataclass(frozen=True)
class MacroArea:
    """Area breakdown of one memory macro, in mm^2.

    Attributes:
        array_mm2: Cell array including pitch-matched sense amps/decoders.
        block_overhead_mm2: Per-building-block fixed periphery (local
            control, fuses, spares).
        interface_mm2: Datapath and drivers for the module interface.
        total_mm2: Sum of the above.
    """

    array_mm2: float
    block_overhead_mm2: float
    interface_mm2: float

    @property
    def total_mm2(self) -> float:
        return self.array_mm2 + self.block_overhead_mm2 + self.interface_mm2

    def efficiency_mbit_per_mm2(self, bits: int) -> float:
        """Achieved macro density for a module of ``bits``."""
        if self.total_mm2 <= 0:
            raise ConfigurationError("macro area must be positive")
        return (bits / MBIT) / self.total_mm2


@dataclass(frozen=True)
class MacroAreaModel:
    """Size- and width-dependent area model for eDRAM macros.

    Attributes:
        process: Base process supplying the asymptotic macro density.
        block_bits: Building-block size in bits (256 Kbit or 1 Mbit in the
            Siemens concept).
        block_overhead_mm2: Fixed periphery area charged per block.
        interface_mm2_per_bit: Datapath area per interface data bit.
        redundancy_area_fraction: Extra array fraction spent on spare rows
            and columns (a "redundancy level" knob; see Section 5:
            "different redundancy levels, in order to optimize the yield").
    """

    process: BaseProcess
    block_bits: int = MBIT
    block_overhead_mm2: float = 0.04
    interface_mm2_per_bit: float = 0.0015
    redundancy_area_fraction: float = 0.02

    def __post_init__(self) -> None:
        if self.block_bits < 64 * KBIT:
            raise ConfigurationError(
                f"building block implausibly small: {self.block_bits} bits"
            )
        if self.block_overhead_mm2 < 0:
            raise ConfigurationError("block overhead must be non-negative")
        if self.interface_mm2_per_bit < 0:
            raise ConfigurationError("interface area must be non-negative")
        if not 0 <= self.redundancy_area_fraction < 0.5:
            raise ConfigurationError(
                f"redundancy fraction out of range: {self.redundancy_area_fraction}"
            )

    def n_blocks(self, bits: int) -> int:
        """Number of building blocks needed for a module of ``bits``."""
        if bits <= 0:
            raise ConfigurationError(f"module size must be positive, got {bits}")
        return ceil_div(bits, self.block_bits)

    def area(self, bits: int, interface_width: int) -> MacroArea:
        """Area breakdown for a module of ``bits`` with a data interface
        ``interface_width`` bits wide.

        The array is rounded up to whole building blocks, then inflated by
        the redundancy fraction; large modules therefore converge to
        slightly below the process's asymptotic density, which is how the
        Siemens "about 1 Mbit/mm^2" figure behaves.
        """
        if interface_width <= 0:
            raise ConfigurationError(
                f"interface width must be positive, got {interface_width}"
            )
        blocks = self.n_blocks(bits)
        built_bits = blocks * self.block_bits
        array = self.process.memory_area_mm2(built_bits) * (
            1.0 + self.redundancy_area_fraction
        )
        return MacroArea(
            array_mm2=array,
            block_overhead_mm2=blocks * self.block_overhead_mm2,
            interface_mm2=interface_width * self.interface_mm2_per_bit,
        )

    def total_area_mm2(self, bits: int, interface_width: int) -> float:
        """Convenience: total macro area in mm^2."""
        return self.area(bits, interface_width).total_mm2

    def efficiency(self, bits: int, interface_width: int) -> float:
        """Achieved Mbit/mm^2 for the given module."""
        return self.area(bits, interface_width).efficiency_mbit_per_mm2(bits)
