"""Silicon area models for merged DRAM/logic dies.

This package models the area side of the paper's Section 1 and Section 3
trade-offs: memory cell technologies, the choice of a DRAM-based versus
logic-based versus merged base process, memory macro area (array plus
periphery), logic gate density, and whole-die composition including
pad-limitation effects.
"""

from repro.area.cell import CellTechnology, DRAM_1T1C, SRAM_6T, EDRAM_CELLS
from repro.area.process import (
    BaseProcess,
    ProcessKind,
    DRAM_BASED_025,
    LOGIC_BASED_025,
    MERGED_025,
)
from repro.area.macro import MacroAreaModel, MacroArea
from repro.area.logic import LogicAreaModel
from repro.area.die import DieComposition, DieAreaModel, PadRing

__all__ = [
    "CellTechnology",
    "DRAM_1T1C",
    "SRAM_6T",
    "EDRAM_CELLS",
    "BaseProcess",
    "ProcessKind",
    "DRAM_BASED_025",
    "LOGIC_BASED_025",
    "MERGED_025",
    "MacroAreaModel",
    "MacroArea",
    "LogicAreaModel",
    "DieComposition",
    "DieAreaModel",
    "PadRing",
]
