"""Memory cell technologies.

Section 3 of the paper: "The designer has to choose from a wide variety of
memory cell technologies which differ in the number of transistors and in
performance."  This module captures that choice as data: each
:class:`CellTechnology` carries its cell area (in squared feature sizes,
F^2), transistor count, and relative access-speed figure, so area and
performance models can be driven from the same record.

Cell areas in F^2 are process-portable: the physical cell area is
``area_f2 * F**2`` for feature size ``F``.  Typical values: a 1T1C DRAM cell
is 6-12 F^2 depending on process generation and trench/stack capacitor
choice; a 6T SRAM cell is 120-150 F^2.  This ~15x density gap is exactly why
the paper's large embedded memories "have to be implemented as DRAMs".
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import ConfigurationError


@dataclass(frozen=True)
class CellTechnology:
    """A memory cell technology option.

    Attributes:
        name: Human-readable identifier.
        transistors: Transistors per cell (the "number of transistors"
            dimension of the paper's design space).
        area_f2: Cell area in squared feature sizes (F^2).
        relative_speed: Random-access speed relative to a 6T SRAM cell
            (1.0 = SRAM-class).  DRAM cells are slower due to sensing.
        needs_refresh: Whether the cell loses state and requires refresh.
        retention_time_s: Nominal data retention time at 85 C for dynamic
            cells (refresh interval must be below this); ``None`` for
            static cells.
    """

    name: str
    transistors: int
    area_f2: float
    relative_speed: float
    needs_refresh: bool
    retention_time_s: float | None = None

    def __post_init__(self) -> None:
        if self.transistors < 1:
            raise ConfigurationError(
                f"cell {self.name!r}: transistors must be >= 1, got {self.transistors}"
            )
        if self.area_f2 <= 0:
            raise ConfigurationError(
                f"cell {self.name!r}: area_f2 must be positive, got {self.area_f2}"
            )
        if not 0 < self.relative_speed <= 2.0:
            raise ConfigurationError(
                f"cell {self.name!r}: relative_speed must be in (0, 2], got {self.relative_speed}"
            )
        if self.needs_refresh and self.retention_time_s is None:
            raise ConfigurationError(
                f"cell {self.name!r}: dynamic cells must declare a retention time"
            )

    def cell_area_um2(self, feature_size_um: float) -> float:
        """Physical cell area in um^2 at the given feature size."""
        if feature_size_um <= 0:
            raise ConfigurationError(
                f"feature size must be positive, got {feature_size_um}"
            )
        return self.area_f2 * feature_size_um**2

    def array_area_mm2(self, bits: int, feature_size_um: float) -> float:
        """Raw cell-array area (no periphery) for ``bits`` cells, in mm^2."""
        if bits < 0:
            raise ConfigurationError(f"bits must be non-negative, got {bits}")
        return bits * self.cell_area_um2(feature_size_um) * 1e-6

    def density_ratio_vs(self, other: "CellTechnology") -> float:
        """How many times denser this cell is than ``other`` (area ratio)."""
        return other.area_f2 / self.area_f2


#: Stacked/trench-capacitor 1T1C DRAM cell, quarter-micron generation.
DRAM_1T1C = CellTechnology(
    name="1T1C DRAM",
    transistors=1,
    area_f2=8.0,
    relative_speed=0.35,
    needs_refresh=True,
    retention_time_s=64e-3,
)

#: Planar-capacitor 1T1C cell as achievable in a logic-based process
#: (no deep trench / tall stack): much larger cell, same behaviour.
DRAM_1T1C_PLANAR = CellTechnology(
    name="1T1C DRAM (planar, logic process)",
    transistors=1,
    area_f2=19.0,
    relative_speed=0.45,
    needs_refresh=True,
    retention_time_s=16e-3,
)

#: Three-transistor gain cell: a historical middle ground.
DRAM_3T = CellTechnology(
    name="3T gain cell",
    transistors=3,
    area_f2=24.0,
    relative_speed=0.6,
    needs_refresh=True,
    retention_time_s=4e-3,
)

#: Standard six-transistor SRAM cell.
SRAM_6T = CellTechnology(
    name="6T SRAM",
    transistors=6,
    area_f2=135.0,
    relative_speed=1.0,
    needs_refresh=False,
)

#: The cell technologies an eDRAM designer chooses among (Section 3).
EDRAM_CELLS: tuple[CellTechnology, ...] = (
    DRAM_1T1C,
    DRAM_1T1C_PLANAR,
    DRAM_3T,
    SRAM_6T,
)
