"""Whole-die composition: memory + logic + pads.

Covers two Section 1 claims:

* the **feasibility frontier** — "chips with up to 128 Mbit of DRAM and
  500 kgates of logic, or 64 Mbit of DRAM and 1 Mgates of logic are
  feasible" in quarter-micron technology, i.e. logic area can be traded for
  memory area along a fixed die budget; and

* **pad-limited designs** — "pad-limited design may be transformed into
  non-pad-limited ones by choosing an embedded solution": moving a wide
  memory interface on-chip removes pads, which can shrink the die when the
  pad ring, not the core, sets die size.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from repro.errors import ConfigurationError, InfeasibleError
from repro.units import MBIT
from repro.area.process import BaseProcess
from repro.area.logic import LogicAreaModel
from repro.area.macro import MacroAreaModel


@dataclass(frozen=True)
class PadRing:
    """Pad-ring geometry model.

    Attributes:
        pad_pitch_um: Pad pitch along the die edge.
        ring_depth_mm: Radial depth consumed by the pad ring and IO cells.
    """

    pad_pitch_um: float = 90.0
    ring_depth_mm: float = 0.35

    def __post_init__(self) -> None:
        if self.pad_pitch_um <= 0:
            raise ConfigurationError(
                f"pad pitch must be positive, got {self.pad_pitch_um}"
            )
        if self.ring_depth_mm < 0:
            raise ConfigurationError(
                f"ring depth must be non-negative, got {self.ring_depth_mm}"
            )

    def min_edge_mm(self, pad_count: int) -> float:
        """Minimum square-die edge to place ``pad_count`` pads on 4 sides."""
        if pad_count < 0:
            raise ConfigurationError(
                f"pad count must be non-negative, got {pad_count}"
            )
        pads_per_side = math.ceil(pad_count / 4)
        return pads_per_side * self.pad_pitch_um * 1e-3

    def min_die_area_mm2(self, pad_count: int) -> float:
        """Die area implied by the pad ring alone (square die)."""
        return self.min_edge_mm(pad_count) ** 2


@dataclass(frozen=True)
class DieComposition:
    """Result of composing a die from memory, logic, and pads.

    Attributes:
        memory_mm2: Memory macro area.
        logic_mm2: Random-logic area.
        core_mm2: memory + logic.
        pad_limited_mm2: Die area forced by the pad ring.
        die_mm2: max(core-driven area, pad-limited area).
        pad_limited: True when the pad ring, not the core, sets die size.
    """

    memory_mm2: float
    logic_mm2: float
    pad_limited_mm2: float
    ring_overhead_mm2: float

    @property
    def core_mm2(self) -> float:
        return self.memory_mm2 + self.logic_mm2

    @property
    def core_driven_mm2(self) -> float:
        return self.core_mm2 + self.ring_overhead_mm2

    @property
    def die_mm2(self) -> float:
        return max(self.core_driven_mm2, self.pad_limited_mm2)

    @property
    def pad_limited(self) -> bool:
        return self.pad_limited_mm2 > self.core_driven_mm2


@dataclass(frozen=True)
class DieAreaModel:
    """Composes memory macros and logic onto one die.

    Attributes:
        process: Base process.
        macro_model: Memory macro area model (defaults to one built on
            ``process``).
        logic_model: Logic area model (defaults to one built on
            ``process``).
        pad_ring: Pad ring geometry.
    """

    process: BaseProcess
    macro_model: MacroAreaModel | None = None
    logic_model: LogicAreaModel | None = None
    pad_ring: PadRing = PadRing()

    def _macro(self) -> MacroAreaModel:
        return self.macro_model or MacroAreaModel(process=self.process)

    def _logic(self) -> LogicAreaModel:
        return self.logic_model or LogicAreaModel(process=self.process)

    def compose(
        self,
        memory_bits: int,
        logic_gates: float,
        pad_count: int,
        interface_width: int = 64,
    ) -> DieComposition:
        """Compose a die and report its area breakdown."""
        memory = (
            self._macro().total_area_mm2(memory_bits, interface_width)
            if memory_bits > 0
            else 0.0
        )
        logic = self._logic().area_mm2(logic_gates)
        core = memory + logic
        edge = math.sqrt(core) if core > 0 else 0.0
        ring = (
            4 * edge * self.pad_ring.ring_depth_mm
            + 4 * self.pad_ring.ring_depth_mm**2
        )
        return DieComposition(
            memory_mm2=memory,
            logic_mm2=logic,
            pad_limited_mm2=self.pad_ring.min_die_area_mm2(pad_count),
            ring_overhead_mm2=ring,
        )

    def max_memory_bits(
        self,
        die_budget_mm2: float,
        logic_gates: float,
        interface_width: int = 64,
    ) -> int:
        """Largest memory (in bits) fitting a die budget beside the logic.

        Inverts the macro area model by bisection on whole building blocks.
        This is the feasibility-frontier query behind the paper's
        "128 Mbit + 500 kgates or 64 Mbit + 1 Mgates" claim.

        Raises:
            InfeasibleError: If the logic alone exceeds the budget.
        """
        if die_budget_mm2 <= 0:
            raise ConfigurationError(
                f"die budget must be positive, got {die_budget_mm2}"
            )
        logic = self._logic().area_mm2(logic_gates)
        remaining = die_budget_mm2 - logic
        if remaining <= 0:
            raise InfeasibleError(
                f"{logic_gates:.0f} gates need {logic:.1f} mm^2, exceeding "
                f"the {die_budget_mm2:.1f} mm^2 budget"
            )
        macro = self._macro()
        lo, hi = 0, 1
        while (
            macro.total_area_mm2(hi * macro.block_bits, interface_width)
            <= remaining
        ):
            lo, hi = hi, hi * 2
            if hi * macro.block_bits > (1 << 40):  # 1 Tbit sanity cap
                break
        while lo < hi - 1:
            mid = (lo + hi) // 2
            if (
                macro.total_area_mm2(mid * macro.block_bits, interface_width)
                <= remaining
            ):
                lo = mid
            else:
                hi = mid
        return lo * macro.block_bits

    def frontier(
        self,
        die_budget_mm2: float,
        gate_counts: list[float],
        interface_width: int = 64,
    ) -> list[tuple[float, int]]:
        """The logic-vs-memory feasibility frontier.

        Returns ``(gates, max_memory_bits)`` pairs; infeasible gate counts
        map to zero memory rather than raising, so sweeps stay total.
        """
        points: list[tuple[float, int]] = []
        for gates in gate_counts:
            try:
                bits = self.max_memory_bits(
                    die_budget_mm2, gates, interface_width
                )
            except InfeasibleError:
                bits = 0
            points.append((gates, bits))
        return points
