"""Logic area and speed model.

Thin wrapper around :class:`repro.area.process.BaseProcess` that adds the
utilization and speed adjustments a chip architect actually budgets with:
synthesized logic never packs at 100% of raw density, and logic built on a
DRAM master process runs slower because the transistors are tuned for low
leakage rather than drive strength.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import ConfigurationError
from repro.area.process import BaseProcess


@dataclass(frozen=True)
class LogicAreaModel:
    """Area/speed model for random logic on a given base process.

    Attributes:
        process: The base process the logic is built on.
        utilization: Placement utilization achieved after routing,
            in (0, 1].  Fewer metal layers force lower utilization; the
            default 0.85 assumes the process's density figure already
            reflects its routability.
    """

    process: BaseProcess
    utilization: float = 0.85

    def __post_init__(self) -> None:
        if not 0 < self.utilization <= 1:
            raise ConfigurationError(
                f"utilization must be in (0, 1], got {self.utilization}"
            )

    def area_mm2(self, gates: float) -> float:
        """Silicon area for ``gates`` NAND2-equivalents, after utilization."""
        return self.process.logic_area_mm2(gates) / self.utilization

    def gates_fitting(self, area_mm2: float) -> float:
        """How many gates fit in ``area_mm2`` of this process."""
        if area_mm2 < 0:
            raise ConfigurationError(f"area must be non-negative, got {area_mm2}")
        return (
            area_mm2
            * self.utilization
            * self.process.logic_density_kgates_per_mm2
            * 1e3
        )

    def max_clock_mhz(self, reference_mhz: float) -> float:
        """Achievable clock given a target on a pure logic process.

        A design closing timing at ``reference_mhz`` on the reference logic
        process closes at ``reference_mhz * logic_speed_factor`` here.
        """
        if reference_mhz <= 0:
            raise ConfigurationError(
                f"reference clock must be positive, got {reference_mhz}"
            )
        return reference_mhz * self.process.logic_speed_factor
