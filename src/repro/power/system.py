"""System-level memory power: the embedded-vs-discrete comparison.

Reproduces the paper's Section 1 example: "consider a system which needs a
4 Gbyte/s bandwidth and a bus width of 256 bits.  A memory system built
with discrete SDRAMs (16-bit interface at 100 MHz) would require about ten
times the power of an eDRAM with an internal 256-bit interface."

The discrete system replicates a 16-bit part until the bus is 256 bits
wide; every chip burns core power and drives off-chip lines.  The embedded
system has one macro with a 256-bit on-chip bus.  Core power is comparable;
IO power differs by the C*V^2 ratio; the sum lands near 10x.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import ConfigurationError
from repro.units import ceil_div
from repro.power.idd import CorePowerModel, IddParameters, PC100_IDD, EDRAM_IDD
from repro.power.interface import (
    InterfacePowerModel,
    InterfaceSpec,
    OFF_CHIP_BUS,
    ON_CHIP_BUS,
)


@dataclass(frozen=True)
class MemorySystemPower:
    """Power breakdown of one memory system (watts).

    Attributes:
        core_w: Sum of DRAM core power over all devices/macros.
        interface_w: IO switching power of the data/control interface.
        n_chips: Number of discrete devices (1 for embedded).
    """

    core_w: float
    interface_w: float
    n_chips: int

    @property
    def total_w(self) -> float:
        return self.core_w + self.interface_w


@dataclass(frozen=True)
class SystemPowerModel:
    """Builds a memory system to a bandwidth target and reports its power.

    Attributes:
        interface: Electrical interface class (on-chip or off-chip).
        idd: Core current parameters of each device/macro.
        device_width_bits: Data width of one device (16 for the paper's
            discrete SDRAM; the full bus width for an eDRAM macro).
        frequency_hz: Interface clock (data rate per line).
        read_fraction: Read share of the traffic.
    """

    interface: InterfaceSpec
    idd: IddParameters
    device_width_bits: int
    frequency_hz: float
    read_fraction: float = 0.5

    def __post_init__(self) -> None:
        if self.device_width_bits <= 0:
            raise ConfigurationError("device width must be positive")
        if self.frequency_hz <= 0:
            raise ConfigurationError("frequency must be positive")
        if not 0 <= self.read_fraction <= 1:
            raise ConfigurationError("read fraction must be in [0, 1]")

    def chips_for_bus(self, bus_width_bits: int) -> int:
        """Devices needed to compose the requested bus width."""
        if bus_width_bits <= 0:
            raise ConfigurationError("bus width must be positive")
        return ceil_div(bus_width_bits, self.device_width_bits)

    def power(
        self, bus_width_bits: int, utilization: float = 1.0
    ) -> MemorySystemPower:
        """Power of a system with the given total bus width.

        Args:
            bus_width_bits: Total data-bus width of the memory system.
            utilization: Fraction of peak bandwidth actually carried.
        """
        n = self.chips_for_bus(bus_width_bits)
        core_model = CorePowerModel(self.idd)
        busy = core_model.busy_power_w(self.read_fraction)
        idle = core_model.idle_power_w()
        core = n * (utilization * busy + (1 - utilization) * idle)
        io = InterfacePowerModel(
            spec=self.interface,
            width_bits=bus_width_bits,
            frequency_hz=self.frequency_hz,
        ).power_w(utilization)
        return MemorySystemPower(core_w=core, interface_w=io, n_chips=n)

    def peak_bandwidth_bits_per_s(self, bus_width_bits: int) -> float:
        """Peak bandwidth of the composed system."""
        return bus_width_bits * self.frequency_hz


def discrete_vs_embedded_power(
    bandwidth_bytes_per_s: float = 4e9,
    bus_width_bits: int = 256,
    sdram_width_bits: int = 16,
    sdram_clock_hz: float = 100e6,
    edram_clock_hz: float | None = None,
) -> tuple[MemorySystemPower, MemorySystemPower, float]:
    """The paper's Section 1 power example, end to end.

    Builds the discrete system (replicated narrow SDRAMs on an off-chip
    bus) and the embedded system (one wide on-chip macro) at the same
    delivered bandwidth, and returns ``(discrete, embedded, ratio)``.

    The discrete bus is clocked at ``sdram_clock_hz``; the embedded bus
    runs at whatever clock delivers the same bandwidth on the same width
    (unless overridden), so both systems carry identical traffic.
    """
    if bandwidth_bytes_per_s <= 0:
        raise ConfigurationError("bandwidth must be positive")
    required_rate = bandwidth_bytes_per_s * 8 / bus_width_bits
    discrete = SystemPowerModel(
        interface=OFF_CHIP_BUS,
        idd=PC100_IDD,
        device_width_bits=sdram_width_bits,
        frequency_hz=sdram_clock_hz,
    )
    # Utilization: the off-chip bus may be clocked faster than strictly
    # needed; scale to the delivered bandwidth.
    discrete_util = min(1.0, required_rate / sdram_clock_hz)
    embedded_clock = edram_clock_hz if edram_clock_hz else required_rate
    embedded = SystemPowerModel(
        interface=ON_CHIP_BUS,
        idd=EDRAM_IDD,
        device_width_bits=bus_width_bits,
        frequency_hz=embedded_clock,
    )
    embedded_util = min(1.0, required_rate / embedded_clock)
    d = discrete.power(bus_width_bits, discrete_util)
    e = embedded.power(bus_width_bits, embedded_util)
    if e.total_w <= 0:
        raise ConfigurationError("embedded system power must be positive")
    return d, e, d.total_w / e.total_w
