"""Per-access and per-bit energy figures.

Combines the core (IDD) and interface (CV^2 f) models into the energies a
system architect budgets with: energy per row activation, per byte
transferred, per complete frame written.  These also back the IRAM energy-
efficiency comparison (Section 4.2: "improve the energy efficiency by a
factor of 2 to 4").
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import ConfigurationError
from repro.power.idd import CorePowerModel, IddParameters
from repro.power.interface import InterfacePowerModel


@dataclass(frozen=True)
class EnergyBreakdown:
    """Energy of one memory access, split by mechanism (joules).

    Attributes:
        activation: Row activate + precharge energy share.
        core_transfer: Array/datapath energy of the burst itself.
        interface: IO switching energy of moving the data over the bus.
    """

    activation: float
    core_transfer: float
    interface: float

    @property
    def total(self) -> float:
        return self.activation + self.core_transfer + self.interface

    def per_bit(self, bits: int) -> float:
        """Total energy divided over the access's data bits."""
        if bits <= 0:
            raise ConfigurationError(f"bits must be positive, got {bits}")
        return self.total / bits


@dataclass(frozen=True)
class AccessEnergyModel:
    """Energy model of a (row-activate + burst) access.

    Attributes:
        idd: Core current parameters of the device/macro.
        interface: Interface power model for the data movement.
        row_cycle_time_s: tRC — duration charged to one activate/precharge.
        transfer_clock_hz: Data clock during the burst.
    """

    idd: IddParameters
    interface: InterfacePowerModel
    row_cycle_time_s: float
    transfer_clock_hz: float

    def __post_init__(self) -> None:
        if self.row_cycle_time_s <= 0:
            raise ConfigurationError("row cycle time must be positive")
        if self.transfer_clock_hz <= 0:
            raise ConfigurationError("transfer clock must be positive")

    def activation_energy_j(self) -> float:
        """Energy of one activate/precharge pair (IDD0 over tRC)."""
        extra = max(0.0, self.idd.idd0 - self.idd.idd2)
        return extra * self.idd.vdd * self.row_cycle_time_s

    def burst_core_energy_j(self, burst_bits: int, read: bool = True) -> float:
        """Core energy of transferring ``burst_bits`` at the data clock."""
        if burst_bits <= 0:
            raise ConfigurationError("burst must carry at least one bit")
        current = self.idd.idd4r if read else self.idd.idd4w
        extra = max(0.0, current - self.idd.idd3)
        beats = burst_bits / self.interface.width_bits
        return extra * self.idd.vdd * beats / self.transfer_clock_hz

    def interface_energy_j(self, burst_bits: int) -> float:
        """IO energy of moving ``burst_bits`` over the bus."""
        if burst_bits <= 0:
            raise ConfigurationError("burst must carry at least one bit")
        return self.interface.energy_per_bit_j() * burst_bits

    def access(
        self, burst_bits: int, read: bool = True, row_hit: bool = False
    ) -> EnergyBreakdown:
        """Energy breakdown of one access.

        Args:
            burst_bits: Data bits moved by the access.
            read: Read (True) or write (False).
            row_hit: If True, the row was already open and no activation
                energy is charged — the "active row acts as a cache"
                effect the paper highlights in Section 4.
        """
        return EnergyBreakdown(
            activation=0.0 if row_hit else self.activation_energy_j(),
            core_transfer=self.burst_core_energy_j(burst_bits, read),
            interface=self.interface_energy_j(burst_bits),
        )

    def energy_per_useful_bit(
        self, burst_bits: int, useful_bits: int, row_hit_rate: float
    ) -> float:
        """Average energy per *useful* bit for a traffic mix.

        Over-fetch (useful < burst) and page misses both inflate this;
        organization choices (page length, banks, mapping) move it.
        """
        if not 0 <= row_hit_rate <= 1:
            raise ConfigurationError(
                f"row hit rate must be in [0, 1], got {row_hit_rate}"
            )
        if useful_bits <= 0 or useful_bits > burst_bits:
            raise ConfigurationError(
                "useful bits must be in [1, burst_bits]"
            )
        miss = self.access(burst_bits, row_hit=False).total
        hit = self.access(burst_bits, row_hit=True).total
        avg = row_hit_rate * hit + (1 - row_hit_rate) * miss
        return avg / useful_bits
