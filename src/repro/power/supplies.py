"""Power-supply domains on a merged DRAM/logic die.

Paper Section 1: "DRAMs and logic require different power supplies;
currently the DRAM power supply (2.5V) is less than the logic power
supply (3.3V), but this situation will reverse in the future due to the
back-biasing problem in DRAMs."

A merged die therefore carries at least two supply domains plus the
DRAM's internally generated voltages (boosted word-line VPP, back-bias
VBB).  The model counts domains, prices the regulators/pumps and the
level shifters on domain-crossing signals, and captures the paper's
noted *reversal*: as logic supplies scale down faster than DRAM
supplies, which side needs the higher rail flips.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import ConfigurationError


@dataclass(frozen=True)
class SupplyDomain:
    """One supply domain on the die.

    Attributes:
        name: Domain name.
        voltage: Nominal rail voltage.
        on_chip_generated: Produced by an on-chip pump/regulator (VPP,
            VBB) rather than a package pin.
    """

    name: str
    voltage: float
    on_chip_generated: bool = False

    def __post_init__(self) -> None:
        if self.voltage == 0:
            raise ConfigurationError(f"{self.name}: voltage must be nonzero")


@dataclass(frozen=True)
class SupplyPlan:
    """The supply architecture of a merged die.

    Attributes:
        logic_vdd: Logic core supply.
        dram_vdd: DRAM array supply.
        year: Technology year (drives the scaling trends below).
        crossing_signals: Signals crossing the logic/DRAM boundary
            (address + data + control of the internal interface).
    """

    logic_vdd: float = 3.3
    dram_vdd: float = 2.5
    year: int = 1998
    crossing_signals: int = 300

    #: Pump/regulator area per on-chip-generated rail (mm^2).
    PUMP_AREA_MM2 = 0.4
    #: Level-shifter area per crossing signal (mm^2).
    SHIFTER_AREA_MM2 = 0.0006

    def __post_init__(self) -> None:
        if self.logic_vdd <= 0 or self.dram_vdd <= 0:
            raise ConfigurationError("supplies must be positive")
        if self.crossing_signals < 0:
            raise ConfigurationError("crossing signals must be >= 0")

    def domains(self) -> tuple:
        """All supply domains: two external rails plus the DRAM's
        internally generated word-line boost and back-bias."""
        return (
            SupplyDomain(name="logic VDD", voltage=self.logic_vdd),
            SupplyDomain(name="DRAM VDD", voltage=self.dram_vdd),
            SupplyDomain(
                name="VPP (word-line boost)",
                voltage=self.dram_vdd + 1.5,
                on_chip_generated=True,
            ),
            SupplyDomain(
                name="VBB (back bias)",
                voltage=-1.0,
                on_chip_generated=True,
            ),
        )

    def needs_level_shifters(self) -> bool:
        """Signals crossing unequal rails need shifting."""
        return abs(self.logic_vdd - self.dram_vdd) > 0.2

    def overhead_area_mm2(self) -> float:
        """Silicon overhead of the supply architecture."""
        pumps = sum(
            1 for domain in self.domains() if domain.on_chip_generated
        )
        area = pumps * self.PUMP_AREA_MM2
        if self.needs_level_shifters():
            area += self.crossing_signals * self.SHIFTER_AREA_MM2
        return area

    def dram_rail_is_higher(self) -> bool:
        """The paper's predicted reversal: True once the DRAM rail
        exceeds the logic rail."""
        return self.dram_vdd > self.logic_vdd


def projected_plan(year: int) -> SupplyPlan:
    """Supply plan under the era's scaling trends.

    Logic supplies scaled aggressively with feature size (3.3 V in 1998
    heading to ~1.2 V by 2004); DRAM array supplies scaled slowly
    because cell signal margin and the back-bias scheme resist it
    (2.5 V heading to ~1.8 V).  The crossover the paper predicts falls
    out around the turn of the millennium.
    """
    if year < 1995 or year > 2010:
        raise ConfigurationError(f"model calibrated for 1995-2010: {year}")
    logic = 3.3 * (0.85 ** (year - 1998))
    dram = 2.5 * (0.95 ** (year - 1998))
    return SupplyPlan(
        logic_vdd=round(logic, 2), dram_vdd=round(dram, 2), year=year
    )


def reversal_year(start: int = 1998, end: int = 2010) -> int | None:
    """First year the DRAM rail exceeds the logic rail."""
    for year in range(start, end + 1):
        if projected_plan(year).dram_rail_is_higher():
            return year
    return None
