"""Datasheet-style DRAM core power model (IDD currents).

Commodity SDRAM datasheets specify operating currents per state: active-
precharge cycling (IDD0), burst read/write (IDD4R/IDD4W), precharge standby
(IDD2), active standby (IDD3), and refresh (IDD5).  Average core power is a
weighted mix of these by the fraction of time spent in each state — the
approach Micron later formalized in its power calculators and that memory-
system simulators (DRAMPower, DRAMSim) adopted.

The eDRAM core uses the same structure with core-supply values; the array
physics are the same, so core power is comparable on both sides of the
embedded/discrete divide.  What differs by ~an order of magnitude is the
*interface* power (:mod:`repro.power.interface`), which is the paper's
point: core power does not go away on-chip, so the total-system ratio
lands near 10x rather than the raw 25x+ of the IO alone.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import ConfigurationError


@dataclass(frozen=True)
class IddParameters:
    """Operating currents of one DRAM device or macro.

    All currents in amperes, voltage in volts.  Names follow JEDEC
    conventions for single-data-rate SDRAM.

    Attributes:
        vdd: Core supply voltage.
        idd0: Average current of continuous activate-precharge cycling.
        idd2: Precharge (idle, all banks closed) standby current.
        idd3: Active (row open) standby current.
        idd4r: Burst read current.
        idd4w: Burst write current.
        idd5: Auto-refresh burst current.
        refresh_period_s: Interval in which all rows must be refreshed.
        refresh_cycles: Refresh commands per refresh period.
        refresh_cycle_time_s: Duration of one refresh command (tRFC).
    """

    vdd: float
    idd0: float
    idd2: float
    idd3: float
    idd4r: float
    idd4w: float
    idd5: float
    refresh_period_s: float = 64e-3
    refresh_cycles: int = 4096
    refresh_cycle_time_s: float = 80e-9

    def __post_init__(self) -> None:
        if self.vdd <= 0:
            raise ConfigurationError(f"vdd must be positive, got {self.vdd}")
        for name in ("idd0", "idd2", "idd3", "idd4r", "idd4w", "idd5"):
            if getattr(self, name) < 0:
                raise ConfigurationError(f"{name} must be non-negative")
        if self.idd2 > self.idd3:
            raise ConfigurationError(
                "precharge standby current cannot exceed active standby"
            )
        if self.refresh_period_s <= 0 or self.refresh_cycle_time_s <= 0:
            raise ConfigurationError("refresh timings must be positive")
        if self.refresh_cycles <= 0:
            raise ConfigurationError("refresh cycle count must be positive")

    def scaled_for_width(
        self, width_bits: int, reference_width_bits: int = 256
    ) -> "IddParameters":
        """Scale the datapath (burst) currents to a different data width.

        Row activation, standby and refresh currents are per-row/per-array
        quantities and do not scale with interface width; the burst
        read/write currents scale roughly linearly with the number of data
        lines being driven through the internal datapath.
        """
        if width_bits <= 0 or reference_width_bits <= 0:
            raise ConfigurationError("widths must be positive")
        scale = width_bits / reference_width_bits
        return IddParameters(
            vdd=self.vdd,
            idd0=self.idd0,
            idd2=self.idd2,
            idd3=self.idd3,
            idd4r=self.idd4r * scale,
            idd4w=self.idd4w * scale,
            idd5=self.idd5,
            refresh_period_s=self.refresh_period_s,
            refresh_cycles=self.refresh_cycles,
            refresh_cycle_time_s=self.refresh_cycle_time_s,
        )


#: A PC100-class 64-Mbit x16 SDRAM (datasheet-typical values).
PC100_IDD = IddParameters(
    vdd=3.3,
    idd0=0.090,
    idd2=0.003,
    idd3=0.030,
    idd4r=0.120,
    idd4w=0.115,
    idd5=0.150,
)

#: A 256-bit-wide eDRAM macro on the 2.5 V DRAM core supply.  The burst
#: currents cover the full 256-bit internal datapath (use
#: :meth:`IddParameters.scaled_for_width` for other widths); there is no
#: off-chip output stage — IO power is accounted in the interface model.
EDRAM_IDD = IddParameters(
    vdd=2.5,
    idd0=0.120,
    idd2=0.008,
    idd3=0.050,
    idd4r=0.360,
    idd4w=0.340,
    idd5=0.150,
    refresh_cycles=1024,
)


@dataclass(frozen=True)
class StateWeights:
    """Fractions of time the device spends in each power state.

    Must be non-negative and sum to <= 1; the remainder is precharge
    standby.
    """

    activating: float = 0.0
    reading: float = 0.0
    writing: float = 0.0
    active_standby: float = 0.0

    def __post_init__(self) -> None:
        fractions = (
            self.activating,
            self.reading,
            self.writing,
            self.active_standby,
        )
        if any(f < 0 for f in fractions):
            raise ConfigurationError("state fractions must be non-negative")
        if sum(fractions) > 1.0 + 1e-9:
            raise ConfigurationError(
                f"state fractions sum to {sum(fractions):.3f} > 1"
            )

    @property
    def precharge_standby(self) -> float:
        return max(
            0.0,
            1.0
            - (
                self.activating
                + self.reading
                + self.writing
                + self.active_standby
            ),
        )


@dataclass(frozen=True)
class CorePowerModel:
    """Average core power of one DRAM device from IDD currents."""

    idd: IddParameters

    def refresh_power_w(self) -> float:
        """Average refresh power (duty-cycled IDD5 above standby)."""
        duty = (
            self.idd.refresh_cycles * self.idd.refresh_cycle_time_s
        ) / self.idd.refresh_period_s
        extra = max(0.0, self.idd.idd5 - self.idd.idd2)
        return duty * extra * self.idd.vdd

    def average_power_w(self, weights: StateWeights) -> float:
        """Average core power for a usage mix.

        The refresh contribution is added on top since refresh interleaves
        with normal operation.
        """
        idd = self.idd
        current = (
            weights.activating * idd.idd0
            + weights.reading * idd.idd4r
            + weights.writing * idd.idd4w
            + weights.active_standby * idd.idd3
            + weights.precharge_standby * idd.idd2
        )
        return current * idd.vdd + self.refresh_power_w()

    def busy_power_w(self, read_fraction: float = 0.5) -> float:
        """Power of a device streaming data continuously.

        Args:
            read_fraction: Share of transfers that are reads (rest writes).
        """
        if not 0 <= read_fraction <= 1:
            raise ConfigurationError(
                f"read fraction must be in [0, 1], got {read_fraction}"
            )
        return self.average_power_w(
            StateWeights(
                activating=0.15,
                reading=0.85 * read_fraction,
                writing=0.85 * (1 - read_fraction),
            )
        )

    def idle_power_w(self) -> float:
        """Power of a device sitting in precharge standby with refresh."""
        return self.average_power_w(StateWeights())
