"""Interface (IO) switching power: the heart of the paper's 10x claim.

"Replacing off-chip drivers with smaller on-chip drivers can reduce power
consumption significantly, as large board wire capacitive loads are
avoided."  (Section 1.)

The model is plain dynamic CMOS switching power per signal line::

    P_line = activity * C_load * V_swing^2 * f_toggle

An off-chip SDRAM data line sees the board trace, the connector/module
parasitics, the driver's own output capacitance and every input it fans
out to — tens of picofarads at full supply swing.  An on-chip bus line of a
few millimetres is one to two picofarads at (lower) core supply.  The
interface width and toggle rate are fixed by the bandwidth requirement, so
the power ratio reduces to a ``C * V^2`` ratio per line — which is how the
paper's factor arises.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import ConfigurationError
from repro.units import PF


@dataclass(frozen=True)
class InterfaceSpec:
    """Electrical description of one memory interface class.

    Attributes:
        name: Identifier, e.g. ``"off-chip SDRAM bus"``.
        capacitance_per_line_f: Total switched capacitance per signal
            line, in farads.
        swing_v: Voltage swing (full-rail for LVTTL-era SDRAM signalling).
        activity: Average toggle probability per line per data transfer
            (0.5 = random data).
        control_overhead: Additional power fraction for clock, address and
            control lines, relative to the data-line power (address and
            command buses toggle too, and the clock toggles every cycle).
    """

    name: str
    capacitance_per_line_f: float
    swing_v: float
    activity: float = 0.5
    control_overhead: float = 0.25

    def __post_init__(self) -> None:
        if self.capacitance_per_line_f <= 0:
            raise ConfigurationError(
                f"{self.name}: capacitance must be positive"
            )
        if self.swing_v <= 0:
            raise ConfigurationError(f"{self.name}: swing must be positive")
        if not 0 < self.activity <= 1:
            raise ConfigurationError(
                f"{self.name}: activity must be in (0, 1], got {self.activity}"
            )
        if self.control_overhead < 0:
            raise ConfigurationError(
                f"{self.name}: control overhead must be >= 0"
            )

    def energy_per_line_toggle_j(self) -> float:
        """Energy of one full-swing toggle of one line, in joules."""
        return self.capacitance_per_line_f * self.swing_v**2


#: On-chip eDRAM bus: a few mm of metal, small repeated drivers, core swing.
ON_CHIP_BUS = InterfaceSpec(
    name="on-chip eDRAM bus",
    capacitance_per_line_f=1.5 * PF,
    swing_v=2.5,
    activity=0.5,
    control_overhead=0.25,
)

#: Off-chip SDRAM bus: board trace + pins + fanout, LVTTL 3.3 V swing.
OFF_CHIP_BUS = InterfaceSpec(
    name="off-chip SDRAM bus",
    capacitance_per_line_f=25.0 * PF,
    swing_v=3.3,
    activity=0.5,
    control_overhead=0.25,
)


@dataclass(frozen=True)
class InterfacePowerModel:
    """Switching power of a memory interface.

    Attributes:
        spec: Electrical interface class.
        width_bits: Data-bus width of the interface.
        frequency_hz: Data transfer rate per line (transfers/second; for
            single-data-rate SDRAM this equals the clock frequency).
    """

    spec: InterfaceSpec
    width_bits: int
    frequency_hz: float

    def __post_init__(self) -> None:
        if self.width_bits <= 0:
            raise ConfigurationError(
                f"interface width must be positive, got {self.width_bits}"
            )
        if self.frequency_hz <= 0:
            raise ConfigurationError(
                f"frequency must be positive, got {self.frequency_hz}"
            )

    @property
    def peak_bandwidth_bits_per_s(self) -> float:
        """Peak transfer rate of the interface in bits/second."""
        return self.width_bits * self.frequency_hz

    def power_w(self, utilization: float = 1.0) -> float:
        """Average interface power at the given bus utilization.

        Args:
            utilization: Fraction of cycles carrying data, in [0, 1].
        """
        if not 0 <= utilization <= 1:
            raise ConfigurationError(
                f"utilization must be in [0, 1], got {utilization}"
            )
        data = (
            self.spec.activity
            * self.spec.energy_per_line_toggle_j()
            * self.width_bits
            * self.frequency_hz
            * utilization
        )
        return data * (1.0 + self.spec.control_overhead)

    def energy_per_bit_j(self) -> float:
        """Average energy to move one data bit across this interface."""
        return self.power_w(1.0) / self.peak_bandwidth_bits_per_s

    def width_for_bandwidth(self, bandwidth_bits_per_s: float) -> int:
        """Minimum bus width delivering the requested peak bandwidth."""
        if bandwidth_bits_per_s <= 0:
            raise ConfigurationError("bandwidth must be positive")
        from repro.units import ceil_div

        return ceil_div(int(bandwidth_bits_per_s), int(self.frequency_hz))
