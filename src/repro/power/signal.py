"""Interconnect delay and noise: the speed side of going on-chip.

Paper Section 1: "As interface wire lengths can be optimized for the
application in edrams, lower propagation times and thus higher speeds
are possible.  In addition, noise immunity is enhanced."

The model is a lumped-RC + time-of-flight estimate per interconnect
class: an off-chip memory bus crosses centimetres of board trace through
package parasitics into multiple receiver loads; an on-chip bus crosses
millimetres of metal.  The achievable toggle rate is limited by the
settling time (a few RC plus flight time), and the noise margin differs
because board-level returns, connector discontinuities and simultaneous
switching eat into the budget.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import ConfigurationError


@dataclass(frozen=True)
class InterconnectModel:
    """One interconnect class between memory and logic.

    Attributes:
        name: Class name.
        length_m: Physical signal length.
        resistance_ohm_per_m: Series resistance per metre.
        capacitance_f_per_m: Capacitance per metre (plus lumped loads
            folded in via ``lumped_capacitance_f``).
        lumped_capacitance_f: Driver/receiver/package capacitance.
        velocity_m_per_s: Propagation velocity (~c/2 on FR4, slower on
            resistive on-chip wires where RC dominates anyway).
        noise_budget_fraction: Fraction of the swing available as noise
            margin after crosstalk/SSO/reflection allocations.
        settle_time_constants: RC time constants demanded for settling.
    """

    name: str
    length_m: float
    resistance_ohm_per_m: float
    capacitance_f_per_m: float
    lumped_capacitance_f: float
    velocity_m_per_s: float
    noise_budget_fraction: float
    settle_time_constants: float = 3.0

    def __post_init__(self) -> None:
        if self.length_m <= 0:
            raise ConfigurationError(f"{self.name}: length must be > 0")
        if self.resistance_ohm_per_m < 0 or self.capacitance_f_per_m <= 0:
            raise ConfigurationError(f"{self.name}: bad RC parameters")
        if self.lumped_capacitance_f < 0:
            raise ConfigurationError(f"{self.name}: bad lumped C")
        if self.velocity_m_per_s <= 0:
            raise ConfigurationError(f"{self.name}: bad velocity")
        if not 0 < self.noise_budget_fraction <= 1:
            raise ConfigurationError(f"{self.name}: bad noise budget")
        if self.settle_time_constants <= 0:
            raise ConfigurationError(f"{self.name}: bad settle factor")

    @property
    def total_capacitance_f(self) -> float:
        return (
            self.capacitance_f_per_m * self.length_m
            + self.lumped_capacitance_f
        )

    @property
    def total_resistance_ohm(self) -> float:
        return self.resistance_ohm_per_m * self.length_m

    def flight_time_s(self) -> float:
        """Time-of-flight over the interconnect."""
        return self.length_m / self.velocity_m_per_s

    def rc_time_s(self, driver_resistance_ohm: float = 25.0) -> float:
        """Lumped RC time constant including the driver."""
        if driver_resistance_ohm < 0:
            raise ConfigurationError("driver resistance must be >= 0")
        # Distributed-wire Elmore term (R*C/2) plus driver charging the
        # full load.
        distributed = (
            self.total_resistance_ohm
            * self.capacitance_f_per_m
            * self.length_m
            / 2.0
        )
        lumped = driver_resistance_ohm * self.total_capacitance_f
        return distributed + lumped

    def propagation_delay_s(
        self, driver_resistance_ohm: float = 25.0
    ) -> float:
        """Signal delay: flight time plus settling."""
        return self.flight_time_s() + self.settle_time_constants * (
            self.rc_time_s(driver_resistance_ohm)
        )

    def max_toggle_rate_hz(
        self, driver_resistance_ohm: float = 25.0
    ) -> float:
        """Highest data rate the line settles at (one bit per delay)."""
        return 1.0 / self.propagation_delay_s(driver_resistance_ohm)

    def noise_margin_v(self, swing_v: float) -> float:
        """Absolute noise margin at a given swing."""
        if swing_v <= 0:
            raise ConfigurationError("swing must be positive")
        return swing_v * self.noise_budget_fraction


#: Off-chip SDRAM bus: ~8 cm of board trace, connector/package
#: parasitics, multiple receiver loads; heavy SSO/reflection allocation.
OFF_CHIP_TRACE = InterconnectModel(
    name="off-chip board trace",
    length_m=0.08,
    resistance_ohm_per_m=10.0,
    capacitance_f_per_m=130e-12,
    lumped_capacitance_f=14e-12,
    velocity_m_per_s=1.5e8,
    noise_budget_fraction=0.25,
)

#: On-chip bus: ~3 mm of metal, repeatered; quiet returns.
ON_CHIP_WIRE = InterconnectModel(
    name="on-chip bus wire",
    length_m=0.003,
    resistance_ohm_per_m=40e3,
    capacitance_f_per_m=250e-12,
    lumped_capacitance_f=0.6e-12,
    velocity_m_per_s=0.7e8,
    noise_budget_fraction=0.45,
)


def speed_advantage(
    on_chip: InterconnectModel = ON_CHIP_WIRE,
    off_chip: InterconnectModel = OFF_CHIP_TRACE,
) -> float:
    """Toggle-rate ratio on-chip/off-chip — the 'higher speeds' claim."""
    return on_chip.max_toggle_rate_hz() / off_chip.max_toggle_rate_hz()
