"""Battery-life impact of the memory subsystem.

Section 2: "Other things being equal, edram will find its way first into
portable applications."  This module turns the power models into the
number a portable-product architect actually argues with: hours of
battery life, and how many of them the memory interface choice buys.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import ConfigurationError


@dataclass(frozen=True)
class Battery:
    """A battery pack.

    Attributes:
        capacity_wh: Usable energy in watt-hours.
        derating: Fraction of nominal capacity deliverable at the load
            (conversion losses, aging headroom).
    """

    capacity_wh: float = 40.0
    derating: float = 0.85

    def __post_init__(self) -> None:
        if self.capacity_wh <= 0:
            raise ConfigurationError("capacity must be positive")
        if not 0 < self.derating <= 1:
            raise ConfigurationError("derating must be in (0, 1]")

    @property
    def usable_wh(self) -> float:
        return self.capacity_wh * self.derating

    def runtime_hours(self, load_w: float) -> float:
        """Hours of runtime at a constant load."""
        if load_w <= 0:
            raise ConfigurationError("load must be positive")
        return self.usable_wh / load_w


@dataclass(frozen=True)
class PortableSystemPower:
    """A portable product's power budget.

    Attributes:
        base_power_w: Everything except the memory subsystem (CPU,
            display, radios).
        memory_power_w: The memory subsystem under evaluation.
    """

    base_power_w: float
    memory_power_w: float

    def __post_init__(self) -> None:
        if self.base_power_w < 0 or self.memory_power_w < 0:
            raise ConfigurationError("power must be >= 0")

    @property
    def total_w(self) -> float:
        return self.base_power_w + self.memory_power_w

    def memory_share(self) -> float:
        if self.total_w == 0:
            return 0.0
        return self.memory_power_w / self.total_w


def battery_life_gain_hours(
    battery: Battery,
    base_power_w: float,
    memory_power_before_w: float,
    memory_power_after_w: float,
) -> float:
    """Runtime hours gained by a memory-subsystem power reduction.

    Args:
        battery: The battery pack.
        base_power_w: Non-memory system power.
        memory_power_before_w: Memory power of the discrete solution.
        memory_power_after_w: Memory power of the embedded solution.

    Returns:
        Additional hours of runtime (positive when 'after' is lower).
    """
    before = PortableSystemPower(base_power_w, memory_power_before_w)
    after = PortableSystemPower(base_power_w, memory_power_after_w)
    return battery.runtime_hours(after.total_w) - battery.runtime_hours(
        before.total_w
    )
