"""Power and energy models.

The paper's single most quantitative claim (Section 1) is electrical: a
4 Gbyte/s, 256-bit-wide memory system built from discrete 16-bit SDRAMs
needs about ten times the power of an eDRAM with an internal 256-bit
interface, because off-chip drivers charge large board-wire capacitances.
This package provides:

* :mod:`repro.power.interface` — CV^2 f switching power of a data/address
  interface, parameterized by per-line capacitance and swing,
* :mod:`repro.power.idd` — datasheet-style IDD operating-current model of
  the DRAM core (activate/precharge, read/write burst, background,
  refresh),
* :mod:`repro.power.energy` — per-access and per-bit energy figures,
* :mod:`repro.power.system` — system-level roll-up over N chips and the
  embedded-vs-discrete comparison,
* :mod:`repro.power.thermal` — junction temperature and its effect on
  retention time / refresh rate (the paper's noted downside: per-chip
  power may *increase* when memory moves on-die).
"""

from repro.power.interface import InterfaceSpec, InterfacePowerModel, ON_CHIP_BUS, OFF_CHIP_BUS
from repro.power.idd import IddParameters, CorePowerModel, PC100_IDD, EDRAM_IDD
from repro.power.energy import AccessEnergyModel, EnergyBreakdown
from repro.power.system import MemorySystemPower, SystemPowerModel, discrete_vs_embedded_power
from repro.power.thermal import ThermalModel, retention_time_at
from repro.power.battery import Battery, PortableSystemPower, battery_life_gain_hours
from repro.power.signal import (
    InterconnectModel,
    OFF_CHIP_TRACE,
    ON_CHIP_WIRE,
    speed_advantage,
)
from repro.power.supplies import (
    SupplyDomain,
    SupplyPlan,
    projected_plan,
    reversal_year,
)

__all__ = [
    "InterfaceSpec",
    "InterfacePowerModel",
    "ON_CHIP_BUS",
    "OFF_CHIP_BUS",
    "IddParameters",
    "CorePowerModel",
    "PC100_IDD",
    "EDRAM_IDD",
    "AccessEnergyModel",
    "EnergyBreakdown",
    "MemorySystemPower",
    "SystemPowerModel",
    "discrete_vs_embedded_power",
    "ThermalModel",
    "retention_time_at",
    "Battery",
    "PortableSystemPower",
    "battery_life_gain_hours",
    "InterconnectModel",
    "OFF_CHIP_TRACE",
    "ON_CHIP_WIRE",
    "speed_advantage",
    "SupplyDomain",
    "SupplyPlan",
    "projected_plan",
    "reversal_year",
]
