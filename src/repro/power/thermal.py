"""Junction temperature and DRAM retention interaction.

Paper, Section 1: "Although the power consumption per system decreases,
the power consumption per chip may increase.  Therefore junction
temperature may increase and DRAM retention time may decrease."

Cell leakage grows exponentially with temperature; the standard rule of
thumb is that DRAM retention halves roughly every 10 C.  This module
closes the loop: chip power -> junction temperature (via the package's
thermal resistance) -> retention time -> required refresh rate -> refresh
power.  The fixed point is computed by simple iteration (the feedback is
weak, so it converges in a few steps).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import ConfigurationError, SimulationError


def retention_time_at(
    junction_c: float,
    nominal_retention_s: float = 64e-3,
    nominal_junction_c: float = 85.0,
    halving_interval_c: float = 10.0,
) -> float:
    """Retention time at a junction temperature.

    Retention halves every ``halving_interval_c`` degrees above the
    nominal point (and doubles below it).
    """
    if nominal_retention_s <= 0:
        raise ConfigurationError("nominal retention must be positive")
    if halving_interval_c <= 0:
        raise ConfigurationError("halving interval must be positive")
    exponent = (junction_c - nominal_junction_c) / halving_interval_c
    return nominal_retention_s * 2.0 ** (-exponent)


@dataclass(frozen=True)
class ThermalModel:
    """Package thermal model with retention feedback.

    Attributes:
        theta_ja_c_per_w: Junction-to-ambient thermal resistance.
        ambient_c: Ambient temperature.
        nominal_retention_s: Cell retention at ``nominal_junction_c``.
        nominal_junction_c: Temperature at which retention is nominal.
        refresh_energy_per_pass_j: Energy to refresh the whole array once.
    """

    theta_ja_c_per_w: float = 15.0
    ambient_c: float = 45.0
    nominal_retention_s: float = 64e-3
    nominal_junction_c: float = 85.0
    refresh_energy_per_pass_j: float = 2e-4

    def __post_init__(self) -> None:
        if self.theta_ja_c_per_w <= 0:
            raise ConfigurationError("theta_ja must be positive")
        if self.refresh_energy_per_pass_j < 0:
            raise ConfigurationError("refresh energy must be >= 0")

    def junction_c(self, power_w: float) -> float:
        """Junction temperature at a chip power."""
        if power_w < 0:
            raise ConfigurationError(f"power must be >= 0, got {power_w}")
        return self.ambient_c + self.theta_ja_c_per_w * power_w

    def refresh_power_w(self, retention_s: float, margin: float = 2.0) -> float:
        """Refresh power needed to refresh ``margin``x faster than retention."""
        if retention_s <= 0:
            raise ConfigurationError("retention must be positive")
        if margin < 1:
            raise ConfigurationError(f"margin must be >= 1, got {margin}")
        interval = retention_s / margin
        return self.refresh_energy_per_pass_j / interval

    def solve(
        self, base_power_w: float, max_iterations: int = 50
    ) -> tuple[float, float, float]:
        """Fixed point of the power/temperature/refresh feedback loop.

        Args:
            base_power_w: Chip power excluding refresh.

        Returns:
            ``(junction_c, retention_s, total_power_w)`` at the fixed
            point.

        Raises:
            SimulationError: If the loop fails to converge (thermal
                runaway: refresh power raises temperature faster than the
                loop can settle).
        """
        refresh = 0.0
        for _ in range(max_iterations):
            total = base_power_w + refresh
            tj = self.junction_c(total)
            retention = retention_time_at(
                tj, self.nominal_retention_s, self.nominal_junction_c
            )
            if retention < 1e-9:
                raise SimulationError(
                    f"thermal runaway: junction at {tj:.0f} C leaves no "
                    f"usable retention time"
                )
            new_refresh = self.refresh_power_w(retention)
            if abs(new_refresh - refresh) < 1e-9:
                return tj, retention, total
            refresh = new_refresh
        raise SimulationError(
            f"thermal loop did not converge from {base_power_w} W "
            f"(thermal runaway: refresh power {refresh:.2f} W and rising)"
        )
