"""Differential verification subsystem.

Three pillars (see :mod:`repro.verify.oracle`,
:mod:`repro.verify.invariants`, :mod:`repro.verify.differential` and
:mod:`repro.verify.fuzz`):

* **live invariants** — ``SimulationConfig(check_invariants=...)``
  streams every controller command through an independent protocol
  oracle and checks simulator-state conservation laws while the
  simulation runs;
* **differential oracles** — the same workload through fast-forward vs
  per-cycle simulation, serial vs parallel sweeps and memoized vs cold
  evaluators, diffed field by field with first-divergence localization;
* **seeded fuzzing** — deterministic generators, registered properties
  and shrinking to minimal repros, driven by
  ``python -m repro.verify fuzz``.
"""

from repro.verify.differential import (
    DifferentialReport,
    FieldDiff,
    FirstDivergence,
    diff_memoized_vs_cold,
    diff_results,
    diff_serial_vs_parallel,
    diff_simulations,
    diff_values,
    first_command_divergence,
    result_fingerprint,
)
from repro.verify.fuzz import (
    PROPERTIES,
    FuzzFailure,
    FuzzReport,
    evaluate_case,
    run_fuzz,
    shrink_case,
)
from repro.verify.invariants import (
    InvariantReport,
    LiveInvariantChecker,
    refresh_deadline_slack,
)
from repro.verify.oracle import CommandOracle, Violation

__all__ = [
    "CommandOracle",
    "DifferentialReport",
    "FieldDiff",
    "FirstDivergence",
    "FuzzFailure",
    "FuzzReport",
    "InvariantReport",
    "LiveInvariantChecker",
    "PROPERTIES",
    "Violation",
    "diff_memoized_vs_cold",
    "diff_results",
    "diff_serial_vs_parallel",
    "diff_simulations",
    "diff_values",
    "evaluate_case",
    "first_command_divergence",
    "refresh_deadline_slack",
    "result_fingerprint",
    "run_fuzz",
    "shrink_case",
]
