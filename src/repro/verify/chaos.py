"""Chaos harness: induced failures with asserted invariants.

``repro verify chaos`` composes the failure modes the resilience layer
claims to survive — killed workers, frozen workers, torn queue files,
deadline-cancelled jobs, client floods past admission capacity, and
circuit-breaker trips — and asserts the invariants that make those
claims true:

* no accepted job is lost: every submitted item produces exactly one
  outcome;
* completed results are bit-identical to an undisturbed serial run
  (fingerprint comparison — crash recovery must not change answers);
* shed requests are answered within bounded latency with a
  ``retry_after_s`` hint, and retrying them eventually succeeds;
* an open circuit breaker recovers through its half-open probe once
  the workload heals.

Scenarios are seeded and self-contained (each builds its own queue
directory or in-process service) and write one JSONL *chaos ledger*
record apiece, so CI can archive exactly what was induced and what
survived.  Profiles: ``smoke`` (kill + flood, fast enough for a CI
gate) and ``full`` (everything).

The worker-facing evaluation functions live at module level because
work-queue tasks are pickled by reference (``module.qualname``) — see
:meth:`~repro.core.executor.WorkQueue.write_task`.
"""

from __future__ import annotations

import json
import os
import signal
import threading
import time
from dataclasses import dataclass, field
from pathlib import Path

from repro.errors import ConfigurationError, SimulationError

#: Scenario registry: name -> callable(seed, tmp_dir) -> ScenarioResult.
_SCENARIOS: dict = {}

PROFILES = {
    "smoke": ("kill_worker", "client_flood"),
    "full": (
        "kill_worker",
        "freeze_worker",
        "torn_files",
        "deadline_cancel",
        "client_flood",
        "breaker_recovery",
    ),
}


@dataclass
class ScenarioResult:
    """One scenario's verdict: what was induced, what held."""

    name: str
    ok: bool
    elapsed_s: float
    details: dict = field(default_factory=dict)
    failures: list = field(default_factory=list)

    def record(self) -> dict:
        return {
            "kind": "scenario",
            "name": self.name,
            "ok": self.ok,
            "elapsed_s": round(self.elapsed_s, 3),
            "details": self.details,
            "failures": self.failures,
        }


@dataclass
class ChaosReport:
    """All scenario results plus the ledger they were written to."""

    profile: str
    seed: int
    results: list = field(default_factory=list)
    ledger_path: str | None = None

    @property
    def ok(self) -> bool:
        return all(result.ok for result in self.results)

    def summary(self) -> str:
        passed = sum(1 for result in self.results if result.ok)
        lines = [
            f"chaos [{self.profile}] seed={self.seed}: "
            f"{passed}/{len(self.results)} scenarios survived"
        ]
        for result in self.results:
            verdict = "ok" if result.ok else "FAILED"
            lines.append(
                f"  {result.name}: {verdict} ({result.elapsed_s:.2f}s)"
            )
            for failure in result.failures:
                lines.append(f"    - {failure}")
        return "\n".join(lines)


def scenario(name: str):
    def decorate(fn):
        _SCENARIOS[name] = fn
        return fn

    return decorate


def scenario_names() -> list:
    return sorted(_SCENARIOS)


class _Check:
    """Collects invariant failures instead of stopping at the first."""

    def __init__(self) -> None:
        self.failures: list = []

    def that(self, condition: bool, message: str) -> None:
        if not condition:
            self.failures.append(message)


# -- worker-side evaluation functions (pickled by reference) -----------------


def chaos_sim_point(seed: int) -> tuple:
    """One seeded simulation fingerprint, slowed enough that a chaos
    scenario can reliably interfere mid-run."""
    from repro.serve.workloads import sim_fingerprint

    time.sleep(0.05)
    return sim_fingerprint(seed=seed, cycles=400)


#: Flipped by breaker_recovery: True = chaos_flaky raises.
_FLAKY = {"fail": True}


def chaos_flaky(x: float = 0.0) -> dict:
    """Service workload that fails while ``_FLAKY['fail']`` is set."""
    if _FLAKY["fail"]:
        raise SimulationError("chaos: induced workload failure")
    return {"x": x, "ok": True}


def chaos_slow(x: float = 0.0, delay_s: float = 0.02) -> dict:
    """Service workload that takes real wall time per point."""
    time.sleep(delay_s)
    return {"x": x, "delay_s": delay_s}


def _baseline(seeds: list) -> list:
    """The undisturbed answer every disturbed run must reproduce."""
    from repro.serve.workloads import sim_fingerprint

    return [sim_fingerprint(seed=seed, cycles=400) for seed in seeds]


def _first_result(queue, n_chunks: int, timeout_s: float) -> bool:
    """Wait until at least one chunk result lands."""
    deadline = time.monotonic() + timeout_s
    while time.monotonic() < deadline:
        if any(
            queue.read_result(index) is not None
            for index in range(n_chunks)
        ):
            return True
        time.sleep(0.02)
    return False


# -- scenarios ---------------------------------------------------------------


@scenario("kill_worker")
def _kill_worker(seed: int, tmp_dir: Path) -> ScenarioResult:
    """SIGKILL a worker mid-map; the respawn + lease-steal path must
    deliver every outcome bit-identically — and the distributed trace
    must still merge without orphan parents, because the stolen chunk
    re-emits its span under the same shipped context."""
    from repro.core.executor import WorkQueueExecutor
    from repro.obs.ledger import RunLedger
    from repro.obs.tracectx import TraceContext
    from repro.obs.tracemerge import load_trace_file, orphan_parents

    check = _Check()
    seeds = [seed + index for index in range(8)]
    expected = _baseline(seeds)
    executor = WorkQueueExecutor(
        tmp_dir / "queue",
        workers=1,
        chunk_size=1,
        lease_timeout_s=1.0,
        poll_s=0.02,
        timeout_s=120.0,
    )
    coordinator_ledger_path = tmp_dir / "coordinator.jsonl"
    ledger = RunLedger(coordinator_ledger_path, trace=TraceContext.root())
    start = time.perf_counter()
    outcomes: list = []
    errors: list = []

    def run_map() -> None:
        try:
            outcomes.extend(
                executor.map(chaos_sim_point, seeds, ledger=ledger)
            )
        except Exception as error:  # noqa: BLE001 - reported as a failure
            errors.append(error)

    thread = threading.Thread(target=run_map)
    thread.start()
    try:
        # Kill the (only) worker once it has proven it is mid-run.
        killed = False
        if _first_result(executor.queue, len(seeds), timeout_s=30.0):
            procs = list(executor._procs)
            if procs and procs[0].poll() is None:
                procs[0].kill()
                killed = True
        thread.join(timeout=120.0)
    finally:
        worker_ledgers = sorted(
            (executor.queue.root / "ledgers").glob("*.jsonl")
        )
        executor.close()
        ledger.close()
    check.that(killed, "never got to kill a worker mid-run")
    check.that(not errors, f"map raised: {errors!r}")
    check.that(not thread.is_alive(), "map did not finish after the kill")
    check.that(
        [o.value for o in outcomes if o.ok] == expected
        and all(o.ok for o in outcomes),
        "outcomes differ from the undisturbed serial baseline",
    )
    # Even with a worker SIGKILL'd mid-chunk, the per-process ledgers
    # must stitch into one tree: every parent_span_id referenced by a
    # surviving span resolves somewhere in the merged record set.
    check.that(
        len(worker_ledgers) >= 1,
        "traced map left no worker ledgers behind",
    )
    event_lists = [
        load_trace_file(path)[1]
        for path in [coordinator_ledger_path, *worker_ledgers]
    ]
    orphans = orphan_parents(event_lists)
    check.that(
        not orphans,
        f"merged trace has orphan parent spans: {sorted(orphans)}",
    )
    trace_ids = {
        event.get("trace_id")
        for events in event_lists
        for event in events
        if event.get("trace_id")
    }
    check.that(
        len(trace_ids) == 1,
        f"expected one trace id across all ledgers, saw {len(trace_ids)}",
    )
    return ScenarioResult(
        name="kill_worker",
        ok=not check.failures,
        elapsed_s=time.perf_counter() - start,
        details={
            "items": len(seeds),
            "requeued": executor.stats["requeued"],
            "respawns": executor.stats["respawns"],
            "worker_ledgers": len(worker_ledgers),
            "orphan_parents": len(orphans),
        },
        failures=check.failures,
    )


@scenario("freeze_worker")
def _freeze_worker(seed: int, tmp_dir: Path) -> ScenarioResult:
    """SIGSTOP one of two workers; its sibling must steal the expired
    lease and the answers must not change."""
    from repro.core.executor import WorkQueueExecutor

    check = _Check()
    seeds = [seed + 100 + index for index in range(8)]
    expected = _baseline(seeds)
    executor = WorkQueueExecutor(
        tmp_dir / "queue",
        workers=2,
        chunk_size=1,
        lease_timeout_s=1.0,
        poll_s=0.02,
        timeout_s=120.0,
    )
    start = time.perf_counter()
    outcomes: list = []
    errors: list = []

    def run_map() -> None:
        try:
            outcomes.extend(executor.map(chaos_sim_point, seeds))
        except Exception as error:  # noqa: BLE001 - reported as a failure
            errors.append(error)

    thread = threading.Thread(target=run_map)
    thread.start()
    frozen_pid = None
    try:
        if _first_result(executor.queue, len(seeds), timeout_s=30.0):
            procs = list(executor._procs)
            if procs and procs[0].poll() is None:
                frozen_pid = procs[0].pid
                os.kill(frozen_pid, signal.SIGSTOP)
        thread.join(timeout=120.0)
    finally:
        if frozen_pid is not None:
            # Thaw before close() so its SIGTERM drain is prompt.
            try:
                os.kill(frozen_pid, signal.SIGCONT)
            except OSError:
                pass
        executor.close()
    check.that(frozen_pid is not None, "never got to freeze a worker")
    check.that(not errors, f"map raised: {errors!r}")
    check.that(not thread.is_alive(), "map did not finish past the freeze")
    check.that(
        [o.value for o in outcomes if o.ok] == expected
        and all(o.ok for o in outcomes),
        "outcomes differ from the undisturbed serial baseline",
    )
    return ScenarioResult(
        name="freeze_worker",
        ok=not check.failures,
        elapsed_s=time.perf_counter() - start,
        details={
            "items": len(seeds),
            "requeued": executor.stats["requeued"],
        },
        failures=check.failures,
    )


@scenario("torn_files")
def _torn_files(seed: int, tmp_dir: Path) -> ScenarioResult:
    """Pre-torn result and segment files must be tolerated: garbage is
    skipped or overwritten, valid store records are honored."""
    from repro.core.executor import (
        MANIFEST,
        RESULTS,
        SEGMENTS,
        WorkQueue,
        atomic_write_json,
        chunk_file_name,
    )
    from repro.core.parallel import PointOutcome
    from repro.core.store import decode_outcome, encode_outcome
    from repro.core.worker import worker_loop

    check = _Check()
    seeds = [seed + 200 + index for index in range(4)]
    expected = _baseline(seeds)
    keys = [f"chaos-k{index}" for index in range(len(seeds))]
    start = time.perf_counter()
    queue = WorkQueue(tmp_dir / "queue")
    queue.reset()
    queue.write_task(chaos_sim_point, catch=())
    for index, seed_value in enumerate(seeds):
        queue.publish_chunk(index, [index], [seed_value], [keys[index]])
    atomic_write_json(
        queue.root / MANIFEST,
        {
            "queue": "chaos-torn",
            "n_chunks": len(seeds),
            "n_items": len(seeds),
            "chunk_size": 1,
            "lease_timeout_s": 5.0,
            "created_t": round(time.time(), 3),
        },
    )
    # Torn result file (half a JSON document, as if a non-atomic
    # writer died): read_result must treat it as absent, and the
    # worker's atomic publish must replace it.
    torn_result = queue.directory(RESULTS) / chunk_file_name(0)
    torn_result.write_text('{"chunk": 0, "outco', encoding="utf-8")
    check.that(
        queue.read_result(0) is None,
        "torn result file was not treated as absent",
    )
    # Dead worker's segment: one valid record (item 0, the correct
    # answer) followed by a torn tail — the snapshot must serve the
    # record and skip the garbage.
    segment = queue.directory(SEGMENTS) / "segment-chaos-dead.jsonl"
    valid = json.dumps(
        {
            "fingerprint": keys[0],
            "result": encode_outcome(
                PointOutcome(ok=True, value=expected[0])
            ),
        }
    )
    segment.write_text(valid + "\n" + '{"fingerprint": "chaos', "utf-8")
    snapshot = queue.load_segment_snapshot()
    check.that(
        list(snapshot) == [keys[0]],
        f"segment snapshot parsed {sorted(snapshot)}, "
        f"wanted only {keys[0]!r}",
    )
    # Drive an in-process worker one chunk at a time until done.
    for _ in seeds:
        worker_loop(
            queue.root, worker_id="chaos-torn-w", once=True, max_idle_s=5.0
        )
    merged: dict = {}
    stored_sources = 0
    for index in range(len(seeds)):
        result = queue.read_result(index)
        check.that(
            result is not None, f"chunk {index} never produced a result"
        )
        if result is None:
            continue
        stored_sources += result["sources"].count("store")
        for item_index, text in zip(result["indices"], result["outcomes"]):
            merged[item_index] = decode_outcome(text)
    values = [
        merged[index].value
        for index in range(len(seeds))
        if index in merged and merged[index].ok
    ]
    check.that(
        values == expected,
        "recovered outcomes differ from the undisturbed baseline",
    )
    check.that(
        stored_sources == 1,
        f"expected exactly the pre-seeded point served from the "
        f"segment store, saw {stored_sources}",
    )
    return ScenarioResult(
        name="torn_files",
        ok=not check.failures,
        elapsed_s=time.perf_counter() - start,
        details={"items": len(seeds), "store_served": stored_sources},
        failures=check.failures,
    )


@scenario("deadline_cancel")
def _deadline_cancel(seed: int, tmp_dir: Path) -> ScenarioResult:
    """A job that cannot meet its deadline must reach ``cancelled``,
    journal its partial progress, free capacity, and leave the result
    cache untouched."""
    from repro.serve.resilience import ResilienceConfig
    from repro.serve.testing import in_process_service
    from repro.serve.workloads import register_workload, unregister_workload

    check = _Check()
    start = time.perf_counter()
    journal_dir = tmp_dir / "journals"
    register_workload("chaos_slow", chaos_slow, replace=True)
    try:
        with in_process_service(
            max_workers=2,
            resilience=ResilienceConfig(),
            journal_dir=journal_dir,
        ) as (service, client):
            doomed = {
                "kind": "sweep",
                "workload": "chaos_slow",
                "axes": {"x": [float(seed + i) for i in range(100)]},
                "deadline_s": 0.3,
            }
            submitted = client.submit(doomed)
            fingerprint = submitted["fingerprint"]
            final = client.wait(submitted["job_id"], timeout_s=30.0)
            check.that(
                final["status"] == "cancelled",
                f"expected terminal 'cancelled', got {final['status']!r}",
            )
            error = final.get("error") or {}
            check.that(
                error.get("code") == "cancelled"
                and "deadline" in error.get("message", ""),
                f"cancelled envelope missing deadline reason: {error!r}",
            )
            check.that(
                service.cache.get(fingerprint) is None,
                "cancelled (partial) result leaked into the cache",
            )
            journal = journal_dir / f"{fingerprint}.jsonl"
            check.that(
                journal.exists() and journal.stat().st_size > 0,
                "no resumable journal left behind for the partial",
            )
            ready = client.readyz()
            check.that(
                ready["ready"] and ready["admission"]["depth"] == 0,
                f"capacity not freed after cancel: {ready['admission']!r}",
            )
            # Freed capacity is usable: a quick job completes.
            quick = client.run(
                {
                    "kind": "sweep",
                    "workload": "chaos_slow",
                    "axes": {"x": [float(seed)], "delay_s": [0.0]},
                },
                timeout_s=30.0,
            )
            check.that(
                quick["result"]["n_ok"] == 1,
                "follow-up job did not complete after the cancel",
            )
            stats = client.stats()
            check.that(
                stats["cancelled"] == 1,
                f"cancelled counter {stats['cancelled']} != 1",
            )
    finally:
        unregister_workload("chaos_slow")
    return ScenarioResult(
        name="deadline_cancel",
        ok=not check.failures,
        elapsed_s=time.perf_counter() - start,
        details={},
        failures=check.failures,
    )


@scenario("client_flood")
def _client_flood(seed: int, tmp_dir: Path) -> ScenarioResult:
    """Flood submissions at >2x admission capacity: accepted jobs all
    complete, shed ones get fast 429s with retry hints, and retrying
    the shed jobs eventually lands every one."""
    from repro.serve.client import ServeClientError
    from repro.serve.resilience import ResilienceConfig
    from repro.serve.testing import in_process_service
    from repro.serve.workloads import register_workload, unregister_workload

    check = _Check()
    start = time.perf_counter()
    max_depth = 2
    flood = 3 * max_depth
    register_workload("chaos_slow", chaos_slow, replace=True)
    try:
        with in_process_service(
            max_workers=max_depth,
            resilience=ResilienceConfig(
                max_depth=max_depth, shed_retry_after_s=0.05
            ),
        ) as (service, client):
            accepted: list = []
            shed: list = []
            shed_latencies: list = []
            jobs = [
                {
                    "kind": "sweep",
                    "workload": "chaos_slow",
                    # Distinct axes -> distinct fingerprints: no
                    # cache hits or coalescing soften the flood.
                    "axes": {
                        "x": [float(seed), float(index)],
                        "delay_s": [0.15],
                    },
                }
                for index in range(flood)
            ]
            for job in jobs:
                asked = time.perf_counter()
                try:
                    accepted.append((job, client.submit(job)))
                except ServeClientError as error:
                    shed_latencies.append(time.perf_counter() - asked)
                    check.that(
                        error.status == 429,
                        f"shed with {error.status}, wanted 429",
                    )
                    retry_after = (
                        (error.payload or {}).get("error") or {}
                    ).get("retry_after_s")
                    check.that(
                        isinstance(retry_after, (int, float))
                        and retry_after > 0,
                        f"429 without usable retry_after_s: "
                        f"{error.payload!r}",
                    )
                    shed.append(job)
            check.that(
                len(shed) >= flood - max_depth - 1,
                f"flood of {flood} only shed {len(shed)} "
                f"(capacity {max_depth})",
            )
            check.that(
                accepted and len(accepted) >= max_depth,
                f"flood admitted only {len(accepted)} jobs",
            )
            check.that(
                all(latency < 0.5 for latency in shed_latencies),
                f"shed responses not bounded: {shed_latencies!r}",
            )
            for job, response in accepted:
                final = client.wait(response["job_id"], timeout_s=60.0)
                check.that(
                    final["status"] == "done",
                    f"accepted job {response['job_id']} ended "
                    f"{final['status']!r}",
                )
            # client.run retries 429s honoring retry_after_s: every
            # shed job must eventually complete.
            for job in shed:
                result = client.run(job, timeout_s=60.0)
                check.that(
                    result["result"]["n_ok"] == 2,
                    "retried shed job returned a wrong result",
                )
            stats = client.stats()
            check.that(
                stats["shed"] >= len(shed),
                f"shed counter {stats['shed']} < {len(shed)}",
            )
            check.that(
                stats["submitted"]
                == stats["executions"]
                + stats["cache_hits"]
                + stats["coalesced"],
                f"bookkeeping invariant broken under flood: {stats!r}",
            )
    finally:
        unregister_workload("chaos_slow")
    return ScenarioResult(
        name="client_flood",
        ok=not check.failures,
        elapsed_s=time.perf_counter() - start,
        details={
            "flood": flood,
            "capacity": max_depth,
            "shed": len(shed_latencies),
            "shed_latency_max_s": round(max(shed_latencies), 4)
            if shed_latencies
            else None,
        },
        failures=check.failures,
    )


@scenario("breaker_recovery")
def _breaker_recovery(seed: int, tmp_dir: Path) -> ScenarioResult:
    """Consecutive failures open the workload's breaker (503); after
    the cooldown a half-open probe against the healed workload closes
    it again."""
    from repro.serve.client import ServeClientError
    from repro.serve.resilience import ResilienceConfig
    from repro.serve.testing import in_process_service
    from repro.serve.workloads import register_workload, unregister_workload

    check = _Check()
    start = time.perf_counter()
    cooldown_s = 0.3
    register_workload("chaos_flaky", chaos_flaky, replace=True)
    _FLAKY["fail"] = True
    try:
        with in_process_service(
            max_workers=2,
            resilience=ResilienceConfig(
                breaker_threshold=2, breaker_cooldown_s=cooldown_s
            ),
        ) as (service, client):
            def job_for(value: float) -> dict:
                return {
                    "kind": "sweep",
                    "workload": "chaos_flaky",
                    "axes": {"x": [value]},
                }

            for index in range(2):
                response = client.submit(job_for(float(seed + index)))
                final = client.wait(response["job_id"], timeout_s=30.0)
                check.that(
                    final["status"] == "failed",
                    f"induced failure ended {final['status']!r}",
                )
            check.that(
                service.breakers.state_of("chaos_flaky") == "open",
                "breaker did not open after threshold failures",
            )
            try:
                client.submit(job_for(float(seed + 50)))
                check.that(False, "open breaker accepted a submission")
            except ServeClientError as error:
                check.that(
                    error.status == 503
                    and (error.payload or {})["error"]["code"]
                    == "circuit_open",
                    f"open breaker rejected with {error.status}: "
                    f"{error.payload!r}",
                )
            _FLAKY["fail"] = False
            time.sleep(cooldown_s * 1.5)
            probe = client.submit(job_for(float(seed + 99)))
            final = client.wait(probe["job_id"], timeout_s=30.0)
            check.that(
                final["status"] == "done",
                f"half-open probe ended {final['status']!r}",
            )
            check.that(
                service.breakers.state_of("chaos_flaky") == "closed",
                "breaker did not close after a successful probe",
            )
            again = client.run(job_for(float(seed + 7)), timeout_s=30.0)
            check.that(
                again["result"]["n_ok"] == 1,
                "post-recovery job did not run",
            )
    finally:
        _FLAKY["fail"] = True
        unregister_workload("chaos_flaky")
    return ScenarioResult(
        name="breaker_recovery",
        ok=not check.failures,
        elapsed_s=time.perf_counter() - start,
        details={"cooldown_s": cooldown_s},
        failures=check.failures,
    )


# -- driver ------------------------------------------------------------------


def run_chaos(
    profile: str = "smoke",
    seed: int = 0,
    scenarios: list | None = None,
    out=None,
    tmp_dir=None,
) -> ChaosReport:
    """Run a chaos profile (or explicit scenario list); returns the
    report, writing the JSONL chaos ledger to ``out`` when given."""
    import tempfile

    if scenarios:
        names = list(scenarios)
    else:
        try:
            names = list(PROFILES[profile])
        except KeyError:
            raise ConfigurationError(
                f"unknown chaos profile {profile!r}; "
                f"choose from {sorted(PROFILES)}"
            ) from None
    unknown = [name for name in names if name not in _SCENARIOS]
    if unknown:
        raise ConfigurationError(
            f"unknown chaos scenario(s) {unknown}; "
            f"available: {scenario_names()}"
        )
    report = ChaosReport(profile=profile, seed=seed)
    records = [
        {
            "kind": "chaos",
            "profile": profile,
            "seed": seed,
            "scenarios": names,
            "t": round(time.time(), 3),
        }
    ]
    with tempfile.TemporaryDirectory(prefix="repro-chaos-") as scratch:
        base = Path(tmp_dir) if tmp_dir is not None else Path(scratch)
        for name in names:
            scenario_dir = base / name
            scenario_dir.mkdir(parents=True, exist_ok=True)
            try:
                result = _SCENARIOS[name](seed, scenario_dir)
            except Exception as error:  # noqa: BLE001 - a crash is a verdict
                result = ScenarioResult(
                    name=name,
                    ok=False,
                    elapsed_s=0.0,
                    failures=[
                        f"scenario crashed: {type(error).__name__}: {error}"
                    ],
                )
            report.results.append(result)
            records.append(result.record())
    records.append(
        {
            "kind": "summary",
            "ok": report.ok,
            "passed": sum(1 for r in report.results if r.ok),
            "failed": sum(1 for r in report.results if not r.ok),
        }
    )
    if out is not None:
        out_path = Path(out)
        if out_path.parent != Path("."):
            out_path.parent.mkdir(parents=True, exist_ok=True)
        with open(out_path, "w", encoding="utf-8") as handle:
            for record in records:
                handle.write(json.dumps(record, sort_keys=True) + "\n")
        report.ledger_path = str(out_path)
    return report
