"""Seeded fuzz harness: generate, check, shrink — no external deps.

Random (but fully deterministic) generators build whole simulator
configurations, timing parameter sets, traffic mixes, macro/requirement
pairs and metric matrices; each generated case is run through one of the
registered *properties* — predicates that must hold on every valid
input:

* ``sim_differential`` — fast-forward simulation is bit-identical to
  the per-cycle reference on the same workload;
* ``sim_invariants`` — a live-checked run reports zero protocol/state
  violations and its recorded command trace replays cleanly through
  :class:`~repro.dram.tracecheck.TraceChecker`;
* ``pareto_engines`` — the python and numpy Pareto engines agree,
  ties, duplicates and NaNs included;
* ``evaluator_memo`` — memoized evaluator results equal cold ones;
* ``mapping_roundtrip`` — address decode/encode is a bijection;
* ``pacing_plan`` — ``tick_many``/``cycles_until_wants`` are
  bit-identical to iterated ``tick`` calls;
* ``serve_protocol`` — the exploration service accepts every valid job
  payload (executes it, caches it byte-identically, re-serves it
  without re-evaluating) and rejects every invalid one with a 4xx
  envelope, never a crash (the ``fuzz_serve`` target).

Every case derives from ``random.Random(f"{seed}:{index}")``, so a
failure is pinned by ``(property, seed, index)`` alone; the harness
additionally *shrinks* failing cases — greedily trying smaller
parameter values and shorter client lists while the failure persists —
and prints a one-line repro command for the minimal case.

Run via ``python -m repro.verify fuzz --seed 0 --budget 200``.
"""

from __future__ import annotations

import copy
import json
import random
from dataclasses import dataclass, field

from repro.errors import CapacityError, ConfigurationError

#: Exception types that mean "this candidate is not a valid input" (as
#: opposed to "the property failed").  Raised mid-shrink they disqualify
#: the candidate; raised on a generated case they expose a generator bug.
_INVALID = (ConfigurationError, CapacityError)


# -- generators --------------------------------------------------------------


def gen_timing(rng: random.Random) -> dict:
    """Random valid :class:`TimingParameters` kwargs."""
    t_ras = rng.randint(2, 8)
    return {
        "clock_period_ns": rng.choice([5.0, 7.0, 10.0]),
        "t_rcd": rng.randint(1, 4),
        "t_cas": rng.randint(1, 3),
        "t_rp": rng.randint(1, 4),
        "t_ras": t_ras,
        "t_rc": t_ras + rng.randint(1, 4),
        "t_rrd": rng.randint(1, 3),
        "t_wr": rng.randint(1, 3),
        "t_rfc": rng.randint(2, 12),
        "burst_length": rng.choice([1, 2, 4, 8]),
        "t_turnaround": rng.randint(0, 2),
    }


def gen_organization(rng: random.Random) -> dict:
    """Random valid :class:`Organization` kwargs (kept small so short
    simulations still exercise row misses and bank conflicts)."""
    page_bits = rng.choice([512, 1024, 2048])
    return {
        "n_banks": rng.choice([1, 2, 4, 8]),
        "n_rows": rng.randint(4, 48),  # arbitrary row counts are legal
        "page_bits": page_bits,
        "word_bits": rng.choice(
            [w for w in (8, 16, 32, 64) if w <= page_bits]
        ),
    }


def gen_clients(rng: random.Random, total_words: int) -> list:
    """1-3 random traffic clients over a ``total_words`` address space."""
    clients = []
    for index in range(rng.randint(1, 3)):
        length = rng.randint(1, max(1, total_words))
        base = rng.randrange(max(1, total_words))
        kind = rng.choice(["sequential", "strided", "random", "block"])
        if kind == "sequential":
            pattern = {"kind": kind, "base": base, "length": length}
        elif kind == "strided":
            pattern = {
                "kind": kind,
                "base": base,
                "length": length,
                "stride": rng.choice([1, 2, 3, 7, 16]),
            }
        elif kind == "random":
            pattern = {
                "kind": kind,
                "base": base,
                "length": length,
                "seed": rng.randint(0, 1_000),
            }
        else:
            width = rng.randint(4, 64)
            height = rng.randint(2, 32)
            pattern = {
                "kind": kind,
                "base": base,
                "width": width,
                "height": height,
                "block_w": rng.randint(1, width),
                "block_h": rng.randint(1, height),
            }
        clients.append(
            {
                "name": f"c{index}",
                "pattern": pattern,
                "rate": round(rng.uniform(0.02, 0.95), 3),
                "read_fraction": rng.choice([1.0, 0.0, 0.25, 0.5, 0.75]),
                "seed": rng.randint(0, 1_000),
            }
        )
    return clients


def gen_sim_case(rng: random.Random) -> dict:
    """One full simulator configuration as a JSON-able parameter dict."""
    timing = gen_timing(rng)
    organization = gen_organization(rng)
    total_words = (
        organization["n_banks"]
        * organization["n_rows"]
        * organization["page_bits"]
        // organization["word_bits"]
    )
    # Aim the refresh interval at a cycle count short simulations reach:
    # interval_cycles = retention_s * clock_hz / n_rows.
    interval_cycles = rng.randint(80, 400)
    retention_s = (
        interval_cycles
        * organization["n_rows"]
        * timing["clock_period_ns"]
        * 1e-9
    )
    return {
        "timing": timing,
        "organization": organization,
        "scheme": rng.choice(["row:bank:col", "bank:row:col"]),
        "controller": {
            "window_size": rng.randint(1, 12),
            "fifo_capacity": rng.randint(1, 8),
            "refresh_enabled": rng.random() < 0.85,
            "refresh_retention_s": retention_s,
        },
        "sim": {
            "cycles": rng.randint(150, 600),
            "warmup_cycles": rng.choice([0, 0, rng.randint(10, 80)]),
        },
        "clients": gen_clients(rng, total_words),
    }


def gen_macro_case(rng: random.Random) -> dict:
    """A valid eDRAM macro plus an application-requirements set.

    Sizes are multiples of the 256 Kbit building block; since
    ``banks * page_bits`` is a power of two no larger than 2^17 and the
    block is 2^18 bits, any block multiple divides evenly into banks of
    pages — every generated macro satisfies the Siemens concept rules.
    """
    block = 256 * 1024
    size_bits = rng.randint(1, 64) * block
    page_bits = rng.choice([1024, 2048, 4096, 8192])
    return {
        "macro": {
            "size_bits": size_bits,
            "width": rng.choice([16, 32, 64, 128, 256, 512]),
            "banks": rng.choice([1, 2, 4, 8, 16]),
            "page_bits": page_bits,
            "redundancy_spares": rng.choice([0, 2, 4, 8]),
        },
        "requirements": {
            "name": "fuzz",
            "capacity_bits": max(1, int(size_bits * rng.uniform(0.1, 1.0))),
            "sustained_bandwidth_bits_per_s": round(
                rng.uniform(0.05, 8.0) * 1e9, 1
            ),
            "max_latency_ns": rng.choice([None, 50.0, 200.0]),
            "power_budget_w": rng.choice([None, 0.5, 2.0]),
            "read_fraction": round(rng.random(), 3),
            "locality": round(rng.random(), 3),
        },
    }


def gen_pareto_case(rng: random.Random) -> dict:
    """A metric matrix rich in ties, duplicates and the odd NaN."""
    n = rng.randint(2, 30)
    dim = rng.randint(1, 4)
    palette = [0.0, 1.0, 2.0, 3.0]
    vectors = []
    for _ in range(n):
        vectors.append(
            [
                float("nan") if rng.random() < 0.07 else rng.choice(palette)
                for _ in range(dim)
            ]
        )
    return {"vectors": vectors}


def gen_mapping_case(rng: random.Random) -> dict:
    """An organization, a mapping scheme and probe addresses."""
    organization = gen_organization(rng)
    total_words = (
        organization["n_banks"]
        * organization["n_rows"]
        * organization["page_bits"]
        // organization["word_bits"]
    )
    return {
        "organization": organization,
        "scheme": rng.choice(["row:bank:col", "bank:row:col"]),
        "addresses": [rng.randrange(total_words) for _ in range(32)],
    }


def gen_pacing_case(rng: random.Random) -> dict:
    """A token-bucket rate and tick counts to cross-check pacing paths."""
    return {
        "rate": round(rng.uniform(0.01, 1.0), 4),
        "ticks": rng.randint(1, 400),
        "limit": rng.randint(1, 400),
    }


#: Workload name the serve fuzzer registers for its generated jobs.
_SERVE_FUZZ_WORKLOAD = "fuzz_point"


def _serve_fuzz_point(a: int = 1, b: int = 2, mode: str = "ok") -> dict:
    """Cheap deterministic workload behind the ``serve_protocol`` fuzz.

    Pure arithmetic keeps thousands of fuzz evaluations fast, and the
    ``mode`` axis gives the generator a handle on the quarantine path
    (``mode="boom"`` raises like an unconstructible design point).
    """
    if mode == "boom":
        raise ConfigurationError("fuzz point asked to fail")
    return {
        "value": a * 31 + b,
        "objectives": [float(a + b), float(a - b)],
    }


def gen_serve_case(rng: random.Random) -> dict:
    """A job payload for the service, labeled valid or invalid.

    Valid payloads are built only from known-good constructions (the
    label is the oracle, so it must be *correct by construction*, not
    re-derived by the code under test); invalid ones take a valid
    payload and apply one mutation that is invalid by the protocol's
    documented rules.
    """
    payload: dict = {
        "kind": "sweep",
        "workload": _SERVE_FUZZ_WORKLOAD,
        "axes": {},
        "backend": rng.choice(["auto", "scalar"]),
    }
    axes = payload["axes"]
    for axis in ("a", "b"):
        if axis == "a" or rng.random() < 0.7:
            axes[axis] = [
                rng.randint(-50, 50)
                for _ in range(rng.randint(1, 3))
            ]
    if rng.random() < 0.3:
        # Exercise the quarantine path: failing points + skip_errors.
        axes["mode"] = ["ok", "boom"]
        payload["skip_errors"] = True
    elif rng.random() < 0.5:
        payload["skip_errors"] = rng.random() < 0.5

    if rng.random() < 0.55:
        return {"payload": payload, "valid": True}

    mutation = rng.choice(
        [
            "drop_kind",
            "bad_kind",
            "unknown_workload",
            "unknown_axis",
            "empty_axes",
            "axis_not_list",
            "empty_axis_values",
            "non_scalar_value",
            "bad_backend",
            "unknown_field",
            "bad_skip_errors",
            "too_large",
            "not_an_object",
            "explore_no_requirements",
            "explore_bad_capacity",
        ]
    )
    if mutation == "drop_kind":
        del payload["kind"]
    elif mutation == "bad_kind":
        payload["kind"] = rng.choice(["sweeep", "", "job", 7])
    elif mutation == "unknown_workload":
        payload["workload"] = "no_such_workload"
    elif mutation == "unknown_axis":
        axes["no_such_parameter"] = [1]
    elif mutation == "empty_axes":
        payload["axes"] = {}
    elif mutation == "axis_not_list":
        axes["a"] = 5
    elif mutation == "empty_axis_values":
        axes["a"] = []
    elif mutation == "non_scalar_value":
        axes["a"] = [[1, 2]]
    elif mutation == "bad_backend":
        payload["backend"] = "warp"
    elif mutation == "unknown_field":
        payload["axess"] = {"a": [1]}
    elif mutation == "bad_skip_errors":
        payload["skip_errors"] = "yes"
    elif mutation == "too_large":
        payload["axes"] = {
            "a": list(range(80)),
            "b": list(range(80)),
        }
    elif mutation == "not_an_object":
        payload = rng.choice([[], "job", 7, None])
    elif mutation == "explore_no_requirements":
        payload = {"kind": "explore"}
    elif mutation == "explore_bad_capacity":
        payload = {
            "kind": "explore",
            "requirements": {
                "name": "f",
                "capacity_mbit": -rng.randint(1, 9),
                "bandwidth_gbit_s": 1.0,
            },
        }
    return {"payload": payload, "valid": False}


# -- builders ----------------------------------------------------------------


def _build_pattern(params: dict):
    from repro.traffic.patterns import (
        BlockPattern,
        RandomPattern,
        SequentialPattern,
        StridedPattern,
    )

    kind = params["kind"]
    if kind == "sequential":
        return SequentialPattern(base=params["base"], length=params["length"])
    if kind == "strided":
        return StridedPattern(
            base=params["base"],
            length=params["length"],
            stride=params["stride"],
        )
    if kind == "random":
        return RandomPattern(
            base=params["base"], length=params["length"], seed=params["seed"]
        )
    if kind == "block":
        return BlockPattern(
            base=params["base"],
            width=params["width"],
            height=params["height"],
            block_w=params["block_w"],
            block_h=params["block_h"],
        )
    raise ConfigurationError(f"unknown pattern kind {kind!r}")


def build_client(params: dict):
    from repro.traffic.client import MemoryClient

    return MemoryClient(
        name=params["name"],
        pattern=_build_pattern(params["pattern"]),
        rate=params["rate"],
        read_fraction=params["read_fraction"],
        seed=params["seed"],
    )


def build_simulator(
    params: dict,
    *,
    fast_forward: bool,
    record_commands: bool = False,
    check_invariants: str = "off",
    backend: str = "cycle",
    obs=None,
):
    """Instantiate a fresh simulator from a ``gen_sim_case`` dict."""
    from repro.controller.controller import (
        ControllerConfig,
        MemoryController,
    )
    from repro.dram.device import DRAMDevice
    from repro.dram.organizations import AddressMapping, MappingScheme
    from repro.dram.organizations import Organization
    from repro.dram.timing import TimingParameters
    from repro.sim.simulator import MemorySystemSimulator, SimulationConfig

    timing = TimingParameters(**params["timing"])
    organization = Organization(**params["organization"])
    device = DRAMDevice(
        organization=organization, timing=timing, name="fuzz"
    )
    mapping = AddressMapping(
        organization=organization, scheme=MappingScheme(params["scheme"])
    )
    controller = MemoryController(
        device=device,
        mapping=mapping,
        config=ControllerConfig(
            record_commands=record_commands, **params["controller"]
        ),
    )
    clients = [build_client(client) for client in params["clients"]]
    return MemorySystemSimulator(
        controller=controller,
        clients=clients,
        config=SimulationConfig(
            fast_forward=fast_forward,
            check_invariants=check_invariants,
            backend=backend,
            **params["sim"],
        ),
        obs=obs,
    )


def build_macro(params: dict):
    from repro.dram.edram import EDRAMMacro

    return EDRAMMacro(**params["macro"])


def build_requirements(params: dict):
    from repro.core.requirements import ApplicationRequirements

    return ApplicationRequirements(**params["requirements"])


# -- properties --------------------------------------------------------------


def check_sim_differential(params: dict) -> list:
    from repro.verify.differential import diff_simulations

    report = diff_simulations(
        lambda fast_forward, record_commands: build_simulator(
            params,
            fast_forward=fast_forward,
            record_commands=record_commands,
        )
    )
    return [] if report.identical else [report.describe()]


def check_sim_invariants(params: dict) -> list:
    from repro.dram.tracecheck import TraceChecker

    simulator = build_simulator(
        params,
        fast_forward=True,
        record_commands=True,
        check_invariants="collect",
    )
    simulator.run()
    messages = []
    report = simulator.invariant_report
    if not report.clean:
        messages.append(f"live invariants: {report.summary()}")
        messages.extend(str(v) for v in report.violations[:5])
    trace_report = TraceChecker(
        organization=simulator.device.organization,
        timing=simulator.device.timing,
    ).check(simulator.controller.command_log)
    if not trace_report.clean:
        messages.append(f"trace replay: {trace_report.summary()}")
        messages.extend(
            f"#{v.index} {v.command}: {v.reason}"
            for v in trace_report.violations[:5]
        )
    return messages


def check_pareto_engines(params: dict) -> list:
    from repro.core.pareto import pareto_frontier

    vectors = [tuple(float(x) for x in row) for row in params["vectors"]]
    items = list(range(len(vectors)))

    def objectives(index: int):
        return vectors[index]

    python = pareto_frontier(items, objectives, engine="python")
    numpy_ = pareto_frontier(items, objectives, engine="numpy")
    auto = pareto_frontier(items, objectives, engine="auto")
    messages = []
    if python != numpy_:
        messages.append(
            f"python {python} != numpy {numpy_} on {vectors}"
        )
    if python != auto:
        messages.append(f"python {python} != auto {auto} on {vectors}")
    return messages


def check_evaluator_memo(params: dict) -> list:
    from repro.verify.differential import diff_memoized_vs_cold

    report = diff_memoized_vs_cold(
        build_macro(params), build_requirements(params)
    )
    return [] if report.identical else [report.describe()]


def check_mapping_roundtrip(params: dict) -> list:
    from repro.dram.organizations import (
        AddressMapping,
        MappingScheme,
        Organization,
    )

    organization = Organization(**params["organization"])
    mapping = AddressMapping(
        organization=organization, scheme=MappingScheme(params["scheme"])
    )
    messages = []
    for address in params["addresses"]:
        decoded = mapping.decode(address)
        if not (
            0 <= decoded.bank < organization.n_banks
            and 0 <= decoded.row < organization.n_rows
            and 0 <= decoded.column < organization.columns_per_page
        ):
            messages.append(f"decode({address}) out of range: {decoded}")
            continue
        back = mapping.encode(decoded)
        if back != address:
            messages.append(
                f"encode(decode({address})) = {back} != {address}"
            )
    return messages


def check_pacing_plan(params: dict) -> list:
    from repro.traffic.client import CREDIT_CAP, MemoryClient
    from repro.traffic.patterns import SequentialPattern

    def make():
        return MemoryClient(
            name="p",
            pattern=SequentialPattern(base=0, length=16),
            rate=params["rate"],
        )

    ticks, limit = params["ticks"], params["limit"]
    messages = []
    # tick_many must be bit-identical to iterated tick.
    stepped, jumped = make(), make()
    for _ in range(ticks):
        stepped.tick()
    jumped.tick_many(ticks)
    if stepped.credit != jumped.credit:
        messages.append(
            f"tick x{ticks} -> {stepped.credit!r} but "
            f"tick_many({ticks}) -> {jumped.credit!r}"
        )
    # cycles_until_wants must match brute force and must not mutate.
    probe, brute = make(), make()
    before = probe.credit
    predicted = probe.cycles_until_wants(limit)
    if probe.credit != before:
        messages.append("cycles_until_wants mutated the credit")
    actual = 0
    while actual < limit and not brute.wants_to_issue(actual):
        brute.tick()
        actual += 1
    if predicted != actual:
        messages.append(
            f"cycles_until_wants({limit}) = {predicted}, brute force "
            f"says {actual} at rate {params['rate']}"
        )
    # The memoized trajectory (built by the lookahead) must replay the
    # same floats when tick_many later consumes it.
    memoized, reference = make(), make()
    memoized.cycles_until_wants(limit)  # primes the pacing plan
    span = min(ticks, limit)
    memoized.tick_many(span)
    for _ in range(span):
        reference.tick()
    if memoized.credit != reference.credit:
        messages.append(
            f"memoized tick_many({span}) -> {memoized.credit!r} != "
            f"stepped {reference.credit!r}"
        )
    # Closed-loop issue accounting: credit bounded, long-run rate held.
    driven = make()
    issued = 0
    for cycle in range(ticks):
        if driven.wants_to_issue(cycle):
            driven.next_request()
            issued += 1
        else:
            driven.tick()
        if not -1e-9 <= driven.credit <= CREDIT_CAP + 1e-9:
            messages.append(
                f"credit {driven.credit!r} out of [0, {CREDIT_CAP}] "
                f"after cycle {cycle}"
            )
            break
    if abs(issued - params["rate"] * ticks) > CREDIT_CAP + 1.0:
        messages.append(
            f"issued {issued} over {ticks} cycles at rate "
            f"{params['rate']} (expected ~{params['rate'] * ticks:.1f})"
        )
    return messages


def check_serve_protocol(params: dict) -> list:
    """The ``fuzz_serve`` target: valid jobs run + cache byte-identically,
    invalid jobs get a 4xx envelope, and nothing ever crashes the
    service."""
    from repro.serve.handlers import ExplorationService, route
    from repro.serve.protocol import SCHEMA_VERSION
    from repro.serve.workloads import register_workload, unregister_workload

    payload, valid = params["payload"], params["valid"]
    messages: list = []

    def note_envelope(status: int, body) -> None:
        if not isinstance(body, dict):
            messages.append(f"non-object response body: {body!r}")
        elif body.get("schema_version") != SCHEMA_VERSION:
            messages.append(
                f"response missing schema_version {SCHEMA_VERSION}: {body}"
            )

    register_workload(_SERVE_FUZZ_WORKLOAD, _serve_fuzz_point, replace=True)
    service = ExplorationService(max_workers=2)
    try:
        status, body = route(service, "POST", "/v1/jobs", payload)
        note_envelope(status, body)
        if not valid:
            if not 400 <= status < 500:
                messages.append(
                    f"invalid payload got HTTP {status} (want 4xx): "
                    f"{body} for {payload!r}"
                )
            elif body.get("ok") is not False:
                messages.append(f"4xx response not marked ok=false: {body}")
            else:
                error = body.get("error") or {}
                if not error.get("code") or not error.get("message"):
                    messages.append(
                        f"4xx envelope missing code/message: {body}"
                    )
            return messages

        if status != 200:
            messages.append(
                f"valid payload rejected with HTTP {status}: {body} "
                f"for {payload!r}"
            )
            return messages
        job_id = body["job_id"]
        if not service.wait(job_id, timeout_s=60.0):
            messages.append(f"job {job_id} did not finish in 60s")
            return messages
        final, final_body = route(service, "GET", f"/v1/jobs/{job_id}")
        note_envelope(final, final_body)
        if final_body.get("status") != "done":
            messages.append(
                f"valid job ended {final_body.get('status')!r}: "
                f"{final_body.get('error')}"
            )
            return messages
        cold_text = service.result_text(job_id)
        evaluations = service.stats["evaluations"]
        executions = service.stats["executions"]

        # Identical re-submission: a warm hit, byte-identical, free.
        rerun, rerun_body = route(service, "POST", "/v1/jobs", payload)
        note_envelope(rerun, rerun_body)
        if rerun != 200 or rerun_body.get("cached") is not True:
            messages.append(
                f"identical resubmission not served from cache: "
                f"HTTP {rerun} {rerun_body}"
            )
            return messages
        warm_text = service.result_text(rerun_body["job_id"])
        if warm_text.encode() != cold_text.encode():
            messages.append("warm result bytes differ from cold result")
        if service.stats["evaluations"] != evaluations:
            messages.append(
                f"warm hit re-evaluated: {service.stats['evaluations']} "
                f"!= {evaluations}"
            )
        if service.stats["executions"] != executions:
            messages.append("warm hit counted as an execution")
        return messages
    finally:
        service.close()
        unregister_workload(_SERVE_FUZZ_WORKLOAD)


@dataclass(frozen=True)
class FuzzProperty:
    """One fuzzable property: a generator plus a predicate.

    Attributes:
        name: CLI-addressable identifier.
        generate: ``generate(rng) -> params`` (JSON-able).
        check: ``check(params) -> [failure message, ...]`` (empty = pass).
    """

    name: str
    generate: object
    check: object


#: Registered properties, in round-robin execution order (cheap and
#: expensive interleaved so small budgets still touch everything).
PROPERTIES = (
    FuzzProperty("sim_differential", gen_sim_case, check_sim_differential),
    FuzzProperty("pareto_engines", gen_pareto_case, check_pareto_engines),
    FuzzProperty("sim_invariants", gen_sim_case, check_sim_invariants),
    FuzzProperty(
        "mapping_roundtrip", gen_mapping_case, check_mapping_roundtrip
    ),
    FuzzProperty("evaluator_memo", gen_macro_case, check_evaluator_memo),
    FuzzProperty("pacing_plan", gen_pacing_case, check_pacing_plan),
    FuzzProperty("serve_protocol", gen_serve_case, check_serve_protocol),
)

PROPERTY_BY_NAME = {prop.name: prop for prop in PROPERTIES}


# -- running and shrinking ---------------------------------------------------


def evaluate_case(name: str, params) -> list:
    """Run one property on explicit params; returns failure messages.

    Raises the invalid-input exceptions (:data:`_INVALID`) through, so a
    shrink candidate that is not constructible can be told apart from a
    genuine property failure; any other exception *is* a failure.
    """
    prop = PROPERTY_BY_NAME[name]
    try:
        return list(prop.check(params))
    except _INVALID:
        raise
    except Exception as error:  # a crash is a finding, not an abort
        return [f"unhandled {type(error).__name__}: {error!r}"]


def _scalar_reductions(value):
    if isinstance(value, bool):
        return
    if isinstance(value, int):
        for candidate in (1, value // 2, value - 1):
            if 0 <= candidate < value:
                yield candidate
    elif isinstance(value, float):
        for candidate in (1.0, 0.5, round(value, 2), round(value, 1)):
            if candidate != value:
                yield candidate


def _walk(value, prefix=()):
    if isinstance(value, dict):
        for key in value:
            yield from _walk(value[key], prefix + (key,))
    elif isinstance(value, list):
        yield prefix, value
        for index, item in enumerate(value):
            yield from _walk(item, prefix + (index,))
    else:
        yield prefix, value


def _replaced(params, path, value):
    clone = copy.deepcopy(params)
    node = clone
    for key in path[:-1]:
        node = node[key]
    node[path[-1]] = value
    return clone


def _removed(params, path, index):
    clone = copy.deepcopy(params)
    node = clone
    for key in path:
        node = node[key]
    del node[index]
    return clone


def _shrink_candidates(params):
    """Yield simplified copies of ``params``: shorter lists first (the
    biggest structural wins), then smaller scalar values."""
    for path, value in _walk(params):
        if isinstance(value, list) and len(value) > 1:
            for index in range(len(value)):
                yield _removed(params, path, index)
    for path, value in _walk(params):
        if not isinstance(value, list):
            for reduced in _scalar_reductions(value):
                yield _replaced(params, path, reduced)


def shrink_case(name: str, params, max_attempts: int = 250):
    """Greedy shrink: keep any simplification that still fails.

    Candidates raising an invalid-input exception are skipped; already
    visited parameter sets are never retried, so the loop terminates
    even when float replacements are not strictly decreasing.
    """
    current = params
    seen = {json.dumps(params, sort_keys=True)}
    attempts = 0
    improved = True
    while improved and attempts < max_attempts:
        improved = False
        for candidate in _shrink_candidates(current):
            key = json.dumps(candidate, sort_keys=True)
            if key in seen:
                continue
            seen.add(key)
            attempts += 1
            if attempts > max_attempts:
                break
            try:
                failures = evaluate_case(name, candidate)
            except _INVALID:
                continue
            if failures:
                current = candidate
                improved = True
                break
    return current


@dataclass(frozen=True)
class FuzzFailure:
    """One failing fuzz case, with its minimal shrunk form.

    Attributes:
        check: Property name.
        seed: Harness seed.
        index: Case index (``Random(f"{seed}:{index}")`` regenerates it).
        params: Parameters as generated.
        messages: Failure messages on the generated params.
        shrunk_params: Minimal failing params (None when not shrunk).
        shrunk_messages: Failure messages on the shrunk params.
    """

    check: str
    seed: int
    index: int
    params: object
    messages: tuple
    shrunk_params: object = None
    shrunk_messages: tuple = ()

    def case_json(self) -> str:
        target = (
            self.shrunk_params if self.shrunk_params is not None
            else self.params
        )
        return json.dumps(target, sort_keys=True)

    def repro_command(self) -> str:
        return (
            f"python -m repro.verify fuzz --property {self.check} "
            f"--case '{self.case_json()}'"
        )

    def describe(self) -> str:
        lines = [
            f"{self.check} failed (seed {self.seed}, case {self.index}):"
        ]
        lines.extend(f"  {message}" for message in self.messages[:6])
        if self.shrunk_params is not None:
            lines.append(f"  shrunk: {json.dumps(self.shrunk_params)}")
            lines.extend(
                f"  {message}" for message in self.shrunk_messages[:3]
            )
        lines.append(f"  repro: {self.repro_command()}")
        return "\n".join(lines)


#: Properties whose params describe a full simulator run — the ones a
#: failing case can be re-run with tracing enabled for.
_SIM_PROPERTIES = frozenset({"sim_differential", "sim_invariants"})


def write_failure_trace(failure: "FuzzFailure", directory) -> str | None:
    """Re-run a failing sim case with tracing; write a Chrome trace.

    The minimal (shrunk) params are used when available, so the trace
    shows the smallest workload that still reproduces the failure.
    Non-simulator properties (pareto, mapping, pacing...) have no
    command timeline and return None.  A case that crashes mid-run
    still gets its trace up to the crash point.
    """
    if failure.check not in _SIM_PROPERTIES:
        return None
    import pathlib

    from repro.obs import Observability

    params = (
        failure.shrunk_params
        if failure.shrunk_params is not None
        else failure.params
    )
    obs = Observability.create(trace=True)
    try:
        build_simulator(params, fast_forward=True, obs=obs).run()
    except Exception:
        pass
    path = pathlib.Path(directory) / (
        f"{failure.check}-seed{failure.seed}-case{failure.index}"
        ".trace.json"
    )
    path.parent.mkdir(parents=True, exist_ok=True)
    obs.trace.write(path)
    return str(path)


@dataclass
class FuzzReport:
    """Outcome of one fuzz run."""

    seed: int
    budget: int
    cases_run: int = 0
    cases_by_property: dict = field(default_factory=dict)
    failures: list = field(default_factory=list)

    @property
    def ok(self) -> bool:
        return not self.failures

    def summary(self) -> str:
        per_property = ", ".join(
            f"{name}: {count}"
            for name, count in sorted(self.cases_by_property.items())
        )
        status = "all passed" if self.ok else (
            f"{len(self.failures)} FAILED"
        )
        return (
            f"fuzz seed {self.seed}: {self.cases_run} cases "
            f"({per_property}) -> {status}"
        )


def run_fuzz(
    seed: int = 0,
    budget: int = 200,
    properties=None,
    shrink: bool = True,
    max_shrink_attempts: int = 250,
) -> FuzzReport:
    """Run ``budget`` generated cases round-robin over the properties.

    Args:
        seed: Master seed; case ``i`` uses ``Random(f"{seed}:{i}")``.
        budget: Total number of cases across all properties.
        properties: Property-name subset (default: all registered).
        shrink: Shrink failing cases to minimal repros.
        max_shrink_attempts: Candidate evaluations per shrink.
    """
    names = list(properties) if properties else [
        prop.name for prop in PROPERTIES
    ]
    for name in names:
        if name not in PROPERTY_BY_NAME:
            raise ConfigurationError(
                f"unknown property {name!r} "
                f"(choose from {sorted(PROPERTY_BY_NAME)})"
            )
    if budget < 1:
        raise ConfigurationError(f"budget must be >= 1, got {budget}")
    report = FuzzReport(seed=seed, budget=budget)
    for index in range(budget):
        name = names[index % len(names)]
        rng = random.Random(f"{seed}:{index}")
        prop = PROPERTY_BY_NAME[name]
        params = prop.generate(rng)
        try:
            messages = evaluate_case(name, params)
        except _INVALID as error:
            messages = [f"generator produced an invalid case: {error}"]
        report.cases_run += 1
        report.cases_by_property[name] = (
            report.cases_by_property.get(name, 0) + 1
        )
        if not messages:
            continue
        shrunk_params = None
        shrunk_messages: tuple = ()
        if shrink:
            shrunk_params = shrink_case(
                name, params, max_attempts=max_shrink_attempts
            )
            try:
                shrunk_messages = tuple(
                    evaluate_case(name, shrunk_params)
                )
            except _INVALID:  # pragma: no cover - shrink guards this
                shrunk_params = None
        report.failures.append(
            FuzzFailure(
                check=name,
                seed=seed,
                index=index,
                params=params,
                messages=tuple(messages),
                shrunk_params=shrunk_params,
                shrunk_messages=shrunk_messages,
            )
        )
    return report
