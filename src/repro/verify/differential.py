"""Differential oracles: same workload, two execution paths, zero drift.

The optimizations of the simulator and the sweep machinery all make the
same promise — *indistinguishable from the reference path*.  This module
turns that promise into machinery:

* :func:`diff_results` walks two full statistics structures
  field-by-field (dataclasses, dicts, tuples, latency sample lists) and
  returns every differing leaf with its path;
* :func:`diff_simulations` runs one workload through the fast-forward
  and the per-cycle loop and, when anything differs, re-runs both with
  command recording to report the **first divergent command cycle** —
  the cycle where the two executions stopped being the same machine;
* :func:`diff_serial_vs_parallel` compares a process-pool sweep against
  its serial reference, point by point in input order;
* :func:`diff_memoized_vs_cold` compares a memo-served evaluator result
  against a cold evaluator of identical configuration.

Everything returns a :class:`DifferentialReport`; ``report.identical``
is the assertion surface, ``report.describe()`` the failure message.
"""

from __future__ import annotations

import dataclasses
from dataclasses import dataclass, field

from repro.sim.stats import LatencyStats, SimulationResult


@dataclass(frozen=True)
class FieldDiff:
    """One differing leaf between two compared structures."""

    path: str
    left: object
    right: object

    def __str__(self) -> str:
        return f"{self.path}: {self.left!r} != {self.right!r}"


@dataclass(frozen=True)
class FirstDivergence:
    """First command where two recorded executions disagree.

    Attributes:
        index: Position in the command logs.
        left: Command in the reference log (None if it ended early).
        right: Command in the compared log (None if it ended early).
    """

    index: int
    left: object
    right: object

    @property
    def cycle(self) -> int | None:
        """Cycle of the first divergent command (the earlier side)."""
        cycles = [
            command.cycle
            for command in (self.left, self.right)
            if command is not None
        ]
        return min(cycles) if cycles else None

    def __str__(self) -> str:
        return (
            f"first divergence at command #{self.index} "
            f"(cycle {self.cycle}): {self.left} != {self.right}"
        )


@dataclass
class DifferentialReport:
    """Outcome of one differential comparison.

    Attributes:
        label: What was compared.
        diffs: Field-level differences (empty = identical).
        first_divergence: Command-level first divergence, when the
            comparison could localize one.
    """

    label: str
    diffs: list = field(default_factory=list)
    first_divergence: FirstDivergence | None = None

    @property
    def identical(self) -> bool:
        return not self.diffs and self.first_divergence is None

    def describe(self, limit: int = 8) -> str:
        if self.identical:
            return f"{self.label}: identical"
        lines = [f"{self.label}: {len(self.diffs)} field diffs"]
        if self.first_divergence is not None:
            lines.append(f"  {self.first_divergence}")
        for diff in self.diffs[:limit]:
            lines.append(f"  {diff}")
        if len(self.diffs) > limit:
            lines.append(f"  ... and {len(self.diffs) - limit} more")
        return "\n".join(lines)


# -- structural diffing ------------------------------------------------------


def diff_values(left, right, path: str = "") -> list:
    """Recursively diff two values; returns a list of :class:`FieldDiff`.

    Dataclasses are compared field-by-field, dicts key-by-key (union of
    keys), sequences index-by-index; :class:`LatencyStats` compares its
    streaming digest, whose order-sensitive rolling checksum catches
    sample reorderings, not just aggregate drift.  Floats are compared
    exactly — the contract under test is bit-identity, not tolerance.
    """
    if isinstance(left, LatencyStats) and isinstance(right, LatencyStats):
        return diff_values(
            left.digest(), right.digest(), f"{path}.digest"
        )
    if dataclasses.is_dataclass(left) and type(left) is type(right):
        diffs: list = []
        for f in dataclasses.fields(left):
            diffs.extend(
                diff_values(
                    getattr(left, f.name),
                    getattr(right, f.name),
                    f"{path}.{f.name}" if path else f.name,
                )
            )
        return diffs
    if isinstance(left, dict) and isinstance(right, dict):
        diffs = []
        for key in sorted(set(left) | set(right), key=str):
            sub = f"{path}[{key!r}]"
            if key not in left:
                diffs.append(FieldDiff(sub, "<missing>", right[key]))
            elif key not in right:
                diffs.append(FieldDiff(sub, left[key], "<missing>"))
            else:
                diffs.extend(diff_values(left[key], right[key], sub))
        return diffs
    if isinstance(left, (list, tuple)) and isinstance(right, (list, tuple)):
        diffs = []
        if len(left) != len(right):
            diffs.append(
                FieldDiff(f"{path}.len", len(left), len(right))
            )
        for index, (a, b) in enumerate(zip(left, right)):
            diffs.extend(diff_values(a, b, f"{path}[{index}]"))
        return diffs
    if left != right:
        return [FieldDiff(path or "<value>", left, right)]
    return []


def diff_results(left: SimulationResult, right: SimulationResult) -> list:
    """Field-by-field diff of two :class:`SimulationResult` structures."""
    return diff_values(left, right, "result")


def result_fingerprint(result: SimulationResult) -> tuple:
    """Canonical hashable digest of everything a result observably holds.

    The single definition shared by the equivalence tests, the fuzz
    harness and ``benchmarks/bench_perf.py`` — one place to extend when
    the result type grows a field.
    """
    return (
        result.requests_completed,
        result.data_bits_transferred,
        tuple(sorted(result.commands.items())),
        result.refreshes,
        result.bank_activations,
        tuple(sorted(result.fifo_high_water.items())),
        tuple(sorted(result.fifo_stall_cycles.items())),
        result.row_hit_rate,
        result.latency.digest(),
        tuple(
            (name, stats.digest())
            for name, stats in sorted(result.latency_by_client.items())
        ),
    )


# -- command-log localization ------------------------------------------------


def first_command_divergence(left_log, right_log) -> FirstDivergence | None:
    """First index where two command logs disagree, or None."""
    for index, (a, b) in enumerate(zip(left_log, right_log)):
        if a != b:
            return FirstDivergence(index=index, left=a, right=b)
    if len(left_log) != len(right_log):
        index = min(len(left_log), len(right_log))
        longer = left_log if len(left_log) > len(right_log) else right_log
        return FirstDivergence(
            index=index,
            left=left_log[index] if longer is left_log else None,
            right=right_log[index] if longer is right_log else None,
        )
    return None


# -- harnesses ---------------------------------------------------------------


def diff_simulations(
    factory, label: str = "fast-forward vs per-cycle"
) -> DifferentialReport:
    """Run one workload through two simulator paths and compare.

    Args:
        factory: ``factory(fast_forward, record_commands)`` returning a
            **fresh** :class:`MemorySystemSimulator` for each call; the
            reference path is ``fast_forward=False``.
        label: Report label.

    When the end results differ, both paths are re-run with command
    recording enabled and the report carries the first divergent
    command (and therefore the first divergent cycle).
    """
    reference = factory(False, False).run()
    optimized = factory(True, False).run()
    diffs = diff_results(reference, optimized)
    first = None
    if diffs:
        ref_sim = factory(False, True)
        ref_sim.run()
        opt_sim = factory(True, True)
        opt_sim.run()
        first = first_command_divergence(
            ref_sim.controller.command_log, opt_sim.controller.command_log
        )
    return DifferentialReport(
        label=label, diffs=diffs, first_divergence=first
    )


def diff_backend(
    factory, label: str = "event backend vs per-cycle"
) -> DifferentialReport:
    """Run one workload through the event engine and the naive loop.

    Args:
        factory: ``factory(backend, record_commands)`` returning a
            **fresh** :class:`MemorySystemSimulator` for each call;
            the reference is ``backend="cycle"`` (the factory should
            build it with ``fast_forward=False`` so the reference is
            the naive stepped loop).
        label: Report label.

    Skips gracefully (reports identical) when the event engine fell
    back to the cycle backend — there is nothing to diff then; the
    fallback reason is recorded on the simulator.  When results
    differ, both paths re-run with command recording and the report
    localizes the first divergent command cycle.
    """
    reference = factory("cycle", False).run()
    event_sim = factory("event", False)
    optimized = event_sim.run()
    if event_sim.backend_used != "event":
        return DifferentialReport(
            label=f"{label} (fallback: {event_sim.backend_fallback_reason})"
        )
    diffs = diff_results(reference, optimized)
    first = None
    if diffs:
        ref_sim = factory("cycle", True)
        ref_sim.run()
        opt_sim = factory("event", True)
        opt_sim.run()
        first = first_command_divergence(
            ref_sim.controller.command_log, opt_sim.controller.command_log
        )
    return DifferentialReport(
        label=label, diffs=diffs, first_divergence=first
    )


def diff_serial_vs_parallel(
    fn, items, workers: int = 2, chunk_size: int | None = None
) -> DifferentialReport:
    """Compare a process-pool map against the serial reference."""
    from repro.core.parallel import ParallelConfig, parallel_map
    from repro.errors import ReproError

    items = list(items)
    serial = parallel_map(fn, items, config=None, catch=(ReproError,))
    parallel = parallel_map(
        fn,
        items,
        config=ParallelConfig(workers=workers, chunk_size=chunk_size),
        catch=(ReproError,),
    )
    diffs = diff_values(serial, parallel, "outcomes")
    return DifferentialReport(
        label=f"serial vs parallel({workers} workers)", diffs=diffs
    )


def diff_injection_off(
    cycles: int = 4_000,
    warmup_cycles: int = 300,
    seed: int = 0,
    n_cell_faults: int = 100,
) -> DifferentialReport:
    """Pin the fault-injection bit-identity contract.

    Runs the canonical injected workload twice — once on the plain
    controller, once on the resilient controller with a *disabled*
    injector (fault map still built) — and diffs the fingerprints.
    A disabled injector must cost nothing observable; any drift here
    means the degradation machinery leaked into the baseline path.
    """
    from repro.inject import InjectionConfig, build_injected_simulator

    plain = build_injected_simulator(
        None, cycles=cycles, warmup_cycles=warmup_cycles, seed=seed
    ).run()
    disabled = build_injected_simulator(
        InjectionConfig(enabled=False, seed=seed, n_cell_faults=n_cell_faults),
        cycles=cycles,
        warmup_cycles=warmup_cycles,
        seed=seed,
    ).run()
    diffs = diff_values(
        result_fingerprint(plain), result_fingerprint(disabled), "fingerprint"
    )
    return DifferentialReport(
        label="plain vs injection-disabled", diffs=diffs
    )


def diff_memoized_vs_cold(macro, requirements) -> DifferentialReport:
    """Compare a memo-served evaluation against a cold evaluator."""
    from repro.core.evaluator import Evaluator

    warm_evaluator = Evaluator()
    warm_evaluator.evaluate_macro(macro, requirements)  # prime the memo
    memoized = warm_evaluator.evaluate_macro(macro, requirements)
    if warm_evaluator.macro_cache_info()["hits"] < 1:
        return DifferentialReport(
            label="memoized vs cold",
            diffs=[FieldDiff("cache.hits", 0, ">= 1")],
        )
    cold = Evaluator().evaluate_macro(macro, requirements)
    diffs = diff_values(memoized, cold, "metrics")
    return DifferentialReport(label="memoized vs cold", diffs=diffs)
