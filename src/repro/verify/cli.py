"""Command-line entry point for the verification subsystem.

Usage::

    python -m repro.verify fuzz --seed 0 --budget 200
    python -m repro.verify fuzz --property sim_differential --budget 40
    python -m repro.verify fuzz --property pacing_plan --case '{...}'
    python -m repro.verify fuzz --budget 200 --trace-dir traces/
    python -m repro.verify diff --seed 0 --cases 5
    python -m repro.verify chaos --profile smoke --out chaos.jsonl
    python -m repro.verify properties

``fuzz`` runs the seeded fuzz harness (failing cases are shrunk and
printed with a one-line repro command); ``diff`` runs the differential
oracles — fast-forward vs per-cycle, event backend vs per-cycle, and
memoized vs cold — on generated configurations; ``properties`` lists
the registered fuzz properties.
Also reachable as ``python -m repro.cli verify ...``.
"""

from __future__ import annotations

import argparse
import json
import random
import sys

from repro.errors import ConfigurationError


def _cmd_fuzz(args: argparse.Namespace) -> int:
    from repro.verify import fuzz

    if args.case is not None:
        if not args.property:
            print(
                "--case requires --property to name the check",
                file=sys.stderr,
            )
            return 2
        name = args.property[0]
        try:
            params = json.loads(args.case)
        except json.JSONDecodeError as error:
            print(f"--case is not valid JSON: {error}", file=sys.stderr)
            return 2
        try:
            messages = fuzz.evaluate_case(name, params)
        except ConfigurationError as error:
            print(f"invalid case: {error}", file=sys.stderr)
            return 2
        if messages:
            print(f"{name}: FAILED")
            for message in messages:
                print(f"  {message}")
            return 1
        print(f"{name}: passed")
        return 0

    report = fuzz.run_fuzz(
        seed=args.seed,
        budget=args.budget,
        properties=args.property or None,
        shrink=not args.no_shrink,
    )
    print(report.summary())
    for failure in report.failures:
        print()
        print(failure.describe())
        if args.trace_dir:
            path = fuzz.write_failure_trace(failure, args.trace_dir)
            if path:
                print(f"  trace: {path}")
    return 0 if report.ok else 1


def _cmd_diff(args: argparse.Namespace) -> int:
    from repro.verify import fuzz
    from repro.verify.differential import (
        diff_backend,
        diff_memoized_vs_cold,
        diff_simulations,
    )

    failures = 0
    for index in range(args.cases):
        rng = random.Random(f"{args.seed}:diff:{index}")
        params = fuzz.gen_sim_case(rng)
        report = diff_simulations(
            lambda fast_forward, record_commands: fuzz.build_simulator(
                params,
                fast_forward=fast_forward,
                record_commands=record_commands,
            ),
            label=f"sim case {index}: fast-forward vs per-cycle",
        )
        print(report.describe())
        failures += 0 if report.identical else 1
    for index in range(args.cases):
        rng = random.Random(f"{args.seed}:backend:{index}")
        params = fuzz.gen_sim_case(rng)
        report = diff_backend(
            lambda backend, record_commands: fuzz.build_simulator(
                params,
                fast_forward=False,
                backend=backend,
                record_commands=record_commands,
            ),
            label=f"sim case {index}: event backend vs per-cycle",
        )
        print(report.describe())
        failures += 0 if report.identical else 1
    for index in range(args.cases):
        rng = random.Random(f"{args.seed}:memo:{index}")
        params = fuzz.gen_macro_case(rng)
        report = diff_memoized_vs_cold(
            fuzz.build_macro(params), fuzz.build_requirements(params)
        )
        print(f"macro case {index}: {report.describe()}")
        failures += 0 if report.identical else 1
    return 0 if failures == 0 else 1


def _cmd_chaos(args: argparse.Namespace) -> int:
    from repro.verify import chaos

    report = chaos.run_chaos(
        profile=args.profile,
        seed=args.seed,
        scenarios=args.scenario or None,
        out=args.out,
    )
    print(report.summary())
    if report.ledger_path:
        print(f"chaos ledger: {report.ledger_path}")
    return 0 if report.ok else 1


def _cmd_properties(args: argparse.Namespace) -> int:
    from repro.verify.fuzz import PROPERTIES

    for prop in PROPERTIES:
        print(prop.name)
    return 0


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro.verify",
        description="differential verification: live invariants, "
        "oracles and seeded fuzzing",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    fuzz_cmd = sub.add_parser("fuzz", help="run the seeded fuzz harness")
    fuzz_cmd.add_argument("--seed", type=int, default=0)
    fuzz_cmd.add_argument(
        "--budget",
        type=int,
        default=200,
        help="total generated cases across all properties",
    )
    fuzz_cmd.add_argument(
        "--property",
        action="append",
        help="restrict to this property (repeatable)",
    )
    fuzz_cmd.add_argument(
        "--case",
        help="JSON params for one explicit case (requires --property)",
    )
    fuzz_cmd.add_argument(
        "--no-shrink",
        action="store_true",
        help="report failing cases without shrinking them",
    )
    fuzz_cmd.add_argument(
        "--trace-dir",
        help="write a Chrome trace of each failing (shrunk) sim case "
        "into this directory",
    )
    fuzz_cmd.set_defaults(func=_cmd_fuzz)

    diff_cmd = sub.add_parser(
        "diff", help="run the differential oracles on generated cases"
    )
    diff_cmd.add_argument("--seed", type=int, default=0)
    diff_cmd.add_argument("--cases", type=int, default=5)
    diff_cmd.set_defaults(func=_cmd_diff)

    chaos_cmd = sub.add_parser(
        "chaos",
        help="induce failures (killed/frozen workers, torn files, "
        "floods, breaker trips) and assert the recovery invariants",
    )
    chaos_cmd.add_argument(
        "--profile",
        choices=("smoke", "full"),
        default="smoke",
        help="smoke = kill + flood (CI gate); full = every scenario",
    )
    chaos_cmd.add_argument("--seed", type=int, default=0)
    chaos_cmd.add_argument(
        "--scenario",
        action="append",
        help="run just this scenario (repeatable, overrides --profile)",
    )
    chaos_cmd.add_argument(
        "--out", help="write the JSONL chaos ledger here"
    )
    chaos_cmd.set_defaults(func=_cmd_chaos)

    props_cmd = sub.add_parser(
        "properties", help="list registered fuzz properties"
    )
    props_cmd.set_defaults(func=_cmd_properties)
    return parser


def main(argv=None) -> int:
    parser = build_parser()
    args = parser.parse_args(argv)
    return args.func(args)


if __name__ == "__main__":
    sys.exit(main())
