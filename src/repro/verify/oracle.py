"""Independent SDRAM protocol oracle.

A second, structurally independent implementation of the command-level
protocol rules in :mod:`repro.dram.bank` and :mod:`repro.dram.device`.
The device model enforces legality at issue time; this oracle re-derives
every constraint directly from the :class:`TimingParameters` and checks
each observed command against its own state.  Because the two
implementations share no code, a bug in either one (a mutated tRCD
check, a forgotten turnaround cycle, a stale ready-time update) shows up
as a disagreement instead of silently passing through both.

This is the differential-verification analogue of Ramulator-style trace
validation: the controller's live command stream is the trace, and the
oracle is the redundant referee.

Checked rules (names appear in :class:`Violation.check`):

* ``bus.order`` — at most one command per cycle on the command bus,
  cycles non-decreasing.
* ``act.bank_open`` / ``act.row_range`` / ``act.t_rc`` / ``act.t_rrd``
  — ACTIVATE legality.
* ``col.closed_row`` / ``col.t_rcd`` — column-command legality against
  the bank (tRCD after ACTIVATE, burst pacing, no column to a
  precharged bank).
* ``col.data_bus`` — shared data-bus occupancy including the
  read/write turnaround gap.
* ``pre.t_ras`` — PRECHARGE legality (tRAS since ACTIVATE, write
  recovery).
* ``ref.bank_busy`` / ``ref.t_rc`` — REFRESH requires all banks idle
  and past their ready-again cycles.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.dram.commands import Command, CommandType
from repro.dram.organizations import Organization
from repro.dram.timing import TimingParameters


@dataclass(frozen=True)
class Violation:
    """One verification violation.

    Attributes:
        check: Dotted name of the violated rule (e.g. ``"col.t_rcd"``,
            ``"state.fifo_conservation"``).
        cycle: Cycle at which the violation was observed.
        detail: Human-readable explanation with the offending values.
    """

    check: str
    cycle: int
    detail: str

    def __str__(self) -> str:
        return f"@{self.cycle} [{self.check}] {self.detail}"


@dataclass
class _BankModel:
    """Oracle-side view of one bank: open row and ready cycles."""

    open_row: int | None = None
    ready_activate: int = 0
    ready_precharge: int = 0
    # None = no column commands legal until the next ACTIVATE.
    ready_column: int | None = None


@dataclass
class CommandOracle:
    """Streams commands and reports protocol violations.

    Attributes:
        organization: Organization the command stream targets.
        timing: Timing parameters the stream must respect.
        label: Identifier used in messages.
    """

    organization: Organization
    timing: TimingParameters
    label: str = "oracle"

    violations: list = field(default_factory=list, init=False)
    commands_seen: int = field(default=0, init=False)

    _banks: list = field(default_factory=list, init=False)
    _last_cycle: int | None = field(default=None, init=False)
    _last_activate: int | None = field(default=None, init=False)
    _bus_free: int = field(default=0, init=False)
    _bus_last_read: bool | None = field(default=None, init=False)

    def __post_init__(self) -> None:
        self._banks = [
            _BankModel() for _ in range(self.organization.n_banks)
        ]

    @property
    def clean(self) -> bool:
        return not self.violations

    def observe(self, command: Command) -> list:
        """Check one command; returns the new violations (empty = legal).

        An illegal command is *not* applied to the oracle state, so
        checking continues from the last legal prefix (mirroring
        :class:`~repro.dram.tracecheck.TraceChecker`).
        """
        self.commands_seen += 1
        found = self._check(command)
        if found:
            self.violations.extend(found)
            return found
        self._apply(command)
        return []

    # -- rule checking ------------------------------------------------------

    def _fail(self, check: str, command: Command, detail: str) -> Violation:
        return Violation(
            check=check,
            cycle=command.cycle,
            detail=f"{self.label}: {detail} ({command})",
        )

    def _check(self, command: Command) -> list:
        t = self.timing
        cycle = command.cycle
        found: list = []
        if self._last_cycle is not None and cycle <= self._last_cycle:
            found.append(
                self._fail(
                    "bus.order",
                    command,
                    f"command bus already used at cycle "
                    f"{self._last_cycle}",
                )
            )
        if command.kind is CommandType.NOP:
            return found
        if command.kind is CommandType.REFRESH:
            for index, bank in enumerate(self._banks):
                if bank.open_row is not None:
                    found.append(
                        self._fail(
                            "ref.bank_busy",
                            command,
                            f"bank {index} still holds row "
                            f"{bank.open_row}",
                        )
                    )
                if cycle < bank.ready_activate:
                    found.append(
                        self._fail(
                            "ref.t_rc",
                            command,
                            f"bank {index} not ready until "
                            f"{bank.ready_activate}",
                        )
                    )
            return found
        if not 0 <= command.bank < len(self._banks):
            found.append(
                self._fail(
                    "bus.bank_range",
                    command,
                    f"bank {command.bank} outside "
                    f"[0, {len(self._banks)})",
                )
            )
            return found
        bank = self._banks[command.bank]
        if command.kind is CommandType.ACTIVATE:
            if bank.open_row is not None:
                found.append(
                    self._fail(
                        "act.bank_open",
                        command,
                        f"row {bank.open_row} already open",
                    )
                )
            if command.row is None or not (
                0 <= command.row < self.organization.n_rows
            ):
                found.append(
                    self._fail(
                        "act.row_range",
                        command,
                        f"row {command.row} outside "
                        f"[0, {self.organization.n_rows})",
                    )
                )
            if cycle < bank.ready_activate:
                found.append(
                    self._fail(
                        "act.t_rc",
                        command,
                        f"bank not activatable until "
                        f"{bank.ready_activate} (tRC/tRP/tRFC)",
                    )
                )
            if (
                self._last_activate is not None
                and cycle < self._last_activate + t.t_rrd
            ):
                found.append(
                    self._fail(
                        "act.t_rrd",
                        command,
                        f"previous ACTIVATE at {self._last_activate}, "
                        f"tRRD={t.t_rrd}",
                    )
                )
            return found
        if command.kind in (CommandType.READ, CommandType.WRITE):
            if bank.open_row is None or bank.ready_column is None:
                found.append(
                    self._fail(
                        "col.closed_row",
                        command,
                        "no open row in the target bank",
                    )
                )
                return found
            if cycle < bank.ready_column:
                found.append(
                    self._fail(
                        "col.t_rcd",
                        command,
                        f"column not legal until {bank.ready_column} "
                        f"(tRCD={t.t_rcd} after ACT, or burst pacing)",
                    )
                )
            is_read = command.kind is CommandType.READ
            data_start = cycle + (t.t_cas if is_read else 1)
            earliest = self._bus_free
            if (
                self._bus_last_read is not None
                and self._bus_last_read != is_read
            ):
                earliest += t.t_turnaround
            if data_start < earliest:
                found.append(
                    self._fail(
                        "col.data_bus",
                        command,
                        f"data bus busy until {earliest}, burst would "
                        f"start at {data_start}",
                    )
                )
            return found
        if command.kind is CommandType.PRECHARGE:
            if cycle < bank.ready_precharge:
                found.append(
                    self._fail(
                        "pre.t_ras",
                        command,
                        f"precharge not legal until "
                        f"{bank.ready_precharge} "
                        f"(tRAS/write recovery)",
                    )
                )
            return found
        return found

    # -- state application --------------------------------------------------

    def _apply(self, command: Command) -> None:
        t = self.timing
        cycle = command.cycle
        self._last_cycle = cycle
        if command.kind is CommandType.NOP:
            return
        if command.kind is CommandType.REFRESH:
            for bank in self._banks:
                bank.open_row = None
                bank.ready_activate = cycle + t.t_rfc
                bank.ready_precharge = cycle + t.t_rfc
                bank.ready_column = None
            return
        bank = self._banks[command.bank]
        if command.kind is CommandType.ACTIVATE:
            self._last_activate = cycle
            bank.open_row = command.row
            bank.ready_column = cycle + t.t_rcd
            bank.ready_precharge = cycle + t.t_ras
            bank.ready_activate = cycle + t.t_rc
            return
        if command.kind in (CommandType.READ, CommandType.WRITE):
            burst_end = cycle + t.t_cas + t.burst_length - 1
            if command.kind is CommandType.WRITE:
                bank.ready_precharge = max(
                    bank.ready_precharge, burst_end + t.t_wr
                )
            else:
                bank.ready_precharge = max(
                    bank.ready_precharge, burst_end
                )
            bank.ready_column = max(
                bank.ready_column, cycle + t.burst_length
            )
            self._bus_free = burst_end + 1
            self._bus_last_read = command.kind is CommandType.READ
            return
        if command.kind is CommandType.PRECHARGE:
            bank.open_row = None
            bank.ready_activate = max(
                bank.ready_activate, cycle + t.t_rp
            )
            bank.ready_column = None
