"""Live simulator invariants: the in-flight verification layer.

Enabled through ``SimulationConfig(check_invariants="collect"|"raise")``,
a :class:`LiveInvariantChecker` rides along with a simulation run:

* every command the controller issues is streamed through the
  independent :class:`~repro.verify.oracle.CommandOracle` (protocol and
  timing legality re-derived from the timing parameters, sharing no
  code with the device model);
* every stepped cycle, simulator-state invariants are checked — FIFO
  conservation, request-issue accounting, token-bucket bounds,
  refresh-deadline tracking, and completed-request timeline sanity;
* every fast-forward jump is audited: a skip is only legal from a
  provably quiescent state, and must not jump over a refresh deadline.

Violations are collected into an :class:`InvariantReport` (or raised as
:class:`~repro.errors.VerificationError` in ``"raise"`` mode).  A clean
report is the machine-checked form of the fast path's "bit-identical"
claim: not only do the end results match, every intermediate command was
legal and every conservation law held on the way there.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.dram.organizations import Organization
from repro.dram.timing import TimingParameters
from repro.traffic.client import CREDIT_CAP
from repro.verify.oracle import CommandOracle, Violation

#: Tolerance for token-bucket float comparisons: credit arithmetic mixes
#: ``credit + rate >= 1.0`` tests with ``credit += rate - 1.0`` updates,
#: whose roundings differ in the last ulp.
_CREDIT_EPS = 1e-9


def refresh_deadline_slack(
    timing: TimingParameters, organization: Organization
) -> int:
    """Worst-case cycles between refresh-due and refresh-issued.

    Once refresh is due the controller stops issuing new request
    commands and drains: each open bank waits out tRAS / write recovery
    and is precharged (one per cycle), then REFRESH waits for every
    bank's ready-again cycle.  The bound below is deliberately generous
    — it flags schedulers that *forget* refresh, not marginal drains.
    """
    per_bank = (
        timing.t_ras
        + timing.t_rp
        + timing.t_wr
        + timing.t_cas
        + timing.burst_length
    )
    return (
        timing.t_rc
        + timing.t_rfc
        + organization.n_banks * per_bank
        + 32
    )


@dataclass(frozen=True)
class InvariantReport:
    """Outcome of one live-checked simulation run.

    Attributes:
        violations: All violations found, in detection order.
        commands_checked: Commands streamed through the protocol oracle.
        cycles_checked: Stepped cycles on which state was checked.
        skips_checked: Fast-forward jumps audited.
    """

    violations: tuple
    commands_checked: int
    cycles_checked: int
    skips_checked: int

    @property
    def clean(self) -> bool:
        return not self.violations

    def summary(self) -> str:
        status = "clean" if self.clean else (
            f"{len(self.violations)} violations "
            f"(first: {self.violations[0]})"
        )
        return (
            f"{self.commands_checked} commands, "
            f"{self.cycles_checked} cycles, "
            f"{self.skips_checked} skips checked: {status}"
        )


@dataclass
class LiveInvariantChecker:
    """Checks protocol and state invariants during a simulation run.

    Attributes:
        organization: Device organization under simulation.
        timing: Device timing under simulation.
    """

    organization: Organization
    timing: TimingParameters

    violations: list = field(default_factory=list, init=False)
    oracle: CommandOracle = field(init=False)

    _cycles_checked: int = field(default=0, init=False)
    _skips_checked: int = field(default=0, init=False)
    _completed_checked: int = field(default=0, init=False)
    _refresh_due_since: int | None = field(default=None, init=False)
    _last_refreshes_issued: int = field(default=0, init=False)
    _slack: int = field(default=0, init=False)

    def __post_init__(self) -> None:
        self.oracle = CommandOracle(
            organization=self.organization,
            timing=self.timing,
            label="live",
        )
        self._slack = refresh_deadline_slack(
            self.timing, self.organization
        )

    # -- hooks called by the simulator --------------------------------------

    def observe_command(self, command) -> None:
        """Controller command observer: protocol-check one command."""
        self.violations.extend(self.oracle.observe(command))

    def on_cycle(self, cycle: int, simulator) -> None:
        """State invariants after one stepped controller cycle."""
        self._cycles_checked += 1
        self._check_fifos(cycle, simulator)
        self._check_clients(cycle, simulator)
        self._check_refresh_deadline(cycle, simulator.controller)
        self._check_completed(cycle, simulator.controller)

    def on_skip(self, cycle: int, skipped: int, simulator) -> None:
        """Audit one fast-forward jump over ``[cycle, cycle+skipped)``."""
        self._skips_checked += 1
        controller = simulator.controller
        if simulator._pending:
            self._state_violation(
                cycle,
                "skip.pending",
                f"skipped {skipped} cycles with back-pressured "
                f"requests held for {sorted(simulator._pending)}",
            )
        if controller.window:
            self._state_violation(
                cycle,
                "skip.window",
                f"skipped {skipped} cycles with {len(controller.window)} "
                f"requests in the scheduling window",
            )
        busy = [
            name
            for name, fifo in controller.fifos.items()
            if len(fifo)
        ]
        if busy:
            self._state_violation(
                cycle,
                "skip.fifo",
                f"skipped {skipped} cycles with queued requests in "
                f"{busy}",
            )
        scheduler = controller.refresh_scheduler
        if scheduler is not None and scheduler.due(cycle + skipped - 1):
            self._state_violation(
                cycle,
                "skip.refresh_deadline",
                f"skip to {cycle + skipped} jumps over a refresh due at "
                f"{scheduler.quiescent_until(cycle)}",
            )

    def on_measurement_reset(self, completed_discarded: int) -> None:
        """The simulator is about to clear warm-up statistics."""
        del completed_discarded
        self._completed_checked = 0

    def report(self) -> InvariantReport:
        return InvariantReport(
            violations=tuple(self.violations),
            commands_checked=self.oracle.commands_seen,
            cycles_checked=self._cycles_checked,
            skips_checked=self._skips_checked,
        )

    # -- individual state checks --------------------------------------------

    def _state_violation(self, cycle: int, check: str, detail: str) -> None:
        self.violations.append(
            Violation(check=check, cycle=cycle, detail=detail)
        )

    def _check_fifos(self, cycle: int, simulator) -> None:
        for name, fifo in simulator.controller.fifos.items():
            queued = len(fifo)
            if fifo.total_enqueued - fifo.total_dequeued != queued:
                self._state_violation(
                    cycle,
                    "state.fifo_conservation",
                    f"FIFO {name}: enqueued {fifo.total_enqueued} - "
                    f"dequeued {fifo.total_dequeued} != queued {queued}",
                )
            if queued > fifo.capacity:
                self._state_violation(
                    cycle,
                    "state.fifo_overflow",
                    f"FIFO {name}: {queued} queued exceeds capacity "
                    f"{fifo.capacity}",
                )

    def _check_clients(self, cycle: int, simulator) -> None:
        for client in simulator.clients:
            credit = client.credit
            if credit < -_CREDIT_EPS:
                self._state_violation(
                    cycle,
                    "state.token_bucket_negative",
                    f"client {client.name}: credit {credit!r} < 0",
                )
            if credit > CREDIT_CAP + _CREDIT_EPS:
                self._state_violation(
                    cycle,
                    "state.token_bucket_cap",
                    f"client {client.name}: credit {credit!r} exceeds "
                    f"cap {CREDIT_CAP}",
                )
            fifo = simulator.controller.fifos.get(client.name)
            if fifo is None:
                continue
            held = 1 if client.name in simulator._pending else 0
            if client.issued != fifo.total_enqueued + held:
                self._state_violation(
                    cycle,
                    "state.issue_accounting",
                    f"client {client.name}: issued {client.issued} != "
                    f"enqueued {fifo.total_enqueued} + held {held}",
                )

    def _check_refresh_deadline(self, cycle: int, controller) -> None:
        scheduler = controller.refresh_scheduler
        if scheduler is None:
            return
        if controller.refreshes_issued != self._last_refreshes_issued:
            self._last_refreshes_issued = controller.refreshes_issued
            self._refresh_due_since = None
        if not scheduler.due(cycle):
            self._refresh_due_since = None
            return
        if self._refresh_due_since is None:
            self._refresh_due_since = cycle
            return
        overdue = cycle - self._refresh_due_since
        if overdue > self._slack:
            self._state_violation(
                cycle,
                "state.refresh_deadline",
                f"refresh due since {self._refresh_due_since} still "
                f"not issued after {overdue} cycles "
                f"(slack {self._slack})",
            )
            # Re-arm so a stuck scheduler reports once per slack window
            # instead of flooding every subsequent cycle.
            self._refresh_due_since = cycle

    def _check_completed(self, cycle: int, controller) -> None:
        completed = controller.completed
        for request in completed[self._completed_checked :]:
            stamps = (
                request.created_cycle,
                request.accepted_cycle,
                request.issued_cycle,
                request.completed_cycle,
            )
            if any(stamp is None for stamp in stamps) or not (
                stamps[0] <= stamps[1] <= stamps[2] <= stamps[3]
            ):
                self._state_violation(
                    cycle,
                    "state.request_timeline",
                    f"request {request.request_id} has a non-monotonic "
                    f"timeline {stamps}",
                )
            elif request.completed_cycle > cycle + 1:
                # +1: a prefetch-buffer hit legitimately completes "next
                # cycle" and is recorded at acceptance time.
                self._state_violation(
                    cycle,
                    "state.retire_from_future",
                    f"request {request.request_id} retired at "
                    f"{request.completed_cycle} > current cycle {cycle}",
                )
        self._completed_checked = len(completed)
