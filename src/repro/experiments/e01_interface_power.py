"""E1: discrete vs. embedded memory-system power (paper Section 1).

Claim: "consider a system which needs a 4Gbyte/s bandwidth and a bus
width of 256 bits.  A memory system built with discrete SDRAMs (16-bit
interface at 100 MHz) would require about ten times the power of an
edram with an internal 256-bit interface."
"""

from __future__ import annotations

from repro.power.system import discrete_vs_embedded_power
from repro.reporting.report import ExperimentReport
from repro.reporting.tables import Table


def run() -> ExperimentReport:
    report = ExperimentReport(
        experiment_id="E1",
        title="Discrete vs. embedded interface power at 4 GB/s",
        paper_section="Section 1",
    )
    discrete, embedded, ratio = discrete_vs_embedded_power(
        bandwidth_bytes_per_s=4e9,
        bus_width_bits=256,
        sdram_width_bits=16,
        sdram_clock_hz=100e6,
    )
    report.check(
        claim="discrete system needs about 10x the power",
        paper_value="~10x",
        measured=f"{ratio:.1f}x",
        holds=8.0 <= ratio <= 13.0,
        note=(
            f"discrete {discrete.total_w:.2f} W "
            f"(core {discrete.core_w:.2f} + IO {discrete.interface_w:.2f}) "
            f"vs embedded {embedded.total_w:.2f} W "
            f"(core {embedded.core_w:.2f} + IO {embedded.interface_w:.2f})"
        ),
    )
    report.check(
        claim="256-bit bus from 16-bit parts needs 16 devices",
        paper_value="16 chips",
        measured=f"{discrete.n_chips} chips",
        holds=discrete.n_chips == 16,
    )
    report.check(
        claim="off-chip IO dominates the discrete system's power",
        paper_value="board wire capacitive loads dominate",
        measured=(
            f"IO is {discrete.interface_w / discrete.total_w:.0%} of the "
            f"discrete total, {embedded.interface_w / embedded.total_w:.0%} "
            f"of the embedded total"
        ),
        holds=(
            discrete.interface_w / discrete.total_w
            > 2 * embedded.interface_w / embedded.total_w
        ),
    )
    return report


def render_table() -> str:
    """The power breakdown as the paper's example would tabulate it."""
    discrete, embedded, ratio = discrete_vs_embedded_power()
    table = Table(
        title="E1: 4 GB/s, 256-bit memory system power (W)",
        columns=["system", "chips", "core W", "interface W", "total W"],
    )
    table.add_row(
        "discrete 16x SDRAM x16 @100MHz",
        discrete.n_chips,
        f"{discrete.core_w:.2f}",
        f"{discrete.interface_w:.2f}",
        f"{discrete.total_w:.2f}",
    )
    table.add_row(
        "embedded 256-bit macro",
        embedded.n_chips,
        f"{embedded.core_w:.2f}",
        f"{embedded.interface_w:.2f}",
        f"{embedded.total_w:.2f}",
    )
    table.add_row("ratio", "", "", "", f"{ratio:.1f}x")
    return table.render()
