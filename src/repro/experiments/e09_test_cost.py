"""E9: testing economics (Section 6).

Claims: DRAM test times are high and dominated by waiting; a high degree
of parallelism (wide on-chip interfaces + BIST) is required to reduce
test costs; the flow is pre-fuse test -> fuse -> post-fuse test;
redundancy levels trade area for yield; relaxed quality targets
(graphics) allow shipping retention-marginal parts; the concept must
support memory-on-logic-tester business models.
"""

from __future__ import annotations

from repro.cost.yield_model import YieldModel
from repro.dft.bist import BISTController
from repro.dft.flow import TestFlow
from repro.dft.march import MARCH_C_MINUS
from repro.dft.test_cost import LOGIC_TESTER, MEMORY_TESTER, TestCostModel
from repro.reporting.report import ExperimentReport
from repro.reporting.tables import Table
from repro.units import MBIT


def run() -> ExperimentReport:
    report = ExperimentReport(
        experiment_id="E9",
        title="Test time, BIST parallelism, and repair yield",
        paper_section="Section 6",
    )
    memory_bits = 64 * MBIT
    raw = TestCostModel(tester=LOGIC_TESTER)
    bist = TestCostModel(tester=LOGIC_TESTER, bist=BISTController())
    raw_time = raw.total_time_s(MARCH_C_MINUS, memory_bits)
    bist_time = bist.total_time_s(MARCH_C_MINUS, memory_bits)
    report.check(
        claim="DRAM test times are quite high",
        paper_value="high (seconds per die)",
        measured=(
            f"{raw_time:.2f} s/die for March C- on 64 Mbit over a 16-bit "
            f"tester port"
        ),
        holds=raw_time > 1.0,
    )
    report.check(
        claim="on-chip parallelism (BIST) reduces test cost",
        paper_value="high degree of parallelism required",
        measured=(
            f"BIST at 256 bits cuts test time {raw_time / bist_time:.1f}x "
            f"({raw_time:.2f} s -> {bist_time:.2f} s)"
        ),
        holds=raw_time / bist_time > 2.5,
    )
    report.check(
        claim="waiting dominates once patterns are parallel",
        paper_value="test programs include a lot of waiting",
        measured=(
            f"{bist.waiting_fraction(MARCH_C_MINUS, memory_bits):.0%} of "
            f"the BIST-assisted test is retention waiting"
        ),
        holds=bist.waiting_fraction(MARCH_C_MINUS, memory_bits) > 0.5,
    )
    flow = TestFlow(mean_faults_per_die=1.2)
    lot = flow.run_lot(400, seed=42)
    report.check(
        claim="pre-fuse/fuse/post-fuse flow with redundancy repair",
        paper_value="two wafer-level tests, repair between",
        measured=(
            f"lot of {lot.dies}: pre-repair yield "
            f"{lot.yield_pre_repair:.0%}, post-repair "
            f"{lot.yield_post_repair:.0%} ({lot.repaired} repaired, "
            f"{lot.scrap} scrap)"
        ),
        holds=lot.yield_post_repair > lot.yield_pre_repair,
    )
    relaxed = TestFlow(
        mean_faults_per_die=1.2, waive_retention_only=True
    ).run_lot(400, seed=42)
    report.check(
        claim="relaxed quality targets raise effective yield",
        paper_value="soft problems acceptable for graphics",
        measured=(
            f"waiving retention-only fallout: "
            f"{lot.yield_post_repair:.0%} -> "
            f"{relaxed.yield_post_repair:.0%} ({relaxed.waived} waived)"
        ),
        holds=relaxed.yield_post_repair >= lot.yield_post_repair,
    )
    model = YieldModel()
    report.check(
        claim="redundancy level tunes yield",
        paper_value="different redundancy levels",
        measured=(
            "130 mm^2 module yield: "
            + ", ".join(
                f"{k} spares: "
                f"{YieldModel(memory_spares=k).memory_yield(130.0):.0%}"
                for k in (0, 2, 4, 8)
            )
        ),
        holds=model.repair_gain(130.0) > 1.5,
    )
    memory_tester = TestCostModel(tester=MEMORY_TESTER)
    logic_with_bist = TestCostModel(
        tester=LOGIC_TESTER, bist=BISTController()
    )
    logic_raw = raw.cost_per_die(MARCH_C_MINUS, memory_bits)
    logic_bist = logic_with_bist.cost_per_die(MARCH_C_MINUS, memory_bits)
    report.check(
        claim="BIST lets a logic tester test the memory economically",
        paper_value="customer can do memory testing on his logic tester",
        measured=(
            f"cost/die on a logic tester: {logic_raw:.3f} raw -> "
            f"{logic_bist:.3f} with BIST (multi-site memory tester: "
            f"{memory_tester.cost_per_die(MARCH_C_MINUS, memory_bits):.3f})"
        ),
        holds=logic_bist < 0.5 * logic_raw and logic_bist < 0.10,
        note="the multi-site memory tester stays cheapest per die; BIST "
        "makes the logic-tester business model viable, not dominant",
    )
    return report


def render_table() -> str:
    table = Table(
        title="E9: March C- test seconds/die on 64 Mbit",
        columns=["method", "pattern s", "waiting s", "total s", "cost/die"],
    )
    memory_bits = 64 * MBIT
    methods = [
        ("memory tester (64b, 16 sites)", TestCostModel(tester=MEMORY_TESTER)),
        ("logic tester (16b)", TestCostModel(tester=LOGIC_TESTER)),
        (
            "logic tester + BIST 64b",
            TestCostModel(
                tester=LOGIC_TESTER,
                bist=BISTController(internal_width_bits=64),
            ),
        ),
        (
            "logic tester + BIST 256b",
            TestCostModel(
                tester=LOGIC_TESTER,
                bist=BISTController(internal_width_bits=256),
            ),
        ),
        (
            "logic tester + BIST 512b",
            TestCostModel(
                tester=LOGIC_TESTER,
                bist=BISTController(internal_width_bits=512),
            ),
        ),
    ]
    for label, model in methods:
        pattern = model.march_time_s(MARCH_C_MINUS, memory_bits)
        total = model.total_time_s(MARCH_C_MINUS, memory_bits)
        table.add_row(
            label,
            f"{pattern:.3f}",
            f"{total - pattern:.2f}",
            f"{total:.2f}",
            f"{model.cost_per_die(MARCH_C_MINUS, memory_bits):.3f}",
        )
    return table.render()
