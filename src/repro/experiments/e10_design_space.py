"""E10: design-space exploration and quantization (Sections 3, 5, 7).

Claims: size, interface width and organization "are now available as
design parameters"; suppliers should "quantize the design space into a
set of understandable if slightly sub-optimal solutions"; embedded
solutions dominate the discrete baseline on the axes that matter.
"""

from __future__ import annotations

from repro.core.explorer import DesignSpaceExplorer
from repro.core.quantizer import Quantizer
from repro.core.requirements import ApplicationRequirements
from repro.apps.mpeg2 import MPEG2MemoryBudget
from repro.reporting.report import ExperimentReport
from repro.reporting.tables import Table
from repro.units import MBIT


def mpeg2_requirements() -> ApplicationRequirements:
    """The MPEG2 decoder as a design-space customer."""
    budget = MPEG2MemoryBudget()
    return ApplicationRequirements(
        name="MPEG2 decoder",
        capacity_bits=budget.total_bits,
        sustained_bandwidth_bits_per_s=budget.total_bandwidth_bits_per_s(),
        max_latency_ns=400.0,
        volume_per_year=10_000_000,
        locality=0.6,
    )


def run() -> ExperimentReport:
    report = ExperimentReport(
        experiment_id="E10",
        title="Design-space exploration and quantized solutions",
        paper_section="Sections 3, 5, 7",
    )
    explorer = DesignSpaceExplorer()
    result = explorer.explore(mpeg2_requirements())
    report.check(
        claim="organization parameters span a real design space",
        paper_value="banks, page length, word width, interface, size",
        measured=(
            f"{result.n_explored} configurations evaluated, "
            f"{len(result.feasible)} feasible"
        ),
        holds=result.n_explored > 100 and len(result.feasible) > 10,
    )
    report.check(
        claim="the frontier is a small, understandable set",
        paper_value="quantize into understandable solutions",
        measured=(
            f"Pareto frontier has {len(result.frontier)} of "
            f"{len(result.feasible)} feasible configurations"
        ),
        holds=0 < len(result.frontier) <= 0.25 * len(result.feasible),
    )
    named = Quantizer().named_solutions(result)
    report.check(
        claim="named solution set covers the objectives",
        paper_value="if slightly sub-optimal solutions",
        measured=", ".join(
            f"{solution.name}: {solution.metrics.label}"
            for solution in named[:3]
        )
        + ", ...",
        holds=len(named) >= 6,
    )
    baseline = result.discrete_baseline
    assert baseline is not None
    best_power = result.min_power
    report.check(
        claim="embedded solutions beat the commodity baseline on power",
        paper_value="(Section 1's power argument, applied)",
        measured=(
            f"best embedded {best_power.power_w:.2f} W vs discrete "
            f"{baseline.power_w:.2f} W "
            f"({baseline.power_w / best_power.power_w:.1f}x)"
        ),
        holds=baseline.power_w > best_power.power_w,
    )
    report.check(
        claim="embedded installs far less capacity",
        paper_value="memory sizes can be customized",
        measured=(
            f"embedded {best_power.capacity_mbit:.0f} Mbit vs discrete "
            f"{baseline.capacity_mbit:.0f} Mbit for a "
            f"{mpeg2_requirements().capacity_mbit:.1f}-Mbit need"
        ),
        holds=best_power.capacity_bits <= baseline.capacity_bits,
    )
    return report


def render_table() -> str:
    explorer = DesignSpaceExplorer()
    result = explorer.explore(mpeg2_requirements())
    named = Quantizer().named_solutions(result)
    table = Table(
        title="E10: quantized solution set for the MPEG2 decoder",
        columns=["solution", "config", "power", "area",
                 "sustained BW", "latency", "cost"],
    )
    for solution in named:
        metrics = solution.metrics
        table.add_row(
            solution.name,
            metrics.label,
            f"{metrics.power_w * 1e3:.0f} mW",
            f"{metrics.area_mm2:.1f} mm^2",
            f"{metrics.sustained_bandwidth_bits_per_s / 8e9:.2f} GB/s",
            f"{metrics.mean_latency_ns:.0f} ns",
            f"{metrics.unit_cost:.2f}",
        )
    baseline = result.discrete_baseline
    if baseline is not None:
        table.add_row(
            "discrete baseline",
            baseline.label,
            f"{baseline.power_w * 1e3:.0f} mW",
            "-",
            f"{baseline.sustained_bandwidth_bits_per_s / 8e9:.2f} GB/s",
            f"{baseline.mean_latency_ns:.0f} ns",
            f"{baseline.unit_cost:.2f}",
        )
    return table.render()
