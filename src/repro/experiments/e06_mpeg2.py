"""E6: the MPEG2 video decoder case study (Section 4.1).

Claims: decoders tuned to 16 Mbit; PAL frame 4.75 Mbit / NTSC 3.96 Mbit
in 4:2:0; about 3 Mbit saved in the output buffer at the expense of
doubling the decoding-pipeline throughput and the motion-compensation
bandwidth; three 4-Mbit memories insufficient — and if they existed,
they could not deliver the bandwidth.
"""

from __future__ import annotations

from repro.apps.mpeg2 import DecoderVariant, MPEG2MemoryBudget
from repro.apps.video import NTSC, PAL
from repro.dram.catalog import COMMODITY_PARTS
from repro.reporting.report import ExperimentReport
from repro.reporting.tables import Table
from repro.units import MBIT


def run() -> ExperimentReport:
    report = ExperimentReport(
        experiment_id="E6",
        title="MPEG2 decoder memory budget and bandwidth",
        paper_section="Section 4.1",
    )
    report.check(
        claim="PAL 4:2:0 frame size",
        paper_value="4.75 Mbit",
        measured=f"{PAL.frame_mbit:.3f} Mbit",
        holds=abs(PAL.frame_mbit - 4.75) < 0.01,
    )
    report.check(
        claim="NTSC 4:2:0 frame size",
        paper_value="3.96 Mbit",
        measured=f"{NTSC.frame_mbit:.3f} Mbit",
        holds=abs(NTSC.frame_mbit - 3.96) < 0.01,
    )
    standard = MPEG2MemoryBudget()
    reduced = MPEG2MemoryBudget(variant=DecoderVariant.REDUCED_OUTPUT)
    report.check(
        claim="decoder budget fits the 16-Mbit commodity size",
        paper_value="16 Mbit sufficient (standard was bent for it)",
        measured=f"{standard.total_mbit:.2f} Mbit",
        holds=standard.fits_16_mbit and standard.total_mbit > 15,
    )
    report.check(
        claim="about 3 Mbit saved in the output buffer",
        paper_value="~3 Mbit",
        measured=f"{standard.total_mbit - reduced.total_mbit:.2f} Mbit",
        holds=abs((standard.total_bits - reduced.total_bits) / MBIT - 3.0)
        < 0.3,
    )
    report.check(
        claim="saving costs 2x decoding-pipeline throughput",
        paper_value="2x",
        measured=f"{reduced.pipeline_throughput_factor():.1f}x",
        holds=reduced.pipeline_throughput_factor() == 2.0,
    )
    mc_ratio = (
        reduced.motion_compensation_read_bandwidth()
        / standard.motion_compensation_read_bandwidth()
    )
    report.check(
        claim="saving doubles the motion-compensation bandwidth",
        paper_value="2x (for the B-picture share)",
        measured=f"{mc_ratio:.2f}x total MC (B-picture share exactly 2x)",
        holds=1.7 <= mc_ratio <= 2.0,
    )
    report.check(
        claim="three 4-Mbit memories are insufficient",
        paper_value="insufficient",
        measured=(
            f"12 Mbit < {standard.total_mbit:.2f} Mbit (standard) and "
            f"< {reduced.total_mbit:.2f} Mbit (reduced)"
        ),
        holds=not standard.fits_bits(12 * MBIT)
        and not reduced.fits_bits(12 * MBIT),
    )
    # Bandwidth angle: a single 16-bit commodity part cannot sustain the
    # reduced variant's traffic at realistic efficiency.
    single_x16_peak = 16 * 100e6
    needed = reduced.total_bandwidth_bits_per_s()
    report.check(
        claim="small commodity memories could not provide the bandwidth",
        paper_value="would not be able to provide minimum bandwidth",
        measured=(
            f"reduced variant needs {needed / 1e6:.0f} Mbit/s; one x16 "
            f"part peaks at {single_x16_peak / 1e6:.0f} Mbit/s "
            f"({needed / single_x16_peak:.0%} utilization required)"
        ),
        holds=needed > 0.5 * single_x16_peak,
        note="sustained efficiency of ~60% makes a single part "
        "infeasible; see E5",
    )
    return report


def render_table() -> str:
    table = Table(
        title="E6: MPEG2 decoder memory blocks (PAL, 4:2:0)",
        columns=["block", "standard", "reduced-output"],
    )
    standard = MPEG2MemoryBudget()
    reduced = MPEG2MemoryBudget(variant=DecoderVariant.REDUCED_OUTPUT)
    rows = [
        ("input (VBV) buffer", "input_buffer_bits"),
        ("reference frames (2x)", "reference_frames_bits"),
        ("output buffer", "output_buffer_bits"),
        ("total", "total_bits"),
    ]
    for label, attribute in rows:
        table.add_row(
            label,
            f"{getattr(standard, attribute) / MBIT:.2f} Mbit",
            f"{getattr(reduced, attribute) / MBIT:.2f} Mbit",
        )
    table.add_row(
        "total bandwidth",
        f"{standard.total_bandwidth_bits_per_s() / 1e6:.0f} Mbit/s",
        f"{reduced.total_bandwidth_bits_per_s() / 1e6:.0f} Mbit/s",
    )
    table.add_row(
        "pipeline throughput",
        f"{standard.pipeline_throughput_factor():.0f}x",
        f"{reduced.pipeline_throughput_factor():.0f}x",
    )
    return table.render()
