"""E7: the processor-memory performance gap and IRAM (Section 4.2).

Claims: CPU +60 %/yr vs. DRAM core +10 %/yr; DRAM access times improve
only ~10 %/yr while peak device bandwidth grew two orders of magnitude;
merging a microprocessor with DRAM reduces latency 5-10x, increases
bandwidth 50-100x, and improves energy efficiency 2-4x.
"""

from __future__ import annotations

from repro.apps.iram import DESKTOP_HIERARCHY, IRAMModel
from repro.apps.trends import (
    DRAM_BANDWIDTH_TREND,
    DRAM_CORE_TREND,
    PROCESSOR_TREND,
    gap_growth_per_year,
    performance_gap,
)
from repro.reporting.report import ExperimentReport
from repro.reporting.tables import Table


def run() -> ExperimentReport:
    report = ExperimentReport(
        experiment_id="E7",
        title="Processor-memory gap and the IRAM merge",
        paper_section="Section 4.2",
    )
    report.check(
        claim="CPU +60%/yr vs DRAM core +10%/yr",
        paper_value="60% vs 10%",
        measured=(
            f"{PROCESSOR_TREND.annual_growth:.0%} vs "
            f"{DRAM_CORE_TREND.annual_growth:.0%}, gap x"
            f"{gap_growth_per_year():.2f}/yr"
        ),
        holds=abs(gap_growth_per_year() - 1.4545) < 0.01,
    )
    report.check(
        claim="peak device bandwidth grew two orders of magnitude",
        paper_value="100x over ~a decade",
        measured=(
            f"{DRAM_BANDWIDTH_TREND.ratio(1998):.0f}x from "
            f"{DRAM_BANDWIDTH_TREND.base_year} to 1998"
        ),
        holds=DRAM_BANDWIDTH_TREND.ratio(1998) >= 100,
    )
    iram = IRAMModel()
    report.check(
        claim="IRAM factors within the cited ranges",
        paper_value="latency /5-10, bandwidth x50-100, energy x2-4",
        measured=(
            f"latency /{iram.latency_factor:.1f}, bandwidth x"
            f"{iram.bandwidth_factor:.0f}, energy x{iram.energy_factor:.1f}"
        ),
        holds=iram.within_paper_ranges(),
    )
    speedup = iram.amat_speedup(DESKTOP_HIERARCHY)
    report.check(
        claim="end-to-end speedup diluted by cache hits",
        paper_value="(implied: raw factors are memory-side)",
        measured=(
            f"AMAT speedup {speedup:.2f}x on a desktop hierarchy with "
            f"{DESKTOP_HIERARCHY.memory_reference_fraction():.1%} of "
            f"references reaching memory"
        ),
        holds=1.0 < speedup < iram.latency_factor,
    )
    energy = iram.energy_improvement(DESKTOP_HIERARCHY)
    report.check(
        claim="energy efficiency improves",
        paper_value="2-4x at the memory; diluted per-reference",
        measured=f"{energy:.2f}x per-reference energy improvement",
        holds=energy > 1.0,
    )
    return report


def render_table() -> str:
    table = Table(
        title="E7: processor/DRAM performance (1980 = 1.0)",
        columns=["year", "CPU", "DRAM core", "gap"],
    )
    for year in range(1980, 2001, 4):
        table.add_row(
            year,
            f"{PROCESSOR_TREND.value(year):.0f}",
            f"{DRAM_CORE_TREND.value(year):.1f}",
            f"{performance_gap(year):.0f}x",
        )
    return table.render()
