"""E2: fill frequency of embedded vs. discrete memories (Section 1).

Claims: "Embedded DRAMs can achieve much higher fill frequencies than
discrete SDRAMs.  This is because the on-chip interface can be up to 512
bits wide, whereas discrete SDRAMs are limited to 4-16 bits.  ... it is
possible to make a 4-Mbit edram with a 256-bit interface.  In contrast,
it would take 16 discrete 4-Mbit chips (organized as 256K x 16) to
achieve the same width."
"""

from __future__ import annotations

from repro.dram.catalog import smallest_system
from repro.dram.edram import EDRAMMacro
from repro.reporting.report import ExperimentReport
from repro.reporting.tables import Table
from repro.units import MBIT, fill_frequency


def run() -> ExperimentReport:
    report = ExperimentReport(
        experiment_id="E2",
        title="Fill frequency: 512-bit eDRAM vs. 16-bit discrete",
        paper_section="Section 1 (footnote 2)",
    )
    # The paper's concrete pair: a 4-Mbit eDRAM with a 256-bit interface
    # vs the 64-Mbit discrete system that delivers the same bus width.
    macro = EDRAMMacro.build(size_bits=4 * MBIT, width=256)
    discrete = smallest_system(4 * MBIT, 256)
    macro_ff = macro.fill_frequency_hz
    discrete_ff = fill_frequency(
        discrete.peak_bandwidth_bits_per_s, discrete.total_bits
    )
    report.check(
        claim="4-Mbit eDRAM with 256-bit interface is constructible",
        paper_value="4 Mbit x 256 bit",
        measured=(
            f"{macro.size_bits / MBIT:.0f} Mbit x {macro.width} bit, "
            f"{macro.peak_bandwidth_bits_per_s / 8e9:.2f} GB/s"
        ),
        holds=True,
    )
    report.check(
        claim="matching discrete width needs 16 chips / 64 Mbit",
        paper_value="16 chips, 64 Mbit granularity",
        measured=(
            f"{discrete.n_chips} chips ({discrete.part.name}), "
            f"{discrete.total_bits / MBIT:.0f} Mbit installed"
        ),
        holds=discrete.n_chips == 16
        and discrete.total_bits == 64 * MBIT,
    )
    report.check(
        claim="eDRAM fill frequency much higher",
        paper_value="much higher (16x from granularity alone)",
        measured=(
            f"eDRAM {macro_ff:.0f}/s vs discrete {discrete_ff:.0f}/s "
            f"({macro_ff / discrete_ff:.1f}x)"
        ),
        holds=macro_ff / discrete_ff > 10,
    )
    widest = EDRAMMacro.build(size_bits=4 * MBIT, width=512)
    report.check(
        claim="on-chip interface up to 512 bits wide",
        paper_value="up to 512 bits",
        measured=f"512-bit macro: {widest.fill_frequency_hz:.0f} fills/s",
        holds=widest.fill_frequency_hz > macro_ff,
    )
    return report


def render_table() -> str:
    """Fill frequency across sizes and widths."""
    table = Table(
        title="E2: fill frequency (complete fills per second)",
        columns=["memory", "size", "width", "peak BW", "fill freq"],
    )
    for size_mbit, width in [(4, 256), (4, 512), (16, 256), (64, 512)]:
        macro = EDRAMMacro.build(size_bits=size_mbit * MBIT, width=width)
        table.add_row(
            "eDRAM",
            f"{size_mbit} Mbit",
            width,
            f"{macro.peak_bandwidth_bits_per_s / 8e9:.2f} GB/s",
            f"{macro.fill_frequency_hz:.0f}/s",
        )
    discrete = smallest_system(4 * MBIT, 256)
    table.add_row(
        f"discrete {discrete.n_chips}x {discrete.part.name}",
        f"{discrete.total_bits / MBIT:.0f} Mbit",
        discrete.total_width_bits,
        f"{discrete.peak_bandwidth_bits_per_s / 8e9:.2f} GB/s",
        f"{fill_frequency(discrete.peak_bandwidth_bits_per_s, discrete.total_bits):.0f}/s",
    )
    return table.render()
