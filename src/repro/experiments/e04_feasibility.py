"""E4: the quarter-micron feasibility frontier (Section 1).

Claim: "In quarter-micron technology, chips with up to 128 Mbit of DRAM
and 500 kgates of logic, or 64 Mbit of DRAM and 1 Mgates of logic are
feasible."
"""

from __future__ import annotations

from repro.core.tradeoffs import (
    LogicMemoryTrade,
    QUARTER_MICRON_DIE_BUDGET_MM2,
)
from repro.reporting.report import ExperimentReport
from repro.reporting.tables import Table
from repro.units import MBIT


def run() -> ExperimentReport:
    report = ExperimentReport(
        experiment_id="E4",
        title="Quarter-micron logic/memory feasibility frontier",
        paper_section="Section 1",
    )
    trade = LogicMemoryTrade(die_budget_mm2=QUARTER_MICRON_DIE_BUDGET_MM2)
    at_500k = trade.max_memory_for_logic(500e3)
    at_1m = trade.max_memory_for_logic(1e6)
    report.check(
        claim="128 Mbit + 500 kgates feasible on one die",
        paper_value="128 Mbit",
        measured=f"{at_500k / MBIT:.0f} Mbit beside 500 kgates",
        holds=abs(at_500k - 128 * MBIT) <= 4 * MBIT,
    )
    report.check(
        claim="64 Mbit + 1 Mgates feasible on the same die",
        paper_value="64 Mbit",
        measured=f"{at_1m / MBIT:.0f} Mbit beside 1 Mgates",
        holds=abs(at_1m - 64 * MBIT) <= 3 * MBIT,
    )
    report.check(
        claim="logic trades for memory at a fixed exchange rate",
        paper_value="500 kgates <-> 64 Mbit",
        measured=(
            f"{trade.exchange_rate_gates_per_mbit():.0f} gates/Mbit "
            f"marginal rate"
        ),
        holds=6000 < trade.exchange_rate_gates_per_mbit() < 11000,
    )
    return report


def render_table() -> str:
    trade = LogicMemoryTrade(die_budget_mm2=QUARTER_MICRON_DIE_BUDGET_MM2)
    table = Table(
        title=(
            f"E4: feasibility frontier on a "
            f"{QUARTER_MICRON_DIE_BUDGET_MM2:.0f} mm^2 die (0.25 um)"
        ),
        columns=["logic gates", "max memory"],
    )
    for gates in [100e3, 250e3, 500e3, 750e3, 1e6, 1.25e6, 1.5e6]:
        point = trade.max_memory_for_logic(gates)
        table.add_row(f"{gates / 1e3:.0f}k", f"{point / MBIT:.0f} Mbit")
    return table.render()
