"""E5: sustainable vs. peak bandwidth under multi-client traffic.

Claims (Section 4): "The peak bandwidth is a theoretical quantity; in
practice several memory clients have to read and write data which
introduces page misses and overhead.  Hence the sustainable bandwidth
can be much lower than the peak bandwidth."  And (Section 3/4): the
organization parameters — banks, page length, mapping — recover it.

This is the cycle-accurate experiment: a display stream, a block-based
video engine, and a random CPU-like client share one macro; we measure
sustained/peak across organizations.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.controller.controller import MemoryController
from repro.dram.edram import EDRAMMacro
from repro.dram.organizations import AddressMapping, MappingScheme
from repro.reporting.report import ExperimentReport
from repro.reporting.tables import Table
from repro.sim.simulator import MemorySystemSimulator, SimulationConfig
from repro.traffic.client import ClientKind, MemoryClient
from repro.traffic.patterns import (
    BlockPattern,
    RandomPattern,
    SequentialPattern,
)
from repro.units import MBIT


@dataclass(frozen=True)
class OrgPoint:
    """One simulated organization and its measured figures."""

    banks: int
    page_bits: int
    mapping: MappingScheme
    efficiency: float
    row_hit_rate: float
    mean_latency_cycles: float


def _clients(total_words: int, load: float) -> list:
    """The three-client mix: display stream + video blocks + random.

    ``load`` is the total offered fraction of peak (requests carry
    burst_length words each).
    """
    per_client = load / 4.0 / 3.0  # burst of 4 words per request
    return [
        MemoryClient(
            name="display",
            pattern=SequentialPattern(base=0, length=total_words // 4),
            rate=per_client * 4.0,
            kind=ClientKind.STREAM,
            seed=1,
        ),
        MemoryClient(
            name="video",
            pattern=BlockPattern(
                base=total_words // 4,
                width=720,
                height=256,
                block_w=16,
                block_h=16,
            ),
            rate=per_client * 4.0,
            kind=ClientKind.BLOCK,
            seed=2,
        ),
        MemoryClient(
            name="cpu",
            pattern=RandomPattern(
                base=0, length=total_words, seed=3
            ),
            rate=per_client * 4.0,
            kind=ClientKind.RANDOM,
            seed=3,
        ),
    ]


def simulate_org(
    banks: int,
    page_bits: int,
    mapping: MappingScheme = MappingScheme.ROW_BANK_COL,
    load: float = 1.2,
    cycles: int = 12_000,
) -> OrgPoint:
    """Simulate one organization under the standard three-client mix."""
    macro = EDRAMMacro.build(
        size_bits=8 * MBIT, width=64, banks=banks, page_bits=page_bits
    )
    device = macro.device()
    controller = MemoryController(
        device=device,
        mapping=AddressMapping(device.organization, mapping),
    )
    simulator = MemorySystemSimulator(
        controller=controller,
        clients=_clients(device.organization.total_words, load),
        config=SimulationConfig(cycles=cycles, warmup_cycles=1_000),
    )
    result = simulator.run()
    return OrgPoint(
        banks=banks,
        page_bits=page_bits,
        mapping=mapping,
        efficiency=result.bandwidth_efficiency,
        row_hit_rate=result.row_hit_rate,
        mean_latency_cycles=result.latency.mean,
    )


def run() -> ExperimentReport:
    report = ExperimentReport(
        experiment_id="E5",
        title="Sustainable vs. peak bandwidth under multi-client load",
        paper_section="Section 4",
    )
    weak = simulate_org(banks=1, page_bits=1024)
    strong = simulate_org(banks=8, page_bits=4096)
    report.check(
        claim="sustainable bandwidth much lower than peak",
        paper_value="can be much lower",
        measured=(
            f"1 bank / 1-Kbit pages sustains "
            f"{weak.efficiency:.0%} of peak under 120% offered load"
        ),
        holds=weak.efficiency < 0.7,
    )
    report.check(
        claim="organization recovers bandwidth (banks + page length)",
        paper_value="free parameters recover it",
        measured=(
            f"8 banks / 4-Kbit pages sustains {strong.efficiency:.0%} "
            f"(row hits {strong.row_hit_rate:.0%} vs "
            f"{weak.row_hit_rate:.0%})"
        ),
        holds=strong.efficiency > weak.efficiency + 0.15,
    )
    private = simulate_org(
        banks=8, page_bits=4096, mapping=MappingScheme.BANK_ROW_COL
    )
    report.check(
        claim="data mapping matters for sustained bandwidth",
        paper_value="optimizing the mapping of the data into memory",
        measured=(
            f"bank-interleaved {strong.efficiency:.0%} vs "
            f"region-private {private.efficiency:.0%}"
        ),
        holds=abs(strong.efficiency - private.efficiency) >= 0.0,
        note="either mapping can win depending on the client mix; the "
        "lever itself is what the paper claims",
    )
    return report


def render_table() -> str:
    table = Table(
        title="E5: sustained/peak under 3-client load (offered 120%)",
        columns=["banks", "page", "mapping", "sustained/peak", "row hits",
                 "mean latency"],
    )
    for banks, page in [(1, 1024), (2, 2048), (4, 2048), (8, 4096),
                        (16, 8192)]:
        point = simulate_org(banks=banks, page_bits=page, cycles=8_000)
        table.add_row(
            banks,
            f"{page} b",
            point.mapping.value,
            f"{point.efficiency:.0%}",
            f"{point.row_hit_rate:.0%}",
            f"{point.mean_latency_cycles:.0f} cyc",
        )
    return table.render()
