"""E3: commodity granularity overhead vs. eDRAM size customization.

Claims (Sections 1 and 4): composing a discrete system to a width
requirement over-provisions capacity ("the application may only call
for, say, 8 Mbit"); eDRAM "enables implementations with minimum
overhead" because sizes snap to 256-Kbit building blocks.
"""

from __future__ import annotations

from repro.apps.video import NTSC, PAL
from repro.core.quantizer import Quantizer
from repro.dram.catalog import smallest_system
from repro.reporting.report import ExperimentReport
from repro.reporting.tables import Table
from repro.units import MBIT


def run() -> ExperimentReport:
    report = ExperimentReport(
        experiment_id="E3",
        title="Granularity: commodity over-provisioning vs. eDRAM",
        paper_section="Sections 1 and 4.1",
    )
    quantizer = Quantizer()
    # The 8-Mbit application behind a 256-bit bus.
    discrete = smallest_system(8 * MBIT, 256)
    report.check(
        claim="8-Mbit need behind a 256-bit bus installs 64 Mbit",
        paper_value="64 Mbit (8x overhead)",
        measured=(
            f"{discrete.total_bits / MBIT:.0f} Mbit installed, "
            f"{discrete.overhead_fraction:.0%} overhead"
        ),
        holds=discrete.total_bits == 64 * MBIT,
    )
    snapped = quantizer.snap_size(8 * MBIT)
    report.check(
        claim="eDRAM snaps the same need to block granularity",
        paper_value="minimum overhead",
        measured=(
            f"{snapped / MBIT:.2f} Mbit "
            f"({quantizer.quantization_overhead(8 * MBIT):.1%} overhead)"
        ),
        holds=quantizer.quantization_overhead(8 * MBIT) < 0.05,
    )
    # Frame stores: commodity sizes are not frame multiples.
    for frame in (PAL, NTSC):
        over = quantizer.quantization_overhead(frame.frame_bits)
        commodity_over = (4 * MBIT - frame.frame_bits % (4 * MBIT)) / (
            frame.frame_bits
        )
        report.check(
            claim=(
                f"{frame.standard.value} frame store "
                f"({frame.frame_mbit:.2f} Mbit) has minimal eDRAM overhead"
            ),
            paper_value="commodity sizes not a multiple of frame size",
            measured=(
                f"eDRAM overhead {over:.1%} vs next-4-Mbit-chip "
                f"overhead {commodity_over:.1%}"
            ),
            holds=over < 0.06,
        )
    return report


def render_table() -> str:
    table = Table(
        title="E3: installed capacity for capacity/width requirements",
        columns=[
            "requirement",
            "width",
            "discrete install",
            "overhead",
            "eDRAM install",
            "overhead",
        ],
    )
    quantizer = Quantizer()
    cases = [
        (8 * MBIT, 256),
        (PAL.frame_bits, 64),
        (2 * PAL.frame_bits, 128),
        (16 * MBIT, 512),
        (40 * MBIT, 256),
    ]
    for bits, width in cases:
        discrete = smallest_system(bits, width)
        snapped = quantizer.snap_size(bits)
        table.add_row(
            f"{bits / MBIT:.2f} Mbit",
            width,
            f"{discrete.total_bits / MBIT:.0f} Mbit",
            f"{discrete.overhead_fraction:.0%}",
            f"{snapped / MBIT:.2f} Mbit",
            f"{(snapped - bits) / bits:.1%}",
        )
    return table.render()
