"""The reproduction experiments: one module per paper claim, E1-E10.

The paper has no numbered tables or figures; its evaluation is a set of
quantitative claims in prose (see DESIGN.md Section 3 for the full
index).  Each module here runs one claim end to end on the library and
returns an :class:`~repro.reporting.report.ExperimentReport` with
paper-value-vs-measured rows.  The pytest-benchmark harness in
``benchmarks/`` wraps these, and ``repro.experiments.run_all`` powers
EXPERIMENTS.md.
"""

from repro.experiments import (
    e01_interface_power,
    e02_fill_frequency,
    e03_granularity,
    e04_feasibility,
    e05_sustainable_bw,
    e06_mpeg2,
    e07_gap_iram,
    e08_siemens_concept,
    e09_test_cost,
    e10_design_space,
)

ALL_EXPERIMENTS = (
    e01_interface_power,
    e02_fill_frequency,
    e03_granularity,
    e04_feasibility,
    e05_sustainable_bw,
    e06_mpeg2,
    e07_gap_iram,
    e08_siemens_concept,
    e09_test_cost,
    e10_design_space,
)


def run_all():
    """Run every experiment and return the reports in order."""
    return [module.run() for module in ALL_EXPERIMENTS]
