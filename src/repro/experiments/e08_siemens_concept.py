"""E8: the Siemens flexible eDRAM concept (Section 5).

Claims: 256-Kbit / 1-Mbit building blocks; modules from 8-16 Mbit at
about 1 Mbit/mm^2; up to 128 Mbit; 16-512-bit interfaces; flexible banks
and page length; cycle times better than 7 ns (>143 MHz); about
9 Gbyte/s per module; a small synthesizable BIST controller.
"""

from __future__ import annotations

from repro.dft.bist import BISTController
from repro.dram.edram import EDRAMMacro, SIEMENS_CONCEPT
from repro.errors import ConfigurationError
from repro.reporting.report import ExperimentReport
from repro.reporting.tables import Table
from repro.units import KBIT, MBIT


def run() -> ExperimentReport:
    report = ExperimentReport(
        experiment_id="E8",
        title="The flexible eDRAM concept's headline figures",
        paper_section="Section 5",
    )
    report.check(
        claim="two building blocks: 256 Kbit and 1 Mbit",
        paper_value="256 Kbit, 1 Mbit",
        measured=", ".join(
            f"{size // KBIT} Kbit" for size in SIEMENS_CONCEPT.block_sizes_bits
        ),
        holds=set(SIEMENS_CONCEPT.block_sizes_bits) == {256 * KBIT, MBIT},
    )
    efficiencies = {
        mbits: EDRAMMacro.build(
            size_bits=mbits * MBIT, width=256
        ).area_efficiency_mbit_per_mm2()
        for mbits in (8, 16, 64, 128)
    }
    report.check(
        claim="modules from 8-16 Mbit at about 1 Mbit/mm^2",
        paper_value="~1 Mbit/mm^2",
        measured=", ".join(
            f"{m} Mbit: {e:.2f}" for m, e in efficiencies.items()
        ),
        holds=all(0.85 <= e <= 1.1 for e in efficiencies.values()),
    )
    report.check(
        claim="embedded memory sizes up to at least 128 Mbit",
        paper_value="<= 128 Mbit",
        measured=f"{SIEMENS_CONCEPT.max_module_bits / MBIT:.0f} Mbit max",
        holds=SIEMENS_CONCEPT.max_module_bits == 128 * MBIT,
    )
    widths_ok = True
    for width in (16, 32, 64, 128, 256, 512):
        try:
            EDRAMMacro.build(size_bits=16 * MBIT, width=width)
        except ConfigurationError:
            widths_ok = False
    report.check(
        claim="interface widths from 16 to 512 bits",
        paper_value="16-512",
        measured="all powers of two in [16, 512] constructible",
        holds=widths_ok,
    )
    banks_pages = True
    for banks in (1, 2, 4, 8, 16):
        for page in SIEMENS_CONCEPT.allowed_page_bits:
            try:
                EDRAMMacro.build(
                    size_bits=16 * MBIT, width=16, banks=banks,
                    page_bits=page,
                )
            except ConfigurationError:
                banks_pages = False
    report.check(
        claim="flexibility in banks and page length",
        paper_value="flexible",
        measured=(
            f"banks 1-16 x pages {SIEMENS_CONCEPT.allowed_page_bits} all "
            f"constructible at 16 Mbit"
        ),
        holds=banks_pages,
    )
    report.check(
        claim="cycle time better than 7 ns (143 MHz)",
        paper_value="<7 ns / >143 MHz",
        measured=(
            f"{SIEMENS_CONCEPT.cycle_time_ns:.0f} ns, "
            f"{SIEMENS_CONCEPT.max_clock_hz / 1e6:.0f} MHz"
        ),
        holds=SIEMENS_CONCEPT.max_clock_hz >= 142.8e6,
    )
    bandwidth = SIEMENS_CONCEPT.max_module_bandwidth_bits_per_s / 8e9
    report.check(
        claim="maximum bandwidth per module about 9 GB/s",
        paper_value="~9 Gbyte/s",
        measured=f"{bandwidth:.2f} GB/s (512 bit x 143 MHz)",
        holds=8.5 <= bandwidth <= 9.5,
    )
    bist = BISTController(internal_width_bits=256)
    report.check(
        claim="small, synthesizable BIST controller",
        paper_value="small",
        measured=f"{bist.gate_count / 1e3:.1f} kgates at 256-bit width",
        holds=bist.gate_count < 30e3,
    )
    return report


def render_table() -> str:
    table = Table(
        title="E8: constructible module examples (Siemens concept)",
        columns=["size", "width", "banks", "page", "peak BW",
                 "area", "Mbit/mm^2"],
    )
    examples = [
        (2 * MBIT, 32, 2, 2048),
        (19 * 256 * KBIT, 64, 4, 2048),  # PAL-frame-sized: 4.75 Mbit
        (8 * MBIT, 128, 4, 2048),
        (16 * MBIT, 256, 8, 4096),
        (64 * MBIT, 512, 16, 8192),
        (128 * MBIT, 512, 16, 8192),
    ]
    for size, width, banks, page in examples:
        macro = EDRAMMacro.build(
            size_bits=size, width=width, banks=banks, page_bits=page
        )
        table.add_row(
            f"{size / MBIT:.2f} Mbit",
            width,
            banks,
            f"{page} b",
            f"{macro.peak_bandwidth_bits_per_s / 8e9:.2f} GB/s",
            f"{macro.area_mm2():.1f} mm^2",
            f"{macro.area_efficiency_mbit_per_mm2():.2f}",
        )
    return table.render()
