"""Per-chip and per-system economics.

Composes wafer, yield, test and packaging costs into a unit cost, amortizes
NRE over product volume, and compares an embedded (single merged die)
solution against a discrete one (logic die + N commodity DRAM packages).
This is the quantitative backing for Section 2's rules of thumb: "the
product volume and product lifetime are usually high" and "either the
memory content is high enough to justify the higher DRAM process costs, or
eDRAM is required for bandwidth or other reasons".
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.errors import ConfigurationError
from repro.cost.wafer import WaferSpec, die_cost_before_test
from repro.cost.yield_model import YieldModel
from repro.cost.packaging import PackageCostModel


@dataclass(frozen=True)
class CostBreakdown:
    """Unit-cost breakdown for one packaged chip.

    Attributes:
        die: Cost of the good die (wafer cost / good dies).
        test: Test cost per good die.
        package: Package cost.
        nre_share: NRE amortized over the production volume.
    """

    die: float
    test: float
    package: float
    nre_share: float

    @property
    def total(self) -> float:
        return self.die + self.test + self.package + self.nre_share


@dataclass(frozen=True)
class ChipEconomics:
    """Unit economics of one chip design.

    Attributes:
        wafer: Wafer spec (process cost multiplier included).
        yield_model: Defect/repair yield model.
        package_model: Package cost model.
        nre: Non-recurring engineering cost (masks, design, quali).
        test_cost_per_unit: Per-die test cost; use
            :mod:`repro.dft.test_cost` to derive it from test time.
    """

    wafer: WaferSpec = WaferSpec()
    yield_model: YieldModel = field(default_factory=YieldModel)
    package_model: PackageCostModel = PackageCostModel()
    nre: float = 2.0e6
    test_cost_per_unit: float = 0.5

    def __post_init__(self) -> None:
        if self.nre < 0:
            raise ConfigurationError(f"NRE must be >= 0, got {self.nre}")
        if self.test_cost_per_unit < 0:
            raise ConfigurationError("test cost must be >= 0")

    def unit_cost(
        self,
        memory_area_mm2: float,
        logic_area_mm2: float,
        pins: int,
        power_w: float,
        volume: int,
    ) -> CostBreakdown:
        """Unit cost of the packaged chip at a given production volume."""
        if volume <= 0:
            raise ConfigurationError(f"volume must be positive, got {volume}")
        die_area = memory_area_mm2 + logic_area_mm2
        y = self.yield_model.die_yield(memory_area_mm2, logic_area_mm2)
        die = die_cost_before_test(self.wafer, die_area, y)
        return CostBreakdown(
            die=die,
            test=self.test_cost_per_unit,
            package=self.package_model.cost(pins, power_w),
            nre_share=self.nre / volume,
        )


@dataclass(frozen=True)
class SystemCostModel:
    """Embedded-vs-discrete system cost comparison.

    The discrete system is a logic ASIC plus ``n_dram_chips`` commodity
    DRAM packages; the embedded system is one merged die.  Commodity DRAM
    is priced per Mbit (it is a commodity), while the embedded memory is
    carried at silicon cost — capturing the paper's observation that "the
    memory component goes from a commodity to a highly specialized part
    which may command premium pricing".

    Attributes:
        embedded: Economics of the merged chip.
        discrete_logic: Economics of the logic-only ASIC.
        commodity_price_per_mbit: Street price per Mbit of commodity DRAM.
        board_cost_per_chip: Board area/assembly cost attributed to each
            extra package.
    """

    embedded: ChipEconomics
    discrete_logic: ChipEconomics
    commodity_price_per_mbit: float = 0.25
    board_cost_per_chip: float = 0.35

    def embedded_unit_cost(
        self,
        memory_area_mm2: float,
        logic_area_mm2: float,
        pins: int,
        power_w: float,
        volume: int,
    ) -> float:
        """Total unit cost of the embedded solution."""
        return self.embedded.unit_cost(
            memory_area_mm2, logic_area_mm2, pins, power_w, volume
        ).total

    def discrete_unit_cost(
        self,
        logic_area_mm2: float,
        logic_pins: int,
        logic_power_w: float,
        memory_mbit: float,
        n_dram_chips: int,
        volume: int,
    ) -> float:
        """Total unit cost of the discrete solution.

        Commodity memory is bought at market price for the *granularity-
        rounded* capacity (``memory_mbit`` should already include any
        over-provisioning forced by commodity sizes).
        """
        if memory_mbit < 0:
            raise ConfigurationError("memory size must be >= 0")
        if n_dram_chips < 0:
            raise ConfigurationError("chip count must be >= 0")
        logic = self.discrete_logic.unit_cost(
            0.0, logic_area_mm2, logic_pins, logic_power_w, volume
        ).total
        memory = memory_mbit * self.commodity_price_per_mbit
        board = self.board_cost_per_chip * (1 + n_dram_chips)
        return logic + memory + board

    def crossover_volume(
        self,
        memory_area_mm2: float,
        logic_area_mm2: float,
        embedded_pins: int,
        embedded_power_w: float,
        discrete_logic_pins: int,
        discrete_logic_power_w: float,
        memory_mbit: float,
        n_dram_chips: int,
        max_volume: int = 100_000_000,
    ) -> int | None:
        """Smallest volume at which the embedded solution is cheaper.

        Scans volume decades (the embedded NRE is higher, so it needs
        volume to amortize).  Returns ``None`` if the embedded solution
        never wins up to ``max_volume``.
        """
        volume = 1000
        while volume <= max_volume:
            emb = self.embedded_unit_cost(
                memory_area_mm2,
                logic_area_mm2,
                embedded_pins,
                embedded_power_w,
                volume,
            )
            dis = self.discrete_unit_cost(
                logic_area_mm2,
                discrete_logic_pins,
                discrete_logic_power_w,
                memory_mbit,
                n_dram_chips,
                volume,
            )
            if emb <= dis:
                return volume
            volume *= 2
        return None
