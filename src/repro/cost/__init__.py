"""Cost and yield models for embedded DRAM economics.

The paper's advisability rules (Section 2) and testing discussion
(Section 6) are ultimately economic: eDRAM trades higher wafer cost (extra
mask steps), specialized testing, and second-sourcing risk against saved
packages, pins, board space and power.  This package provides the cost side
of those trades: wafer cost and dies-per-wafer, defect-limited yield with
and without redundancy repair, packaging cost as a function of pin count,
and per-unit economics including NRE amortization over product volume.
"""

from repro.cost.wafer import WaferSpec, dies_per_wafer, die_cost_before_test
from repro.cost.yield_model import (
    YieldModel,
    poisson_yield,
    negative_binomial_yield,
    redundancy_repair_yield,
)
from repro.cost.packaging import PackageCostModel
from repro.cost.economics import ChipEconomics, CostBreakdown, SystemCostModel
from repro.cost.nre import (
    EDRAM_CONCEPT_NRE,
    EDRAM_FIRST_PRODUCT_NRE,
    LOGIC_ASIC_NRE,
    NREBreakdown,
)

__all__ = [
    "WaferSpec",
    "dies_per_wafer",
    "die_cost_before_test",
    "YieldModel",
    "poisson_yield",
    "negative_binomial_yield",
    "redundancy_repair_yield",
    "PackageCostModel",
    "ChipEconomics",
    "CostBreakdown",
    "SystemCostModel",
    "EDRAM_CONCEPT_NRE",
    "EDRAM_FIRST_PRODUCT_NRE",
    "LOGIC_ASIC_NRE",
    "NREBreakdown",
]
