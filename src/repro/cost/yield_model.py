"""Defect-limited yield models, with and without redundancy repair.

DRAM arrays ship with spare rows and columns ("different redundancy levels,
in order to optimize the yield of the memory module to the specific chip" —
paper Section 5).  This module provides:

* classic Poisson and negative-binomial (Murphy/Stapper) die yield,
* a redundancy-repair yield: the probability that the number of defects
  landing in an array does not exceed what its spares can absorb, and
* a composite model for a merged die whose memory part is repairable but
  whose logic part is not.

The analytical repair model here treats each defect as repairable by one
spare (row or column); the detailed allocation problem — which defects a
given spare set can actually cover — is solved combinatorially in
:mod:`repro.dft.redundancy` and validated against this bound in tests.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from repro.errors import ConfigurationError


def poisson_yield(area_mm2: float, defect_density_per_cm2: float) -> float:
    """Poisson die yield: ``Y = exp(-A * D0)``.

    Args:
        area_mm2: Critical area in mm^2.
        defect_density_per_cm2: Defect density D0 in defects/cm^2.
    """
    _check(area_mm2, defect_density_per_cm2)
    lam = area_mm2 * 1e-2 * defect_density_per_cm2
    return math.exp(-lam)


def negative_binomial_yield(
    area_mm2: float, defect_density_per_cm2: float, alpha: float = 2.0
) -> float:
    """Negative-binomial (clustered-defect) yield.

    ``Y = (1 + A*D0/alpha)^(-alpha)`` — the Stapper model; ``alpha`` is the
    clustering parameter (alpha -> inf recovers Poisson).
    """
    _check(area_mm2, defect_density_per_cm2)
    if alpha <= 0:
        raise ConfigurationError(f"alpha must be positive, got {alpha}")
    lam = area_mm2 * 1e-2 * defect_density_per_cm2
    return (1.0 + lam / alpha) ** (-alpha)


def redundancy_repair_yield(
    area_mm2: float,
    defect_density_per_cm2: float,
    repairable_defects: int,
) -> float:
    """Yield of a repairable array under Poisson defects.

    The array is good when at most ``repairable_defects`` defects land in
    it (each absorbed by one spare row or column)::

        Y = sum_{k=0}^{R} exp(-lam) lam^k / k!

    ``repairable_defects = 0`` recovers the plain Poisson yield.
    """
    _check(area_mm2, defect_density_per_cm2)
    if repairable_defects < 0:
        raise ConfigurationError(
            f"repairable defect count must be >= 0, got {repairable_defects}"
        )
    lam = area_mm2 * 1e-2 * defect_density_per_cm2
    total = 0.0
    term = math.exp(-lam)
    for k in range(repairable_defects + 1):
        total += term
        term *= lam / (k + 1)
    return min(1.0, total)


def _check(area_mm2: float, defect_density: float) -> None:
    if area_mm2 < 0:
        raise ConfigurationError(f"area must be non-negative, got {area_mm2}")
    if defect_density < 0:
        raise ConfigurationError(
            f"defect density must be non-negative, got {defect_density}"
        )


@dataclass(frozen=True)
class YieldModel:
    """Composite yield model for a merged memory/logic die.

    Attributes:
        defect_density_per_cm2: Process defect density D0.
        clustering_alpha: Negative-binomial clustering parameter used for
            the (unrepairable) logic portion.
        memory_spares: Number of defects the memory redundancy can absorb
            (total spare rows + columns across the module).
    """

    defect_density_per_cm2: float = 0.8
    clustering_alpha: float = 2.0
    memory_spares: int = 4

    def __post_init__(self) -> None:
        _check(1.0, self.defect_density_per_cm2)
        if self.clustering_alpha <= 0:
            raise ConfigurationError(
                f"alpha must be positive, got {self.clustering_alpha}"
            )
        if self.memory_spares < 0:
            raise ConfigurationError(
                f"memory_spares must be >= 0, got {self.memory_spares}"
            )

    def logic_yield(self, logic_area_mm2: float) -> float:
        """Yield of the unrepairable logic portion."""
        return negative_binomial_yield(
            logic_area_mm2, self.defect_density_per_cm2, self.clustering_alpha
        )

    def memory_yield(self, memory_area_mm2: float) -> float:
        """Yield of the repairable memory portion (post-repair)."""
        return redundancy_repair_yield(
            memory_area_mm2, self.defect_density_per_cm2, self.memory_spares
        )

    def memory_yield_unrepaired(self, memory_area_mm2: float) -> float:
        """Pre-fuse memory yield: no repair credited."""
        return poisson_yield(memory_area_mm2, self.defect_density_per_cm2)

    def die_yield(
        self, memory_area_mm2: float, logic_area_mm2: float
    ) -> float:
        """Composite die yield: both portions must be good."""
        return self.memory_yield(memory_area_mm2) * self.logic_yield(
            logic_area_mm2
        )

    def repair_gain(self, memory_area_mm2: float) -> float:
        """Yield ratio repaired/unrepaired for the memory portion.

        Quantifies what the redundancy level buys — always >= 1.
        """
        unrepaired = self.memory_yield_unrepaired(memory_area_mm2)
        if unrepaired == 0.0:
            return float("inf")
        return self.memory_yield(memory_area_mm2) / unrepaired
