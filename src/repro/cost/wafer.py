"""Wafer cost and gross-die models.

Uses the standard dies-per-wafer approximation (wafer area over die area
minus an edge-loss term proportional to wafer circumference over die
diagonal) found in Hennessy & Patterson, which is also how late-90s cost
studies of merged DRAM/logic were framed.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from repro.errors import ConfigurationError


@dataclass(frozen=True)
class WaferSpec:
    """A processed wafer.

    Attributes:
        diameter_mm: Wafer diameter (200 mm was the late-90s volume
            standard).
        base_cost: Cost of a processed wafer on the reference logic
            process, in currency units.
        cost_multiplier: Relative processing cost of the actual process
            (e.g. a merged DRAM+logic process with extra mask steps is
            1.3-1.4x).
    """

    diameter_mm: float = 200.0
    base_cost: float = 3000.0
    cost_multiplier: float = 1.0

    def __post_init__(self) -> None:
        if self.diameter_mm <= 0:
            raise ConfigurationError(
                f"wafer diameter must be positive, got {self.diameter_mm}"
            )
        if self.base_cost <= 0:
            raise ConfigurationError(
                f"wafer cost must be positive, got {self.base_cost}"
            )
        if self.cost_multiplier <= 0:
            raise ConfigurationError(
                f"cost multiplier must be positive, got {self.cost_multiplier}"
            )

    @property
    def cost(self) -> float:
        """Cost of one processed wafer on this process."""
        return self.base_cost * self.cost_multiplier

    @property
    def area_mm2(self) -> float:
        return math.pi * (self.diameter_mm / 2) ** 2


def dies_per_wafer(wafer: WaferSpec, die_area_mm2: float) -> int:
    """Gross dies per wafer (before yield).

    Standard approximation::

        N = pi * (d/2)^2 / A  -  pi * d / sqrt(2 * A)

    where ``d`` is the wafer diameter and ``A`` the die area.  The second
    term accounts for partial dies at the wafer edge.

    Raises:
        ConfigurationError: If the die area is not positive.
    """
    if die_area_mm2 <= 0:
        raise ConfigurationError(
            f"die area must be positive, got {die_area_mm2}"
        )
    d = wafer.diameter_mm
    gross = wafer.area_mm2 / die_area_mm2 - math.pi * d / math.sqrt(
        2.0 * die_area_mm2
    )
    return max(0, int(gross))


def die_cost_before_test(
    wafer: WaferSpec, die_area_mm2: float, die_yield: float
) -> float:
    """Cost per *good* die, before test and packaging.

    Args:
        wafer: Wafer specification.
        die_area_mm2: Die area.
        die_yield: Fraction of gross dies that are good, in (0, 1].

    Raises:
        ConfigurationError: If the yield is outside (0, 1] or no die fits.
    """
    if not 0 < die_yield <= 1:
        raise ConfigurationError(f"yield must be in (0, 1], got {die_yield}")
    gross = dies_per_wafer(wafer, die_area_mm2)
    if gross == 0:
        raise ConfigurationError(
            f"die of {die_area_mm2:.0f} mm^2 does not fit on a "
            f"{wafer.diameter_mm:.0f} mm wafer"
        )
    return wafer.cost / (gross * die_yield)
