"""Non-recurring engineering breakdown for an eDRAM project.

Paper Section 1: "The edram process adds another technology for which
libraries must be developed and characterized, macros must be ported,
and design flows must be tuned."  And Section 6 adds test-program
development.  These are the NRE line items that the advisability rules'
volume threshold has to amortize; the breakdown makes the lump sum the
economics model uses auditable.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import ConfigurationError


@dataclass(frozen=True)
class NREBreakdown:
    """NRE line items, in currency units.

    Attributes:
        mask_set: Mask tooling (scales with mask count).
        library_development: Standard-cell/IO library characterization
            on the new process.
        macro_porting: Porting existing IP macros.
        design_flow: CAD flow tuning and sign-off setup.
        memory_design: The eDRAM module work itself (or zero when a
            generator delivers it "first-time-right" — the Section 5
            concept's selling point).
        test_program: Memory test program and BIST integration.
        qualification: Process/product qualification.
    """

    mask_set: float = 0.6e6
    library_development: float = 0.8e6
    macro_porting: float = 0.4e6
    design_flow: float = 0.3e6
    memory_design: float = 0.5e6
    test_program: float = 0.25e6
    qualification: float = 0.35e6

    def __post_init__(self) -> None:
        for name in (
            "mask_set",
            "library_development",
            "macro_porting",
            "design_flow",
            "memory_design",
            "test_program",
            "qualification",
        ):
            if getattr(self, name) < 0:
                raise ConfigurationError(f"{name} must be >= 0")

    @property
    def total(self) -> float:
        return (
            self.mask_set
            + self.library_development
            + self.macro_porting
            + self.design_flow
            + self.memory_design
            + self.test_program
            + self.qualification
        )

    @property
    def process_entry_cost(self) -> float:
        """The one-time cost of *entering* the eDRAM process (libraries,
        porting, flow) — shared across the first products, not per
        design."""
        return (
            self.library_development + self.macro_porting + self.design_flow
        )

    def with_flexible_concept(self) -> "NREBreakdown":
        """The Section 5 concept's effect: the memory module comes from
        a generator with "first-time-right designs accompanied by all
        views, test programs, etc." — memory design and test program
        costs collapse."""
        return NREBreakdown(
            mask_set=self.mask_set,
            library_development=self.library_development,
            macro_porting=self.macro_porting,
            design_flow=self.design_flow,
            memory_design=self.memory_design * 0.15,
            test_program=self.test_program * 0.2,
            qualification=self.qualification,
        )

    def amortized_per_unit(self, volume: int) -> float:
        """NRE per unit at a production volume."""
        if volume <= 0:
            raise ConfigurationError("volume must be positive")
        return self.total / volume


#: A logic-only ASIC on an established process, for comparison.
LOGIC_ASIC_NRE = NREBreakdown(
    mask_set=0.45e6,
    library_development=0.0,
    macro_porting=0.0,
    design_flow=0.05e6,
    memory_design=0.0,
    test_program=0.08e6,
    qualification=0.2e6,
)

#: A first eDRAM product, hand-built memory.
EDRAM_FIRST_PRODUCT_NRE = NREBreakdown()

#: The same product using the flexible memory concept.
EDRAM_CONCEPT_NRE = EDRAM_FIRST_PRODUCT_NRE.with_flexible_concept()
