"""Package cost as a function of pin count and thermal class.

Two Section 1 claims live here: "higher system integration saves board
space, packages, and pins" (an embedded solution needs one package instead
of logic + N memory packages) and "more expensive packages may be needed"
(the merged die may dissipate more per package and need more pins than the
logic die alone, pushing it into a costlier package class).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import ConfigurationError


@dataclass(frozen=True)
class PackageCostModel:
    """Piecewise-linear package cost model.

    Cost = base + per_pin * pins, multiplied by a thermal premium when the
    dissipated power exceeds ``cheap_power_limit_w`` (forced move from a
    plastic QFP-class package to an enhanced thermal package).

    Attributes:
        base_cost: Fixed cost of the cheapest package.
        cost_per_pin: Incremental cost per pin.
        cheap_power_limit_w: Power above which the thermal premium applies.
        thermal_premium: Multiplier for high-power packages.
    """

    base_cost: float = 0.30
    cost_per_pin: float = 0.008
    cheap_power_limit_w: float = 2.0
    thermal_premium: float = 1.8

    def __post_init__(self) -> None:
        if self.base_cost < 0 or self.cost_per_pin < 0:
            raise ConfigurationError("package costs must be non-negative")
        if self.cheap_power_limit_w <= 0:
            raise ConfigurationError("power limit must be positive")
        if self.thermal_premium < 1:
            raise ConfigurationError(
                f"thermal premium must be >= 1, got {self.thermal_premium}"
            )

    def cost(self, pins: int, power_w: float = 0.0) -> float:
        """Cost of one package with ``pins`` pins dissipating ``power_w``."""
        if pins < 0:
            raise ConfigurationError(f"pins must be >= 0, got {pins}")
        if power_w < 0:
            raise ConfigurationError(f"power must be >= 0, got {power_w}")
        base = self.base_cost + self.cost_per_pin * pins
        if power_w > self.cheap_power_limit_w:
            return base * self.thermal_premium
        return base

    def system_package_cost(
        self, packages: list[tuple[int, float]]
    ) -> float:
        """Total package cost of a multi-chip system.

        Args:
            packages: ``(pins, power_w)`` per package.
        """
        return sum(self.cost(pins, power) for pins, power in packages)
