"""Fault-injection campaigns: measured march coverage vs analytical.

The :mod:`repro.dft` layer quotes coverage analytically; a campaign
*measures* it.  For each seeded fault map the runner executes the march
suite (MATS+, March C-, March C- with retention pause) against a fresh
:class:`~repro.dft.faults.FaultyArray`, compares the observed failing
cells with :func:`analytical_detection`'s per-fault prediction, and
closes the redundancy loop by allocating spares over the *measured*
failing bitmap and over the ground truth — the two repair verdicts must
agree whenever detection is complete.

Everything is derived from ``CampaignConfig.seed``: the same config
reproduces the same fault maps, the same march reports and the same
repair verdicts, which is what makes a campaign regression-testable.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from pathlib import Path

from repro.errors import ConfigurationError
from repro.dft.faults import Fault, FaultKind, FaultyArray, inject_random_faults
from repro.dft.march import (
    MARCH_C_MINUS,
    MARCH_C_RETENTION,
    MATS_PLUS,
    MarchTest,
)
from repro.dft.redundancy import allocate_spares

#: Default retention threshold of :meth:`FaultyArray.pause`.
RETENTION_THRESHOLD_S = 0.1

#: The campaign's march suite.
CAMPAIGN_TESTS: tuple = (MATS_PLUS, MARCH_C_MINUS, MARCH_C_RETENTION)


def analytical_detection(
    test: MarchTest,
    fault: Fault,
    rows: int,
    cols: int,
    pause_s: float = 0.0,
    retention_threshold_s: float = RETENTION_THRESHOLD_S,
) -> set:
    """Cells of ``fault`` the behavioural model predicts ``test`` flags.

    The predictions are derived for *this* array model (they are
    stronger than textbook march theory, which assumes reads cannot
    observe a transition fault's failed write until a later element):

    * SA0/SA1: any test reading both backgrounds flags the cell — all
      campaign tests do.
    * TF (0->1 fails): after the bulk ``w0`` element every up-march
      writes 1 and a later read-of-1 sees the stuck 0 — detected even
      by MATS+.
    * CFin: the bulk ``w0`` element plus read-before-write ordering
      leaves or makes the victim's background wrong regardless of the
      aggressor/victim address order — the victim is always flagged.
    * WL/BL: the dead line reads 0, so every cell on it fails ``r1``.
    * RET: decays only across a pause, so it is flagged iff the test
      pauses (``pause_after_element``) for longer than the cell's
      retention threshold — *strictly* longer; a pause exactly at the
      threshold retains (see :meth:`FaultyArray.pause`).
    """
    if fault.kind is FaultKind.WORD_LINE:
        return {(fault.row, c) for c in range(cols)}
    if fault.kind is FaultKind.BIT_LINE:
        return {(r, fault.col) for r in range(rows)}
    if fault.kind is FaultKind.RETENTION:
        paused = (
            test.pause_after_element is not None
            and pause_s > retention_threshold_s
        )
        return {(fault.row, fault.col)} if paused else set()
    return {(fault.row, fault.col)}


def predicted_cells(
    test: MarchTest,
    array: FaultyArray,
    pause_s: float,
    retention_threshold_s: float = RETENTION_THRESHOLD_S,
) -> set:
    """Union of :func:`analytical_detection` over the array's faults."""
    predicted: set = set()
    for fault in array.faults:
        predicted |= analytical_detection(
            test,
            fault,
            array.rows,
            array.cols,
            pause_s,
            retention_threshold_s,
        )
    return predicted


@dataclass(frozen=True)
class CampaignConfig:
    """One campaign: how many maps, their shape and the spare budget.

    Attributes:
        seed: Root seed; per-map seeds are derived from it.
        n_maps: Independent fault maps to run the suite over.
        rows: Array rows per map.
        cols: Array columns per map.
        n_cell_faults: Single-cell faults per map.
        n_line_faults: Word-line/bit-line faults per map (alternating).
        include_retention: Include retention faults in the cell mix.
        pause_s: Retention pause handed to pausing tests.
        spare_rows: Spare-row budget for the repair-allocation check.
        spare_cols: Spare-column budget.
    """

    seed: int = 0
    n_maps: int = 4
    rows: int = 32
    cols: int = 32
    n_cell_faults: int = 6
    n_line_faults: int = 2
    include_retention: bool = True
    pause_s: float = 0.2
    spare_rows: int = 2
    spare_cols: int = 2

    def __post_init__(self) -> None:
        if self.n_maps < 1:
            raise ConfigurationError("campaign needs >= 1 map")
        if self.rows < 1 or self.cols < 1:
            raise ConfigurationError("array dimensions must be positive")
        if self.n_cell_faults < 0 or self.n_line_faults < 0:
            raise ConfigurationError("fault counts must be >= 0")
        if self.n_cell_faults > self.rows * self.cols:
            raise ConfigurationError(
                f"{self.n_cell_faults} cell faults exceed the "
                f"{self.rows}x{self.cols} array"
            )
        if self.pause_s < 0:
            raise ConfigurationError("pause must be >= 0")
        if self.spare_rows < 0 or self.spare_cols < 0:
            raise ConfigurationError("spare budgets must be >= 0")

    def map_seed(self, index: int) -> int:
        """Seed of map ``index`` (stable, collision-free derivation)."""
        return self.seed * 100_003 + index

    def build_array(self, index: int) -> FaultyArray:
        """A fresh faulty array for map ``index`` (same seed, same map)."""
        return inject_random_faults(
            rows=self.rows,
            cols=self.cols,
            n_cell_faults=self.n_cell_faults,
            n_line_faults=self.n_line_faults,
            seed=self.map_seed(index),
            include_retention=self.include_retention,
        )


@dataclass
class CampaignReport:
    """Measured-vs-analytical outcome of one campaign.

    Attributes:
        config: The campaign settings.
        maps: One entry per fault map (see :func:`run_campaign`).
    """

    config: CampaignConfig
    maps: list = field(default_factory=list)

    @property
    def ok(self) -> bool:
        """True when every map matched its analytical prediction, no
        march flagged a healthy cell, and repair verdicts agree."""
        for entry in self.maps:
            for outcome in entry["tests"].values():
                if not outcome["match"] or outcome["false_positives"]:
                    return False
            if not entry["repair"]["verdict_match"]:
                return False
        return True

    def to_dict(self) -> dict:
        return {
            "config": {
                "seed": self.config.seed,
                "n_maps": self.config.n_maps,
                "rows": self.config.rows,
                "cols": self.config.cols,
                "n_cell_faults": self.config.n_cell_faults,
                "n_line_faults": self.config.n_line_faults,
                "include_retention": self.config.include_retention,
                "pause_s": self.config.pause_s,
                "spare_rows": self.config.spare_rows,
                "spare_cols": self.config.spare_cols,
            },
            "ok": self.ok,
            "maps": self.maps,
        }

    def write_json(self, path) -> None:
        Path(path).write_text(json.dumps(self.to_dict(), indent=2) + "\n")

    def summary(self) -> str:
        lines = [
            f"campaign seed={self.config.seed}: {len(self.maps)} maps, "
            f"{'OK' if self.ok else 'MISMATCH'}"
        ]
        for entry in self.maps:
            parts = []
            for name, outcome in entry["tests"].items():
                flag = "=" if outcome["match"] else "!"
                parts.append(
                    f"{name} {outcome['measured_coverage']:.2f}{flag}"
                )
            repair = entry["repair"]
            parts.append(
                "repair "
                + ("match" if repair["verdict_match"] else "MISMATCH")
            )
            lines.append(
                f"  map {entry['map']} (seed {entry['seed']}, "
                f"{entry['ground_truth_cells']} faulty cells): "
                + ", ".join(parts)
            )
        return "\n".join(lines)


def run_campaign(
    config: CampaignConfig, ledger=None
) -> CampaignReport:
    """Run the march suite over every map and compare with predictions.

    Per map the report entry records, for each test, the measured
    coverage (:meth:`MarchResult.detected`), the predicted coverage,
    whether the measured failing-cell set equals the prediction exactly
    and any false positives; plus the repair comparison: spare
    allocation over the union of measured failing cells vs over the
    ground-truth faulty cells.

    With ``ledger`` (path or open
    :class:`~repro.obs.ledger.RunLedger`), the campaign streams
    ``run_start``, one timed span per fault map (with per-map match
    outcomes) and a ``run_end`` carrying the overall verdict.
    """
    from repro.obs.ledger import coerce_ledger

    run_ledger, owns_ledger = coerce_ledger(ledger)
    try:
        return _run_campaign(config, run_ledger)
    finally:
        if owns_ledger and run_ledger is not None:
            run_ledger.close()


def _run_campaign(config: CampaignConfig, ledger) -> CampaignReport:
    import time

    started = time.perf_counter()
    if ledger is not None:
        ledger.event(
            "run_start",
            workload="campaign",
            seed=config.seed,
            n_maps=config.n_maps,
            rows=config.rows,
            cols=config.cols,
            n_cell_faults=config.n_cell_faults,
            n_line_faults=config.n_line_faults,
        )
    maps: list = []
    for index in range(config.n_maps):
        reference = config.build_array(index)
        ground_truth = reference.faulty_cells()
        per_test: dict = {}
        measured_union: set = set()
        for test in CAMPAIGN_TESTS:
            # March runs mutate cell state: each test gets a fresh,
            # identically seeded array.
            array = config.build_array(index)
            result = test.run(array, pause_s=config.pause_s)
            predicted = predicted_cells(test, reference, config.pause_s)
            measured = result.failing_cells & ground_truth
            false_positives = result.failing_cells - ground_truth
            measured_union |= result.failing_cells
            per_test[test.name] = {
                "measured_coverage": result.detected(ground_truth),
                "predicted_coverage": (
                    len(predicted) / len(ground_truth)
                    if ground_truth
                    else 1.0
                ),
                "measured_cells": len(measured),
                "predicted_cells": len(predicted),
                "match": measured == predicted,
                "false_positives": len(false_positives),
                "operations": result.operations,
            }
        measured_plan = allocate_spares(
            measured_union, config.spare_rows, config.spare_cols
        )
        truth_plan = allocate_spares(
            ground_truth, config.spare_rows, config.spare_cols
        )
        entry = {
            "map": index,
            "seed": config.map_seed(index),
            "n_faults": len(reference.faults),
            "ground_truth_cells": len(ground_truth),
            "tests": per_test,
            "repair": {
                "measured_repaired": measured_plan.repaired,
                "truth_repaired": truth_plan.repaired,
                "verdict_match": (
                    measured_plan.repaired == truth_plan.repaired
                ),
                "measured_spares_used": measured_plan.spares_used,
                "truth_spares_used": truth_plan.spares_used,
            },
        }
        maps.append(entry)
        if ledger is not None:
            ledger.event(
                "campaign_map",
                index=index,
                seed=entry["seed"],
                ground_truth_cells=entry["ground_truth_cells"],
                matches={
                    name: outcome["match"]
                    for name, outcome in per_test.items()
                },
                repair_verdict_match=entry["repair"]["verdict_match"],
            )
    report = CampaignReport(config=config, maps=maps)
    if ledger is not None:
        ledger.event(
            "run_end",
            workload="campaign",
            status="ok" if report.ok else "mismatch",
            n_maps=len(maps),
            s=round(time.perf_counter() - started, 6),
        )
    return report
