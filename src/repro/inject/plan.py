"""Seeded fault maps materialized as runtime injection effects.

:func:`build_fault_map` turns the :class:`~repro.dft.faults.FaultKind`
fault models into physical fault *sites* on a device organization —
(bank, row, bit) cells and dead word/bit lines — using the same kind of
seeded placement as :func:`repro.dft.faults.inject_random_faults`.
:class:`FaultInjector` then owns that map at simulation time and answers
the controller's questions deterministically:

* which words of a read burst carry how many bad bits (fed through the
  :class:`~repro.inject.ecc.SECDEDCode` classifier);
* whether a due refresh is issued, dropped or delayed (dropped
  refreshes beyond a margin activate the retention-fault sites, exactly
  the failure mode Section 6's retention testing exists for);
* whether a client FIFO push is stalled this cycle;
* whether a bank is stuck (commands to it never issue).

The injector also carries the graceful-degradation budget: spare rows
per bank for runtime row remap (the runtime analogue of the
:mod:`repro.dft.redundancy` allocator) and the quarantine bookkeeping.
Every random draw comes from streams derived from ``config.seed``, so a
campaign is exactly reproducible; with ``enabled=False`` the injector
answers "no effect" everywhere and the simulation is bit-identical to
an uninstrumented run.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field

import numpy as np

from repro.errors import ConfigurationError
from repro.dram.organizations import Organization
from repro.dft.faults import FaultKind
from repro.inject.ecc import EccOutcome, SECDEDCode


@dataclass(frozen=True)
class InjectionConfig:
    """What to inject, seeded; plus the degradation policy.

    Attributes:
        enabled: Master switch; False makes every effect a no-op (and
            results bit-identical to a run without the injector).
        seed: Root seed for fault placement and all event draws.
        n_cell_faults: Single-cell faults (SA0/SA1/TF and, when
            ``include_retention``, RET) placed across the whole device.
        n_line_faults: Dead word lines / bit lines (alternating).
        include_retention: Include retention faults in the cell mix.
        refresh_drop_rate: Probability a due refresh is dropped
            entirely (the opportunity is skipped; retention risk).
        refresh_delay_rate: Probability a due refresh is served late.
        refresh_delay_cycles: How late a delayed refresh is served.
        retention_margin_refreshes: Dropped refreshes tolerated before
            the retention-fault sites start corrupting reads.
        stuck_bank: Bank that stops responding (None = no stuck bank).
        stuck_bank_from_cycle: Cycle at which the bank gets stuck.
        fifo_stall_rate: Per-offer probability that a client FIFO push
            is refused (upstream interface stall).
        read_retry_limit: Scrub re-reads issued per request after a
            correctable error before the (corrected) data is accepted.
        quarantine_threshold: Uncorrectable reads charged to one
            (bank, row) before repair is attempted.
        spare_rows_per_bank: Runtime spare-row budget for row remap;
            once exhausted, further bad rows quarantine the whole bank.
        stuck_request_cycles: Age (cycles in the scheduling window) at
            which a request declares its bank stuck and triggers
            quarantine + remap.
    """

    enabled: bool = True
    seed: int = 0
    n_cell_faults: int = 0
    n_line_faults: int = 0
    include_retention: bool = True
    refresh_drop_rate: float = 0.0
    refresh_delay_rate: float = 0.0
    refresh_delay_cycles: int = 64
    retention_margin_refreshes: int = 1
    stuck_bank: int | None = None
    stuck_bank_from_cycle: int = 0
    fifo_stall_rate: float = 0.0
    read_retry_limit: int = 1
    quarantine_threshold: int = 2
    spare_rows_per_bank: int = 2
    stuck_request_cycles: int = 256

    def __post_init__(self) -> None:
        if self.n_cell_faults < 0 or self.n_line_faults < 0:
            raise ConfigurationError("fault counts must be >= 0")
        for name in ("refresh_drop_rate", "refresh_delay_rate",
                     "fifo_stall_rate"):
            value = getattr(self, name)
            if not 0.0 <= value <= 1.0:
                raise ConfigurationError(
                    f"{name} must be in [0, 1], got {value}"
                )
        if self.refresh_delay_cycles < 0:
            raise ConfigurationError("refresh delay must be >= 0")
        if self.retention_margin_refreshes < 0:
            raise ConfigurationError("retention margin must be >= 0")
        if self.stuck_bank is not None and self.stuck_bank < 0:
            raise ConfigurationError("stuck bank must be >= 0")
        if self.stuck_bank_from_cycle < 0:
            raise ConfigurationError("stuck-bank cycle must be >= 0")
        if self.read_retry_limit < 0:
            raise ConfigurationError("retry limit must be >= 0")
        if self.quarantine_threshold < 1:
            raise ConfigurationError("quarantine threshold must be >= 1")
        if self.spare_rows_per_bank < 0:
            raise ConfigurationError("spare rows must be >= 0")
        if self.stuck_request_cycles < 1:
            raise ConfigurationError("stuck threshold must be >= 1")


@dataclass(frozen=True)
class FaultSite:
    """One placed fault, in device coordinates (ground truth)."""

    kind: FaultKind
    bank: int
    row: int | None = None  # None for bit-line faults
    bit: int | None = None  # bit within the page; None for word lines


@dataclass
class FaultMap:
    """Physical fault sites of one device, indexed for runtime queries.

    Attributes:
        sites: Ground-truth list of placed faults.
        word_errors: (bank, row) -> {word column -> persistent bad bits}
            from stuck-at / transition cell faults.
        retention_words: Same shape, for retention faults — these only
            corrupt reads while the refresh deficit exceeds the margin.
        dead_rows: (bank, row) word-line failures: every read of the
            row is uncorrectable.
        col_errors: bank -> {word column -> bad bits} bit-line failures
            affecting that word column in **every** row of the bank.
    """

    sites: tuple = ()
    word_errors: dict = field(default_factory=dict)
    retention_words: dict = field(default_factory=dict)
    dead_rows: set = field(default_factory=set)
    col_errors: dict = field(default_factory=dict)

    @property
    def n_sites(self) -> int:
        return len(self.sites)

    def bad_bits(
        self, bank: int, row: int, word: int, retention_active: bool
    ) -> int:
        """Faulty bits a read of ``word`` in (bank, row) touches now."""
        if (bank, row) in self.dead_rows:
            # A dead word line garbles the whole word: model as a
            # multi-bit (detected-uncorrectable) error.
            return 2
        bad = self.word_errors.get((bank, row), {}).get(word, 0)
        bad += self.col_errors.get(bank, {}).get(word, 0)
        if retention_active:
            bad += self.retention_words.get((bank, row), {}).get(word, 0)
        return bad

    def clear_row(self, bank: int, row: int) -> None:
        """Remove every fault on (bank, row) — the row was remapped to a
        spare, so subsequent reads are clean."""
        self.word_errors.pop((bank, row), None)
        self.retention_words.pop((bank, row), None)
        self.dead_rows.discard((bank, row))


def build_fault_map(
    organization: Organization, config: InjectionConfig
) -> FaultMap:
    """Place ``config``'s faults on ``organization`` (reproducible).

    Cell faults land on distinct (bank, row, bit) coordinates; line
    faults on distinct rows/columns.  The placement mirrors
    :func:`repro.dft.faults.inject_random_faults` so array-level
    campaigns and runtime injection draw from the same fault universe.
    """
    org = organization
    capacity_cells = org.n_banks * org.n_rows * org.page_bits
    if config.n_cell_faults > capacity_cells:
        raise ConfigurationError(
            f"{config.n_cell_faults} cell faults exceed the "
            f"{capacity_cells}-cell device"
        )
    rng = np.random.default_rng(config.seed)
    kinds = [FaultKind.STUCK_AT_0, FaultKind.STUCK_AT_1,
             FaultKind.TRANSITION]
    if config.include_retention:
        kinds.append(FaultKind.RETENTION)
    word_bits = org.word_bits
    sites: list = []
    fault_map = FaultMap()
    used: set = set()
    for _ in range(config.n_cell_faults):
        while True:
            bank = int(rng.integers(org.n_banks))
            row = int(rng.integers(org.n_rows))
            bit = int(rng.integers(org.page_bits))
            if (bank, row, bit) not in used:
                used.add((bank, row, bit))
                break
        kind = kinds[int(rng.integers(len(kinds)))]
        sites.append(FaultSite(kind=kind, bank=bank, row=row, bit=bit))
        target = (
            fault_map.retention_words
            if kind is FaultKind.RETENTION
            else fault_map.word_errors
        )
        per_row = target.setdefault((bank, row), {})
        word = bit // word_bits
        per_row[word] = per_row.get(word, 0) + 1
    used_rows: set = set()
    used_cols: set = set()
    for index in range(config.n_line_faults):
        if index % 2 == 0:
            while True:
                bank = int(rng.integers(org.n_banks))
                row = int(rng.integers(org.n_rows))
                if (bank, row) not in used_rows:
                    used_rows.add((bank, row))
                    break
            sites.append(
                FaultSite(kind=FaultKind.WORD_LINE, bank=bank, row=row)
            )
            fault_map.dead_rows.add((bank, row))
        else:
            while True:
                bank = int(rng.integers(org.n_banks))
                bit = int(rng.integers(org.page_bits))
                if (bank, bit) not in used_cols:
                    used_cols.add((bank, bit))
                    break
            sites.append(
                FaultSite(kind=FaultKind.BIT_LINE, bank=bank, bit=bit)
            )
            per_bank = fault_map.col_errors.setdefault(bank, {})
            word = bit // word_bits
            per_bank[word] = per_bank.get(word, 0) + 1
    fault_map.sites = tuple(sites)
    return fault_map


@dataclass(frozen=True)
class InjectionReport:
    """JSON-able snapshot of one injected run.

    Attributes:
        counters: Event counts (reads checked/corrected/uncorrectable,
            retries, refresh drops/delays, injected FIFO stalls, ...).
        n_fault_sites: Faults placed by the map.
        rows_remapped: (bank, row) pairs remapped to spare rows.
        banks_quarantined: Banks taken out of service.
        spare_rows_left: Remaining per-bank spare budget.
        retention_active: Whether retention faults were live at the end.
    """

    counters: dict
    n_fault_sites: int
    rows_remapped: tuple
    banks_quarantined: tuple
    spare_rows_left: dict
    retention_active: bool

    def to_dict(self) -> dict:
        return {
            "counters": dict(sorted(self.counters.items())),
            "n_fault_sites": self.n_fault_sites,
            "rows_remapped": [list(pair) for pair in self.rows_remapped],
            "banks_quarantined": list(self.banks_quarantined),
            "spare_rows_left": {
                str(bank): left
                for bank, left in sorted(self.spare_rows_left.items())
            },
            "retention_active": self.retention_active,
        }

    def summary(self) -> str:
        c = self.counters
        return (
            f"{self.n_fault_sites} fault sites: "
            f"{c.get('reads_corrected', 0)} corrected / "
            f"{c.get('reads_uncorrectable', 0)} uncorrectable reads, "
            f"{c.get('retries', 0)} retries, "
            f"{c.get('refreshes_dropped', 0)} refreshes dropped, "
            f"{len(self.rows_remapped)} rows remapped, "
            f"{len(self.banks_quarantined)} banks quarantined"
        )


class FaultInjector:
    """Runtime oracle for one injected simulation (see module docstring).

    Attributes:
        config: The injection settings.
        organization: Device organization the fault map is placed on.
        ecc: SEC-DED classifier for read words.
        fault_map: The placed faults (mutated by runtime row remap).
    """

    def __init__(
        self,
        config: InjectionConfig,
        organization: Organization,
        fault_map: FaultMap | None = None,
        ecc: SECDEDCode | None = None,
    ) -> None:
        self.config = config
        self.organization = organization
        self.ecc = ecc if ecc is not None else SECDEDCode(
            data_bits=organization.word_bits
        )
        self.fault_map = (
            fault_map
            if fault_map is not None
            else build_fault_map(organization, config)
        )
        if config.stuck_bank is not None and (
            config.stuck_bank >= organization.n_banks
        ):
            raise ConfigurationError(
                f"stuck bank {config.stuck_bank} outside "
                f"{organization.n_banks}-bank device"
            )
        # Independent, reproducible event streams per effect.
        self._refresh_rng = random.Random(f"{config.seed}:refresh")
        self._fifo_rng = random.Random(f"{config.seed}:fifo")
        self.counters: dict = {}
        self.missed_refreshes = 0
        self.spare_rows_left = {
            bank: config.spare_rows_per_bank
            for bank in range(organization.n_banks)
        }
        self.rows_remapped: list = []
        self.banks_quarantined: list = []
        self._uncorrectable_by_row: dict = {}

    @property
    def enabled(self) -> bool:
        return self.config.enabled

    @property
    def retention_active(self) -> bool:
        """Retention faults corrupt reads once the deficit exceeds the
        configured margin of dropped refreshes."""
        return (
            self.missed_refreshes > self.config.retention_margin_refreshes
        )

    def count(self, name: str, amount: int = 1) -> None:
        self.counters[name] = self.counters.get(name, 0) + amount

    # -- read path -----------------------------------------------------------

    def classify_read(
        self, bank: int, row: int, column: int, burst_words: int
    ) -> EccOutcome:
        """Worst ECC outcome over the words of one read burst."""
        self.count("reads_checked")
        last_word = min(
            column + burst_words, self.organization.columns_per_page
        )
        retention = self.retention_active
        worst = EccOutcome.CLEAN
        for word in range(column, last_word):
            bad = self.fault_map.bad_bits(bank, row, word, retention)
            outcome = self.ecc.classify(bad)
            if outcome is EccOutcome.UNCORRECTABLE:
                self.count("words_uncorrectable")
                worst = outcome
            elif outcome is EccOutcome.CORRECTED:
                self.count("words_corrected")
                if worst is EccOutcome.CLEAN:
                    worst = outcome
        if worst is EccOutcome.CORRECTED:
            self.count("reads_corrected")
        elif worst is EccOutcome.UNCORRECTABLE:
            self.count("reads_uncorrectable")
        return worst

    def record_uncorrectable(self, bank: int, row: int) -> int:
        """Charge an uncorrectable read to (bank, row); returns the
        running tally the quarantine policy compares to its threshold."""
        key = (bank, row)
        tally = self._uncorrectable_by_row.get(key, 0) + 1
        self._uncorrectable_by_row[key] = tally
        return tally

    # -- refresh path --------------------------------------------------------

    def refresh_action(self, cycle: int) -> tuple:
        """Decide the fate of one due refresh: ``("issue", cycle)``,
        ``("drop", cycle)`` or ``("delay", resume_cycle)``."""
        draw = self._refresh_rng.random()
        if draw < self.config.refresh_drop_rate:
            return ("drop", cycle)
        if draw < self.config.refresh_drop_rate + self.config.refresh_delay_rate:
            return ("delay", cycle + self.config.refresh_delay_cycles)
        return ("issue", cycle)

    def on_refresh_dropped(self, cycle: int) -> None:
        del cycle
        self.missed_refreshes += 1
        self.count("refreshes_dropped")

    def on_refresh_delayed(self, cycle: int) -> None:
        del cycle
        self.count("refreshes_delayed")

    def on_refresh_issued(self, cycle: int) -> None:
        del cycle
        self.missed_refreshes = 0

    # -- interface / bank effects --------------------------------------------

    def fifo_stall(self, client: str, cycle: int) -> bool:
        """Whether this cycle's offer from ``client`` is stalled."""
        del client, cycle
        if self.config.fifo_stall_rate <= 0.0:
            return False
        stalled = self._fifo_rng.random() < self.config.fifo_stall_rate
        if stalled:
            self.count("fifo_stalls_injected")
        return stalled

    def bank_stuck(self, bank: int, cycle: int) -> bool:
        return (
            self.config.stuck_bank == bank
            and cycle >= self.config.stuck_bank_from_cycle
        )

    # -- repair / quarantine -------------------------------------------------

    def try_remap_row(self, bank: int, row: int) -> bool:
        """Consume a spare row for (bank, row); clears its faults."""
        if self.spare_rows_left.get(bank, 0) < 1:
            return False
        self.spare_rows_left[bank] -= 1
        self.fault_map.clear_row(bank, row)
        self._uncorrectable_by_row.pop((bank, row), None)
        self.rows_remapped.append((bank, row))
        self.count("rows_remapped")
        return True

    def quarantine_bank(self, bank: int) -> None:
        if bank not in self.banks_quarantined:
            self.banks_quarantined.append(bank)
            self.count("banks_quarantined")

    # -- reporting -----------------------------------------------------------

    def report(self) -> InjectionReport:
        return InjectionReport(
            counters=dict(self.counters),
            n_fault_sites=self.fault_map.n_sites,
            rows_remapped=tuple(self.rows_remapped),
            banks_quarantined=tuple(self.banks_quarantined),
            spare_rows_left=dict(self.spare_rows_left),
            retention_active=self.retention_active,
        )
