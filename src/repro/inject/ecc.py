"""SEC-DED error-correcting-code model.

A (SEC-DED) Hamming code over one interface word corrects any single bit
error and detects any double bit error.  The model here is behavioural:
given the number of faulty bits a read touched inside one protected
word, classify the outcome.  Three or more flipped bits can alias to a
valid or correctable codeword on real silicon; the model conservatively
classifies them as detected-uncorrectable and separately counts them so
the aliasing exposure is visible in reports.
"""

from __future__ import annotations

from dataclasses import dataclass
import enum

from repro.errors import ConfigurationError


class EccOutcome(enum.Enum):
    """Result of decoding one protected word."""

    CLEAN = "clean"
    CORRECTED = "corrected"  # single-bit error, corrected inline
    UNCORRECTABLE = "uncorrectable"  # detected, not correctable


@dataclass(frozen=True)
class SECDEDCode:
    """A SEC-DED code protecting ``data_bits`` per word.

    Attributes:
        data_bits: Payload bits per protected word.
    """

    data_bits: int

    def __post_init__(self) -> None:
        if self.data_bits < 1:
            raise ConfigurationError("data_bits must be >= 1")

    @property
    def check_bits(self) -> int:
        """Check bits for SEC-DED: smallest r with 2^(r-1) >= data+r.

        The extended Hamming construction uses r = hamming_r + 1 parity
        bits, equivalently the smallest r satisfying
        ``2**(r-1) >= data_bits + r``.
        """
        r = 2
        while (1 << (r - 1)) < self.data_bits + r:
            r += 1
        return r

    @property
    def word_bits(self) -> int:
        """Stored bits per word (payload plus check bits)."""
        return self.data_bits + self.check_bits

    @property
    def overhead_fraction(self) -> float:
        """Storage overhead of the code (check bits / payload bits)."""
        return self.check_bits / self.data_bits

    def classify(self, n_bad_bits: int) -> EccOutcome:
        """Outcome of reading a word with ``n_bad_bits`` flipped bits."""
        if n_bad_bits < 0:
            raise ConfigurationError("bad-bit count must be >= 0")
        if n_bad_bits == 0:
            return EccOutcome.CLEAN
        if n_bad_bits == 1:
            return EccOutcome.CORRECTED
        return EccOutcome.UNCORRECTABLE
