"""Deterministic fault injection and graceful degradation.

Section 6 of the paper quotes fault coverage and redundancy-repair
numbers that the :mod:`repro.dft` layer models only analytically.  This
package closes the loop in both directions:

* :mod:`repro.inject.campaign` runs real march tests
  (:mod:`repro.dft.march`) over seeded fault maps
  (:mod:`repro.dft.faults`) and compares the *measured* detection and
  repair verdicts against the analytical predictions;
* :mod:`repro.inject.plan` + :mod:`repro.inject.runtime` materialize
  the same :class:`~repro.dft.faults.FaultKind` fault models as runtime
  effects inside the cycle-level simulator — data bit errors on read,
  dropped/late refresh, stuck banks, injected FIFO stalls — and give
  the controller graceful-degradation responses: a SEC-DED ECC model
  (:mod:`repro.inject.ecc`) with retry-on-correctable-error, and
  runtime row remap / bank quarantine reusing the
  :mod:`repro.dft.redundancy` spare budget.

Everything is seeded: the same :class:`InjectionConfig` produces the
same fault map, the same runtime event sequence and the same campaign
report.  With injection disabled (``injector=None`` or
``InjectionConfig(enabled=False)``) results are bit-identical to an
uninstrumented run — pinned by :func:`repro.verify.differential.
diff_injection_off` and the benchmark suite.
"""

from __future__ import annotations

from repro.inject.ecc import EccOutcome, SECDEDCode
from repro.inject.plan import (
    FaultInjector,
    FaultMap,
    InjectionConfig,
    InjectionReport,
    build_fault_map,
)
from repro.inject.runtime import ResilientController, build_injected_simulator
from repro.inject.campaign import (
    CampaignConfig,
    CampaignReport,
    analytical_detection,
    run_campaign,
)

__all__ = [
    "CampaignConfig",
    "CampaignReport",
    "EccOutcome",
    "FaultInjector",
    "FaultMap",
    "InjectionConfig",
    "InjectionReport",
    "ResilientController",
    "SECDEDCode",
    "analytical_detection",
    "build_fault_map",
    "build_injected_simulator",
    "run_campaign",
]
