"""Command-line interface for fault injection.

Usage::

    python -m repro.inject campaign [--seed N] [--maps N] [--rows N]
        [--cols N] [--cell-faults N] [--line-faults N] [--no-retention]
        [--pause-s S] [--spare-rows N] [--spare-cols N]
        [--json] [--out FILE]
    python -m repro.inject sim [--seed N] [--cycles N] [--warmup N]
        [--cell-faults N] [--line-faults N] [--refresh-drop-rate P]
        [--refresh-delay-rate P] [--refresh-delay-cycles N]
        [--stuck-bank B] [--fifo-stall-rate P] [--retention-s S]
        [--disabled] [--check-identity] [--json] [--out FILE]

``campaign`` runs march tests over seeded fault maps and exits nonzero
when measured detection diverges from the analytical prediction or the
repair verdicts disagree.  ``sim`` runs the canonical injected workload
through the resilient controller and prints the injection report;
``--check-identity`` additionally asserts the bit-identity contract
(injection-disabled run == plain controller run) and fails loudly when
it does not hold.  Also reachable as ``repro inject ...``.
"""

from __future__ import annotations

import argparse
import json
import sys

from repro.inject.campaign import CampaignConfig, run_campaign
from repro.inject.plan import InjectionConfig
from repro.inject.runtime import build_injected_simulator


def _cmd_campaign(args: argparse.Namespace) -> int:
    config = CampaignConfig(
        seed=args.seed,
        n_maps=args.maps,
        rows=args.rows,
        cols=args.cols,
        n_cell_faults=args.cell_faults,
        n_line_faults=args.line_faults,
        include_retention=not args.no_retention,
        pause_s=args.pause_s,
        spare_rows=args.spare_rows,
        spare_cols=args.spare_cols,
    )
    report = run_campaign(config)
    if args.json:
        print(json.dumps(report.to_dict(), indent=2))
    else:
        print(report.summary())
    if args.out:
        report.write_json(args.out)
        print(f"wrote campaign report to {args.out}")
    if not report.ok:
        print(
            "campaign: measured detection or repair verdicts diverged "
            "from the analytical prediction",
            file=sys.stderr,
        )
        return 1
    return 0


def _cmd_sim(args: argparse.Namespace) -> int:
    injection = InjectionConfig(
        enabled=not args.disabled,
        seed=args.seed,
        n_cell_faults=args.cell_faults,
        n_line_faults=args.line_faults,
        refresh_drop_rate=args.refresh_drop_rate,
        refresh_delay_rate=args.refresh_delay_rate,
        refresh_delay_cycles=args.refresh_delay_cycles,
        stuck_bank=args.stuck_bank,
        fifo_stall_rate=args.fifo_stall_rate,
    )
    simulator = build_injected_simulator(
        injection,
        cycles=args.cycles,
        warmup_cycles=args.warmup,
        refresh_retention_s=args.retention_s,
    )
    result = simulator.run()
    report = simulator.controller.injector.report()
    print(result.summary())
    print(report.summary())
    if args.json:
        print(json.dumps(report.to_dict(), indent=2))
    if args.out:
        with open(args.out, "w", encoding="utf-8") as handle:
            json.dump(report.to_dict(), handle, indent=2)
        print(f"wrote injection report to {args.out}")
    if args.check_identity:
        return _check_identity(args)
    return 0


def _check_identity(args: argparse.Namespace) -> int:
    """Assert the bit-identity contract of disabled injection."""
    from repro.verify.differential import result_fingerprint

    plain = build_injected_simulator(
        None,
        cycles=args.cycles,
        warmup_cycles=args.warmup,
        refresh_retention_s=args.retention_s,
    ).run()
    disabled = build_injected_simulator(
        InjectionConfig(
            enabled=False,
            seed=args.seed,
            n_cell_faults=args.cell_faults,
            n_line_faults=args.line_faults,
        ),
        cycles=args.cycles,
        warmup_cycles=args.warmup,
        refresh_retention_s=args.retention_s,
    ).run()
    if result_fingerprint(plain) != result_fingerprint(disabled):
        print(
            "check-identity: injection-disabled run diverged from the "
            "plain controller",
            file=sys.stderr,
        )
        return 1
    print("check-identity: injection disabled is bit-identical")
    return 0


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro inject",
        description="fault-injection campaigns and injected simulations",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    campaign = sub.add_parser(
        "campaign",
        help="march tests over seeded fault maps vs analytical coverage",
    )
    campaign.add_argument("--seed", type=int, default=0)
    campaign.add_argument("--maps", type=int, default=4)
    campaign.add_argument("--rows", type=int, default=32)
    campaign.add_argument("--cols", type=int, default=32)
    campaign.add_argument("--cell-faults", type=int, default=6)
    campaign.add_argument("--line-faults", type=int, default=2)
    campaign.add_argument(
        "--no-retention",
        action="store_true",
        help="exclude retention faults from the cell mix",
    )
    campaign.add_argument("--pause-s", type=float, default=0.2)
    campaign.add_argument("--spare-rows", type=int, default=2)
    campaign.add_argument("--spare-cols", type=int, default=2)
    campaign.add_argument(
        "--json", action="store_true", help="print the report as JSON"
    )
    campaign.add_argument("--out", help="write the report JSON here")
    campaign.set_defaults(func=_cmd_campaign)

    sim = sub.add_parser(
        "sim",
        help="run the canonical injected workload through the "
        "resilient controller",
    )
    sim.add_argument("--seed", type=int, default=0)
    sim.add_argument("--cycles", type=int, default=8_000)
    sim.add_argument("--warmup", type=int, default=500)
    sim.add_argument("--cell-faults", type=int, default=200)
    sim.add_argument("--line-faults", type=int, default=2)
    sim.add_argument("--refresh-drop-rate", type=float, default=0.0)
    sim.add_argument("--refresh-delay-rate", type=float, default=0.0)
    sim.add_argument("--refresh-delay-cycles", type=int, default=64)
    sim.add_argument("--stuck-bank", type=int, default=None)
    sim.add_argument("--fifo-stall-rate", type=float, default=0.0)
    sim.add_argument(
        "--retention-s",
        type=float,
        default=64e-3,
        help="controller refresh retention period",
    )
    sim.add_argument(
        "--disabled",
        action="store_true",
        help="attach the injector but disable every effect",
    )
    sim.add_argument(
        "--check-identity",
        action="store_true",
        help="also assert injection-off bit-identity vs the plain "
        "controller",
    )
    sim.add_argument(
        "--json", action="store_true", help="print the report as JSON"
    )
    sim.add_argument("--out", help="write the injection report here")
    sim.set_defaults(func=_cmd_sim)
    return parser


def main(argv=None) -> int:
    parser = build_parser()
    args = parser.parse_args(argv)
    return args.func(args)


if __name__ == "__main__":
    sys.exit(main())
