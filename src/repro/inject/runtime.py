"""Graceful degradation: a controller that survives an injected device.

:class:`ResilientController` extends the baseline
:class:`~repro.controller.controller.MemoryController` with the runtime
responses a production eDRAM controller needs once faults are real:

* **ECC + scrub retry** — every retiring read burst is classified
  through the injector's SEC-DED model; a correctable error triggers a
  bounded re-read (the request re-enters the scheduling window) before
  the corrected data is accepted.
* **Row remap** — a (bank, row) accumulating uncorrectable reads past
  the quarantine threshold is remapped to one of the bank's spare rows
  (the runtime analogue of :func:`repro.dft.redundancy.allocate_spares`);
  the map's faults on that row are cleared, so later reads come back
  clean.
* **Bank quarantine** — when the spare budget is exhausted, or a
  request has been waiting on an unresponsive bank longer than the
  stuck threshold, the whole bank is taken out of service: already
  decoded requests are remapped to a healthy bank and future decodes
  avoid the quarantined one.
* **Refresh fate** — due refreshes can be dropped (schedule advances,
  retention deficit grows) or delayed by the injector; everything else
  about the drain protocol is untouched.

All hooks are no-ops when ``injector`` is None or disabled: the
controller is then command-for-command identical to the baseline, which
is what :func:`repro.verify.differential.diff_injection_off` pins.

When the injector is *enabled* the controller reports itself
non-quiescent every cycle, so the simulator's fast-forward path
degenerates to the naive per-cycle loop — fault draws happen on a
per-cycle clock and must not be skipped over.
"""

from __future__ import annotations

from dataclasses import dataclass, replace

from repro.controller.controller import (
    ControllerConfig,
    MemoryController,
)
from repro.controller.request import Request, RequestState
from repro.dram.device import DRAMDevice
from repro.dram.organizations import AddressMapping, Organization
from repro.dram.timing import PC100_TIMING
from repro.inject.ecc import EccOutcome
from repro.inject.plan import FaultInjector, InjectionConfig
from repro.sim.simulator import MemorySystemSimulator, SimulationConfig
from repro.traffic.client import ClientKind, MemoryClient
from repro.traffic.patterns import RandomPattern, SequentialPattern


@dataclass
class ResilientController(MemoryController):
    """Memory controller with ECC, retry, remap and quarantine.

    Attributes:
        injector: The fault injector driving runtime effects; None (or
            a disabled injector) makes every hook a no-op.
    """

    injector: FaultInjector | None = None

    def __post_init__(self) -> None:
        super().__post_init__()
        self.quarantined_banks: set = set()
        self._retry_counts: dict = {}
        self._refresh_fate: tuple | None = None

    def _active(self) -> FaultInjector | None:
        injector = self.injector
        if injector is not None and injector.enabled:
            return injector
        return None

    # -- fast-forward: injected runs step every cycle -------------------------

    def quiescent_until(self, cycle: int) -> int | None:
        if self._active() is not None:
            return cycle
        return super().quiescent_until(cycle)

    # -- client interface: injected FIFO stalls -------------------------------

    def offer(self, request: Request) -> bool:
        injector = self._active()
        if injector is not None and injector.fifo_stall(
            request.client, request.created_cycle
        ):
            fifo = self.register_client(request.client)
            fifo.record_stall()
            if self.obs is not None:
                self.obs.on_fault_event(
                    "fifo_stall_injected",
                    request.created_cycle,
                    client=request.client,
                )
            return False
        return super().offer(request)

    # -- address path: route around quarantined banks -------------------------

    def _decode(self, request: Request):
        decoded = super()._decode(request)
        if self.quarantined_banks and decoded.bank in self.quarantined_banks:
            decoded = replace(decoded, bank=self._remap_bank(decoded.bank))
        return decoded

    def _remap_bank(self, bank: int) -> int:
        """Deterministic healthy-bank substitute for a quarantined bank."""
        n_banks = self.device.organization.n_banks
        for offset in range(1, n_banks):
            candidate = (bank + offset) % n_banks
            if candidate not in self.quarantined_banks:
                return candidate
        return bank  # every bank quarantined: nothing left to route to

    # -- main loop: stuck-bank detection --------------------------------------

    def step(self, cycle: int) -> None:
        injector = self._active()
        if injector is not None and self.window:
            self._detect_stuck(injector, cycle)
        super().step(cycle)

    def _detect_stuck(self, injector: FaultInjector, cycle: int) -> None:
        # Models a hang detector with ``stuck_request_cycles`` of
        # detection latency.  The age test alone would false-positive
        # under benign starvation (refresh storms, pathological loads),
        # so quarantine only fires for banks that really stopped
        # responding; ordinary congestion merely waits.
        threshold = injector.config.stuck_request_cycles
        for request in self.window:
            if request.accepted_cycle is None or request.decoded is None:
                continue
            bank = request.decoded.bank
            if bank in self.quarantined_banks:
                continue
            if cycle - request.accepted_cycle > threshold and (
                injector.bank_stuck(bank, cycle)
            ):
                self._quarantine_bank(injector, bank, cycle)
                return

    def _quarantine_bank(
        self, injector: FaultInjector, bank: int, cycle: int
    ) -> None:
        injector.quarantine_bank(bank)
        self.quarantined_banks.add(bank)
        target = self._remap_bank(bank)
        remapped = 0
        for request in self.window:
            if request.decoded is not None and request.decoded.bank == bank:
                request.decoded = replace(request.decoded, bank=target)
                remapped += 1
        if remapped:
            injector.count("requests_rerouted", remapped)
        if self.obs is not None:
            self.obs.on_fault_event(
                "bank_quarantined",
                cycle,
                bank=bank,
                target=target,
                requests_rerouted=remapped,
            )

    # -- command path: stuck banks never respond ------------------------------

    def _next_command(self, request: Request, cycle: int):
        injector = self._active()
        if injector is not None:
            assert request.decoded is not None
            if injector.bank_stuck(request.decoded.bank, cycle):
                return None
        return super()._next_command(request, cycle)

    # -- refresh path: drop / delay fates --------------------------------------

    def _service_refresh(self, cycle: int) -> bool:
        injector = self._active()
        if injector is None or self._refresh is None:
            return super()._service_refresh(cycle)
        if not self._refresh_draining and self._refresh.due(cycle):
            if self._refresh_fate is None:
                fate = injector.refresh_action(cycle)
                self._refresh_fate = fate
                if fate[0] == "delay":
                    injector.on_refresh_delayed(cycle)
                    if self.obs is not None:
                        self.obs.on_fault_event(
                            "refresh_delayed", cycle, until=fate[1]
                        )
            action, until = self._refresh_fate
            if action == "drop":
                # The opportunity is skipped outright; the schedule
                # advances as if served, so the deficit is real.
                self._refresh.mark_issued(cycle)
                injector.on_refresh_dropped(cycle)
                if self.obs is not None:
                    self.obs.on_fault_event("refresh_dropped", cycle)
                self._refresh_fate = None
                return False
            if action == "delay" and cycle < until:
                return False
        before = self.refreshes_issued
        consumed = super()._service_refresh(cycle)
        if self.refreshes_issued != before:
            injector.on_refresh_issued(cycle)
            self._refresh_fate = None
        return consumed

    # -- retirement: ECC classify, retry, remap, quarantine --------------------

    def _complete(self, request: Request, end_cycle: int) -> None:
        injector = self._active()
        if (
            injector is None
            or not request.is_read
            or request.decoded is None
        ):
            super()._complete(request, end_cycle)
            return
        decoded = request.decoded
        outcome = injector.classify_read(
            decoded.bank,
            decoded.row,
            decoded.column,
            self.device.timing.burst_length,
        )
        if outcome is EccOutcome.CLEAN:
            self._retry_counts.pop(request.request_id, None)
            super()._complete(request, end_cycle)
            return
        if self.obs is not None:
            self.obs.on_fault_event(
                f"ecc_{outcome.value}",
                end_cycle,
                bank=decoded.bank,
                row=decoded.row,
            )
        if outcome is EccOutcome.CORRECTED:
            retries = self._retry_counts.get(request.request_id, 0)
            if retries < injector.config.read_retry_limit:
                # Scrub re-read: the request re-enters the window and
                # the burst is issued again before data is accepted.
                self._retry_counts[request.request_id] = retries + 1
                injector.count("retries")
                request.state = RequestState.ACCEPTED
                self.window.append(request)
                if self.obs is not None:
                    self.obs.on_fault_event(
                        "read_retry",
                        end_cycle,
                        bank=decoded.bank,
                        row=decoded.row,
                    )
                return
            self._retry_counts.pop(request.request_id, None)
            super()._complete(request, end_cycle)
            return
        # Uncorrectable: complete (the data loss is accounted in the
        # injector counters) and charge the row toward repair.
        self._retry_counts.pop(request.request_id, None)
        tally = injector.record_uncorrectable(decoded.bank, decoded.row)
        if tally >= injector.config.quarantine_threshold:
            if injector.try_remap_row(decoded.bank, decoded.row):
                if self.obs is not None:
                    self.obs.on_fault_event(
                        "row_remapped",
                        end_cycle,
                        bank=decoded.bank,
                        row=decoded.row,
                    )
            else:
                self._quarantine_bank(injector, decoded.bank, end_cycle)
        super()._complete(request, end_cycle)


# -- canonical injected workload ----------------------------------------------

#: Moderate per-client rate: enough traffic that injected faults are
#: actually read, low enough that the system stays stable.
INJECT_WORKLOAD_RATE = 0.05


def build_injected_simulator(
    injection: InjectionConfig | None,
    cycles: int = 8_000,
    warmup_cycles: int = 500,
    seed: int = 0,
    refresh_retention_s: float = 64e-3,
    injector: FaultInjector | None = None,
    obs: object = None,
    check_invariants: str = "off",
) -> MemorySystemSimulator:
    """The canonical injected workload: 3 clients on a 4-bank device.

    With ``injection=None`` (and no explicit ``injector``) the system is
    built on the plain :class:`MemoryController` — the true baseline an
    injection-disabled run must be bit-identical to.  Otherwise a
    :class:`ResilientController` carries the injector (pass
    ``InjectionConfig(enabled=False)`` for the disabled-but-attached
    configuration, or a pre-built ``injector`` for hand-placed maps).

    Everything is pinned by ``(cycles, warmup_cycles, seed, injection)``:
    re-runs are bit-identical.
    """
    org = Organization(
        n_banks=4, n_rows=2048, page_bits=4096, word_bits=16
    )
    device = DRAMDevice(organization=org, timing=PC100_TIMING)
    mapping = AddressMapping(organization=org)
    controller_config = ControllerConfig(
        refresh_retention_s=refresh_retention_s
    )
    if injection is None and injector is None:
        controller: MemoryController = MemoryController(
            device=device, mapping=mapping, config=controller_config
        )
    else:
        if injector is None:
            injector = FaultInjector(injection, organization=org)
        controller = ResilientController(
            device=device,
            mapping=mapping,
            config=controller_config,
            injector=injector,
        )
    quarter = org.total_words // 4
    clients = [
        MemoryClient(
            name="display",
            pattern=SequentialPattern(base=0, length=quarter),
            rate=INJECT_WORKLOAD_RATE,
            kind=ClientKind.STREAM,
        ),
        MemoryClient(
            name="video",
            pattern=SequentialPattern(base=quarter, length=quarter),
            rate=INJECT_WORKLOAD_RATE,
            read_fraction=0.7,
            kind=ClientKind.BLOCK,
            seed=seed + 7,
        ),
        MemoryClient(
            name="cpu",
            pattern=RandomPattern(
                base=0, length=org.total_words, seed=seed + 3
            ),
            rate=INJECT_WORKLOAD_RATE,
            read_fraction=0.6,
            kind=ClientKind.RANDOM,
            seed=seed + 11,
        ),
    ]
    return MemorySystemSimulator(
        controller=controller,
        clients=clients,
        config=SimulationConfig(
            cycles=cycles,
            warmup_cycles=warmup_cycles,
            fast_forward=True,
            check_invariants=check_invariants,
        ),
        obs=obs,
    )
