"""``python -m repro.inject`` entry point."""

import sys

from repro.inject.cli import main

sys.exit(main())
